"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs to build a wheel under PEP 660; on fully offline
machines without ``wheel`` installed, ``python setup.py develop`` provides the
same editable install through the legacy path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
