"""Benchmark-harness fixtures.

Every benchmark regenerates one table or figure of the paper; measured
artifacts are printed and saved under ``benchmarks/results/`` so
EXPERIMENTS.md can quote them.  BLAS is pinned to one thread (one rank = one
core, the paper's Table II execution model) before any measurement.
"""

import os
import pathlib

os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")

import pytest

from repro.runtime import pin_blas_threads

pin_blas_threads(1)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def artifact_store(results_dir):
    """Shared dict where benches deposit rows for cross-bench reuse."""
    return {}


def save_artifact(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / name).write_text(text + "\n")
    print(f"\n{text}\n[saved to benchmarks/results/{name}]")


@pytest.fixture(scope="session")
def table4_rows(artifact_store):
    """Run the Table IV profiling measurement once; Fig. 4 reuses it."""
    from repro.experiments import table4

    if "table4_rows" not in artifact_store:
        artifact_store["table4_rows"] = table4.run()
    return artifact_store["table4_rows"]
