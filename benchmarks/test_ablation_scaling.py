"""Ablation: grid scaling beyond the paper (5x5 = 26 ranks).

The paper stops at 4x4 (17 ranks); this bench extends the sweep one step to
check the scalability claim holds as the rank count approaches (and with
the master exceeds) the physical core count of this machine.
"""

import pytest

from repro.coevolution import SequentialTrainer
from repro.coevolution.sequential import build_training_dataset
from repro.experiments.workloads import bench_config
from repro.parallel import DistributedRunner

from benchmarks.conftest import save_artifact

# Multi-minute full-training run: excluded from the fast CI lane.
pytestmark = pytest.mark.slow


def test_ablation_5x5_scaling(benchmark, results_dir):
    config = bench_config(5, 5)
    dataset = build_training_dataset(config)
    sequential = SequentialTrainer(config, dataset).run()

    result = benchmark.pedantic(
        lambda: DistributedRunner(config, backend="process", dataset=dataset,
                                  timeout_s=900).run(),
        rounds=1, iterations=1,
    )
    assert result.complete

    speedup = sequential.wall_time_s / result.training.wall_time_s
    lines = [
        "ABLATION — GRID SCALING BEYOND THE PAPER (5x5, 26 ranks)",
        f"single core:  {sequential.wall_time_s:8.2f}s",
        f"distributed:  {result.training.wall_time_s:8.2f}s",
        f"speedup:      {speedup:8.2f}  (25 cells)",
    ]
    save_artifact(results_dir, "ablation_scaling.txt", "\n".join(lines))
    assert speedup > 1.5
