"""Ablation: neighborhood size (isolated vs ring vs the paper's Moore-5).

The sub-population size s drives the O(s^2) all-pairs fitness evaluation —
the cost the spatial grid exists to contain (Section II-B).  This bench
runs the sequential trainer with three neighborhood structures and checks
the per-iteration cost ordering; it also reports end-of-run generator
fitness so the quality/cost trade-off is visible.
"""

import numpy as np
import pytest

from repro.coevolution.cell import Cell
from repro.coevolution.sequential import build_training_dataset
from repro.experiments.workloads import bench_config

from benchmarks.conftest import save_artifact

# Multi-minute full-training run: excluded from the fast CI lane.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def workload():
    config = bench_config(2, 2)
    return config, build_training_dataset(config)


def _run_cell_with_subpop(config, dataset, neighborhood_size, iterations=3):
    """Train one cell against (size-1) synthetic neighbors; returns
    (seconds per iteration, final fitness)."""
    import time

    cell = Cell(config, 0, dataset, neighborhood_size=neighborhood_size)
    rng = np.random.default_rng(7)
    neighbors = []
    for _ in range(neighborhood_size - 1):
        g, d = cell.center_genomes()
        g.parameters = g.parameters + rng.normal(0, 0.01, g.parameters.shape)
        neighbors.append((g, d))
    start = time.perf_counter()
    for _ in range(iterations):
        report = cell.step(neighbors)
    elapsed = (time.perf_counter() - start) / iterations
    return elapsed, report.best_generator_fitness


def test_ablation_neighborhood_size(benchmark, workload, results_dir):
    config, dataset = workload
    isolated_s, isolated_fit = _run_cell_with_subpop(config, dataset, 1)
    ring_s, ring_fit = _run_cell_with_subpop(config, dataset, 2)
    moore_s, moore_fit = benchmark.pedantic(
        lambda: _run_cell_with_subpop(config, dataset, 5), rounds=1, iterations=1
    )

    lines = [
        "ABLATION — NEIGHBORHOOD SIZE (one cell, seconds per iteration)",
        f"isolated  (s=1): {isolated_s:7.3f}s/iter  final g-fitness {isolated_fit:8.4f}",
        f"ring      (s=2): {ring_s:7.3f}s/iter  final g-fitness {ring_fit:8.4f}",
        f"moore-5   (s=5): {moore_s:7.3f}s/iter  final g-fitness {moore_fit:8.4f}",
        "",
        "cost grows with the s^2 all-pairs evaluation — the spatial grid",
        "keeps s at 5 regardless of population size, which is the point.",
    ]
    save_artifact(results_dir, "ablation_neighborhood.txt", "\n".join(lines))

    # The O(s^2) evaluation makes bigger neighborhoods strictly costlier.
    assert isolated_s < ring_s < moore_s
