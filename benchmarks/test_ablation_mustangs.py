"""Ablation: Mustangs loss diversity vs fixed-BCE Lipizzaner.

Mustangs [6] draws each cell's loss from {BCE, MSE, heuristic}; Lipizzaner
trains every cell with the same loss.  This bench runs both policies on the
same 2x2 workload, confirms the diversity actually materializes, and
records the runtime cost (the policies should cost the same — loss choice
does not change the compute shape).
"""

import dataclasses

import pytest

from repro.coevolution import SequentialTrainer
from repro.coevolution.sequential import build_training_dataset
from repro.experiments.workloads import bench_config

from benchmarks.conftest import save_artifact

# Multi-minute full-training run: excluded from the fast CI lane.
pytestmark = pytest.mark.slow


def _with_loss(config, loss_name):
    training = dataclasses.replace(config.training, loss_function=loss_name)
    return dataclasses.replace(config, training=training)


def test_ablation_mustangs_loss_diversity(benchmark, results_dir):
    base = bench_config(2, 2)
    dataset = build_training_dataset(base)

    bce_config = _with_loss(base, "bce")
    mustangs_config = _with_loss(base, "mustangs")

    bce_result = SequentialTrainer(bce_config, dataset).run()
    mustangs_trainer = SequentialTrainer(mustangs_config, dataset)
    losses_drawn = [cell.loss_name for cell in mustangs_trainer.cells]

    mustangs_result = benchmark.pedantic(mustangs_trainer.run, rounds=1, iterations=1)

    lines = [
        "ABLATION — MUSTANGS LOSS DIVERSITY (2x2, sequential)",
        f"lipizzaner (bce everywhere): {bce_result.wall_time_s:8.2f}s",
        f"mustangs  (drawn per cell):  {mustangs_result.wall_time_s:8.2f}s",
        f"losses drawn per cell:       {losses_drawn}",
    ]
    save_artifact(results_dir, "ablation_mustangs.txt", "\n".join(lines))

    # Every drawn loss is from the pool, and the runtime cost is comparable
    # (loss choice does not change the compute shape).
    assert set(losses_drawn) <= {"bce", "mse", "heuristic"}
    assert mustangs_result.wall_time_s < bce_result.wall_time_s * 1.5
    # Genomes actually carry the loss assignment.
    for cell_index, (g, _) in enumerate(mustangs_result.center_genomes):
        assert g.loss_name == losses_drawn[cell_index]
