"""Bench: regenerate Fig. 2 (slave state machine) from a live run."""

from repro.experiments import fig2

from benchmarks.conftest import save_artifact


def test_fig2_state_machine(benchmark, results_dir):
    data = benchmark.pedantic(lambda: fig2.run(dynamic=True), rounds=1, iterations=1)
    assert data["walk"] == ["inactive", "processing", "finished"]
    assert len(data["rejected"]) == 7  # 9 pairs minus the 2 legal arrows
    assert all(state == "finished" for state in data["live_final_states"])
    save_artifact(results_dir, "fig2.txt", fig2.format_figure(data))
