"""Bench: regenerate Fig. 4 (bar chart of the Table IV routine times)."""

import pytest
from repro.experiments import fig4

from benchmarks.conftest import save_artifact

# Multi-minute full-training run: excluded from the fast CI lane.
pytestmark = pytest.mark.slow


def test_fig4_series(benchmark, table4_rows, results_dir):
    data = benchmark.pedantic(lambda: fig4.run(rows=table4_rows),
                              rounds=1, iterations=1)
    assert data["routines"] == ["gather", "train", "update genomes", "mutate"]
    assert len(data["single_core"]) == len(data["distributed"]) == 4
    # The figure's visual message: the train bar shrinks dramatically,
    # the gather bar does not.
    train_idx = data["routines"].index("train")
    gather_idx = data["routines"].index("gather")
    train_ratio = data["distributed"][train_idx] / data["single_core"][train_idx]
    gather_ratio = (data["distributed"][gather_idx]
                    / max(data["single_core"][gather_idx], 1e-9))
    assert train_ratio < 0.5
    assert gather_ratio > train_ratio
    save_artifact(results_dir, "fig4.txt", fig4.format_figure(data))
