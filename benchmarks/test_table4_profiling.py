"""Bench: regenerate Table IV (profiling of the dominant routines, 4x4).

Shape assertions from the paper:
  * ``train`` dominates the single-core budget;
  * ``train`` and ``update genomes`` parallelize well (speedup well above 1);
  * ``gather`` does **not** parallelize (the same neighbor exchange happens
    either way) — its speedup stays near or below 1;
  * compute routines speed up far more than ``gather``.
"""

import json

import pytest
from repro.experiments import table4

from benchmarks.conftest import save_artifact

# Multi-minute full-training run: excluded from the fast CI lane.
pytestmark = pytest.mark.slow


def _row(rows, name):
    return next(r for r in rows if r.routine == name)


def _rows_payload(rows) -> str:
    """Machine-readable Table IV (tracked across PRs as BENCH_table4.json)."""
    payload = {
        "paper_minutes": table4.PAPER_VALUES,
        "rows": [
            {
                "routine": r.routine,
                "single_core_s": r.single_core_s,
                "distributed_s": r.distributed_s,
                "acceleration": r.acceleration,
                "speedup": r.speedup,
            }
            for r in rows
        ],
    }
    return json.dumps(payload, indent=2)


def test_table4_profiling(benchmark, table4_rows, results_dir):
    rows = benchmark.pedantic(lambda: table4_rows, rounds=1, iterations=1)
    save_artifact(results_dir, "table4.txt", table4.format_table(rows))
    save_artifact(results_dir, "BENCH_table4.json", _rows_payload(rows))

    gather = _row(rows, "gather")
    train = _row(rows, "train")
    update = _row(rows, "update genomes")
    overall = _row(rows, "overall")

    # train dominates single-core work (paper: 264.9 of 509.6 minutes).
    single_total = overall.single_core_s
    assert train.single_core_s > 0.4 * single_total

    # Compute routines parallelize...
    assert train.speedup > 2.0
    assert update.speedup > 2.0
    # ...communication does not (paper: exactly 1.00).
    assert gather.speedup < 2.0
    assert train.speedup > 1.5 * gather.speedup

    # Overall: the distributed version wins.
    assert overall.speedup > 1.0


def test_table4_acceleration_definition(benchmark, table4_rows):
    """The paper's 'acceleration' column is the relative time reduction."""
    def accelerations():
        return {r.routine: r.acceleration for r in table4_rows}

    acc = benchmark.pedantic(accelerations, rounds=1, iterations=1)
    for row in table4_rows:
        if row.single_core_s > 0:
            expected = 1.0 - row.distributed_s / row.single_core_s
            assert acc[row.routine] == max(0.0, expected)
