"""Bench: the train routine, before/after the fused kernels (PR 5).

Table IV row 2 ("train") dominates the single-core budget; this benchmark
measures the three layers the fused kernels of :mod:`repro.nn.kernels`
rebuild, each against the autograd tape it replaces (toggled with
``kernels_disabled()`` — same code base, same RNG streams, bit-identical
results):

* **train_step** — one full train step at Table I size: a discriminator
  update (real batch vs freshly generated fakes) plus a generator update,
  through ``GANPair.train_*_step``.
* **fitness_table** — the all-pairs s x s evaluation (s = 5 neighborhood,
  Table I batch): batched single-forward-per-discriminator vs the
  ``s**2``-forward loop.
* **cell_step_train_phase** — the "train" timer section of one full
  ``Cell.step`` (both fitness tables plus every gradient step), i.e. the
  Table IV row the paper profiles.
* **train_step_dtype** — the fused train step per dtype policy
  (``float64``/``float32``/``mixed16``), same seeds and RNG streams per
  arm; the per-dtype rows record seconds-per-call and the speedup over
  the float64 reference arm.
* **telemetry** — the same train step under the ``repro.telemetry`` bus at
  off/basic/trace levels.  The off level is the shipping default and CI
  (``REPRO_BENCH_ASSERT_TELEMETRY=1``) asserts it stays within 2% of the
  untraced ``train_step`` baseline.

Honest-numbers note: at Table I size the train step is BLAS-bound — the
GEMMs are shared by both paths, so the end-to-end speedup here is the tape
overhead plus the stacked-forward/blocked-optimizer wins, not a multiple.
The Python-side machinery the kernels delete is visible undiluted in the
``overhead_dominated`` entry, measured at a narrow width where the per-op
tape cost outweighs the arithmetic.

Measurements interleave the two modes round-robin (this guards against
drift on noisy shared machines) and keep the fastest round per mode.
Results land in ``benchmarks/results/BENCH_train_step.json``; an
aggregated ``BENCH_summary.json`` merges every ``BENCH_*.json`` artifact
so the perf trajectory across PRs is machine-readable in one file.
"""

from __future__ import annotations

import dataclasses
import gc
import json
import os
import time

import numpy as np
import pytest

from repro.config import NetworkSettings, paper_table1_config
from repro.coevolution.cell import Cell
from repro.coevolution.fitness import evaluate_subpopulations
from repro.data.dataset import ArrayDataset
from repro.gan.networks import Discriminator, Generator
from repro.gan.pair import GANPair
from repro.nn import kernels, loss_by_name
from repro.profiling import RoutineTimer

from benchmarks.conftest import RESULTS_DIR, save_artifact

# Full-size timing run: the fast CI lane instead runs this module directly
# with REPRO_BENCH_TINY=1 as a seconds-scale machinery smoke.
pytestmark = pytest.mark.slow

_TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
_SETTINGS = (NetworkSettings(latent_size=8, hidden_layers=2, hidden_neurons=16,
                             output_neurons=36)
             if _TINY else NetworkSettings())
_BATCH = 10 if _TINY else 100          # Table I batch size
_NEIGHBORHOOD = 5
_ROUNDS = 3 if _TINY else 6
_REPS = 3 if _TINY else 20

#: Narrow topology for the overhead-dominated data point: the tape's per-op
#: cost is fixed, so at small widths it dwarfs the arithmetic it wraps.
_NARROW = NetworkSettings(latent_size=8, hidden_layers=2, hidden_neurons=16,
                          output_neurons=36)
_NARROW_BATCH = 10


def _interleaved_ab(run_before, run_after, rounds: int = _ROUNDS,
                    reps: int = _REPS) -> dict:
    """Fastest-round seconds-per-call for both modes, measured round-robin."""
    best = {"before": float("inf"), "after": float("inf")}
    for _ in range(rounds):
        for key, fn in (("before", run_before), ("after", run_after)):
            start = time.perf_counter()
            for _ in range(reps):
                fn()
            best[key] = min(best[key], (time.perf_counter() - start) / reps)
    return {
        "before_s_per_call": best["before"],
        "after_s_per_call": best["after"],
        "speedup": best["before"] / best["after"] if best["after"] > 0 else float("inf"),
    }


def _build_pair(settings: NetworkSettings, seed: int = 0) -> GANPair:
    rng = np.random.default_rng(seed)
    return GANPair(Generator(settings, rng), Discriminator(settings, rng),
                   loss_by_name("bce"), "adam", 2e-4)


def _bench_train_step(settings: NetworkSettings, batch: int) -> dict:
    real = np.random.default_rng(7).standard_normal((batch, settings.output_neurons))
    pair = _build_pair(settings)
    rng = np.random.default_rng(42)

    def step_tape() -> None:
        with kernels.kernels_disabled():
            pair.train_discriminator_step(real, rng)
            pair.train_generator_step(batch, rng)

    def step_fused() -> None:
        pair.train_discriminator_step(real, rng)
        pair.train_generator_step(batch, rng)

    step_fused()  # warm caches, workspaces, BLAS buffers
    return _interleaved_ab(step_tape, step_fused)


def _bench_fitness(settings: NetworkSettings, batch: int) -> dict:
    build = np.random.default_rng(3)
    gens = [Generator(settings, build) for _ in range(_NEIGHBORHOOD)]
    discs = [Discriminator(settings, build) for _ in range(_NEIGHBORHOOD)]
    loss = loss_by_name("bce")
    real = np.random.default_rng(9).standard_normal((batch, settings.output_neurons))
    rng = np.random.default_rng(5)

    def loop() -> None:
        with kernels.kernels_disabled():
            evaluate_subpopulations(gens, discs, loss, real, rng)

    def batched() -> None:
        evaluate_subpopulations(gens, discs, loss, real, rng)

    batched()
    return _interleaved_ab(loop, batched, reps=max(1, _REPS // 2))


def _bench_cell_phase(settings: NetworkSettings, batch: int) -> dict:
    config = paper_table1_config()
    config = dataclasses.replace(
        config,
        network=settings,
        coevolution=dataclasses.replace(config.coevolution, grid_rows=1,
                                        grid_cols=1, iterations=4),
        execution=dataclasses.replace(config.execution, number_of_tasks=2),
        training=dataclasses.replace(config.training, batch_size=batch,
                                     batches_per_iteration=3),
        dataset_size=batch * 8,
    )
    images = np.random.default_rng(11).standard_normal(
        (config.dataset_size, settings.output_neurons))
    dataset = ArrayDataset(images)

    def run_phase(fused: bool) -> float:
        """Train-section seconds of one Cell.step (cells are rebuilt per
        call so Adam state/iteration counts stay comparable)."""
        kernels.set_kernels_enabled(fused)
        try:
            cell = Cell(config, 0, dataset)
            cell.step([])                      # warm-up iteration
            timer = RoutineTimer()
            cell.step([], timer)
            return timer.seconds("train")
        finally:
            kernels.set_kernels_enabled(True)

    run_phase(True)
    best = {"before": float("inf"), "after": float("inf")}
    for _ in range(_ROUNDS):
        best["before"] = min(best["before"], run_phase(False))
        best["after"] = min(best["after"], run_phase(True))
    return {
        "before_s_per_call": best["before"],
        "after_s_per_call": best["after"],
        "speedup": best["before"] / best["after"],
    }


def _bench_dtypes(settings: NetworkSettings, batch: int) -> dict:
    """Fused train step per dtype policy; float64 is the reference arm.

    One identically-seeded pair + RNG per arm (the arms differ *only* in
    dtype), the real batch stays float64 like the dataset pipeline, and
    arms alternate slot order round to round so frequency ramps cancel.
    """
    policies = ("float64", "float32", "mixed16")
    real = np.random.default_rng(7).standard_normal((batch, settings.output_neurons))
    arms = {name: (_build_pair(dataclasses.replace(settings, dtype=name)),
                   np.random.default_rng(42))
            for name in policies}

    def step(name: str) -> None:
        pair, rng = arms[name]
        pair.train_discriminator_step(real, rng)
        pair.train_generator_step(batch, rng)

    for name in policies:
        step(name)  # warm caches, per-dtype workspaces, BLAS buffers
    best = {name: float("inf") for name in policies}
    for r in range(_ROUNDS):
        order = policies if r % 2 == 0 else tuple(reversed(policies))
        for name in order:
            start = time.perf_counter()
            for _ in range(_REPS):
                step(name)
            best[name] = min(best[name], (time.perf_counter() - start) / _REPS)
    return {name: {
        "s_per_call": best[name],
        "speedup_vs_float64": best["float64"] / best[name],
    } for name in policies}


def _bench_telemetry(settings: NetworkSettings | None = None,
                     batch: int = 100) -> dict:
    """Telemetry cost on the fused train step, per bus level.

    Always measured at Table I size, even in the tiny CI lane: the paper's
    step is BLAS-bound there (~20ms/call), so the bus's fixed per-span cost
    is diluted the way production runs see it, and the 2% CI ratchet sits
    far above the measurement noise of a 5-rep window.  (At the tiny bench
    size the step is ~0.25ms and the guard checks alone are ~1%, under a
    noise floor of several percent — a hard gate there would only measure
    the machine.)

    Four arms measured round-robin: ``baseline`` and ``off`` both run with
    the bus disabled — separating measurement noise from real overhead —
    while ``basic`` and ``trace`` pay the recording cost.  Per-call times
    report the fastest round (like every bench here), but the overhead
    percentages are the *median of per-round ratios* against the baseline
    arm of the same round: arms interleave within a round, so slow drift
    (thermal, frequency scaling, a neighbour process) cancels out of the
    ratio instead of biasing an extreme statistic.  CI's 2% ratchet on the
    off level reads that median.
    """
    from repro.telemetry import bus

    settings = settings or NetworkSettings()
    real = np.random.default_rng(7).standard_normal((batch, settings.output_neurons))
    arms = (("baseline", "off"), ("off", "off"),
            ("basic", "basic"), ("trace", "trace"))
    # One identically-seeded pair/rng per arm: every arm then performs the
    # exact same numeric sequence, so within-round position can't leak
    # state drift (evolving weights, rng phase) into the comparison.
    pairs = {arm: (_build_pair(settings), np.random.default_rng(42))
             for arm, _level in arms}

    def step(arm: str) -> None:
        pair, rng = pairs[arm]
        pair.train_discriminator_step(real, rng)
        pair.train_generator_step(batch, rng)

    for arm, _level in arms:
        step(arm)  # warm caches, workspaces, BLAS buffers
    prior_env = os.environ.get("REPRO_TELEMETRY")
    times: dict[str, list[float]] = {arm: [] for arm, _level in arms}
    rounds, reps = 12, 10  # ~220ms per timed window at Table I size
    try:
        for r in range(rounds):
            # The ratchet pair alternates slots round to round (and the
            # recording pair likewise), so slot-in-round effects — GC debt
            # from the event-allocating arms, frequency ramps — cancel
            # exactly out of the per-round ratios instead of biasing them.
            ratchet = arms[:2] if r % 2 == 0 else arms[1::-1]
            recording = arms[2:] if r % 4 < 2 else arms[:1:-1]
            for arm, level in (*ratchet, *recording):
                bus.set_level(level)
                gc.collect()  # each arm starts with a clean heap
                start = time.perf_counter()
                for _ in range(reps):
                    step(arm)
                times[arm].append((time.perf_counter() - start) / reps)
                bus.reset()  # drop the recorded spans between rounds
    finally:
        bus.set_level("off")
        bus.reset()
        if prior_env is None:
            os.environ.pop("REPRO_TELEMETRY", None)
        else:
            os.environ["REPRO_TELEMETRY"] = prior_env

    def overhead_pct(arm: str) -> float:
        ratios = sorted(t / b for t, b in zip(times[arm], times["baseline"]))
        return (ratios[len(ratios) // 2] - 1.0) * 100

    return {
        "baseline_s_per_call": min(times["baseline"]),
        "off_s_per_call": min(times["off"]),
        "basic_s_per_call": min(times["basic"]),
        "trace_s_per_call": min(times["trace"]),
        "off_overhead_pct": overhead_pct("off"),
        "basic_overhead_pct": overhead_pct("basic"),
        "trace_overhead_pct": overhead_pct("trace"),
    }


def test_train_step_bench(results_dir):
    benches = {
        "train_step": _bench_train_step(_SETTINGS, _BATCH),
        "fitness_table": _bench_fitness(_SETTINGS, _BATCH),
        "cell_step_train_phase": _bench_cell_phase(_SETTINGS, _BATCH),
        "overhead_dominated": _bench_train_step(_NARROW, _NARROW_BATCH),
        "train_step_dtype": _bench_dtypes(_SETTINGS, _BATCH),
    }
    benches["telemetry"] = _bench_telemetry()
    payload = {
        "network": {
            "latent_size": _SETTINGS.latent_size,
            "hidden_layers": _SETTINGS.hidden_layers,
            "hidden_neurons": _SETTINGS.hidden_neurons,
            "output_neurons": _SETTINGS.output_neurons,
        },
        "batch_size": _BATCH,
        "tiny": _TINY,
        "rounds": _ROUNDS,
        "reps": _REPS,
        "benches": benches,
    }
    save_artifact(results_dir, "BENCH_train_step.json",
                  json.dumps(payload, indent=2))
    write_summary(results_dir)

    # Machinery assertions only (thresholds are read off the artifact).
    for name, bench in benches.items():
        if "before_s_per_call" not in bench:
            continue
        assert bench["before_s_per_call"] > 0, name
        assert bench["after_s_per_call"] > 0, name
        assert np.isfinite(bench["speedup"]), name
    assert benches["telemetry"]["off_s_per_call"] > 0
    for name, row in benches["train_step_dtype"].items():
        assert row["s_per_call"] > 0, name
        assert np.isfinite(row["speedup_vs_float64"]), name

    # CI's telemetry-off ratchet: with REPRO_BENCH_ASSERT_TELEMETRY=1 the
    # disabled bus must cost at most 2% over the interleaved untraced
    # baseline arm.  Two estimators of the same overhead are checked — the
    # floor ratio (fastest round each) and the median of per-round ratios —
    # and the gate trips only when BOTH exceed 2%: a real off-path
    # regression inflates both, while scheduler noise on a shared runner
    # rarely pushes the two the same way at once.  A tripped measurement
    # is retaken up to twice before failing: a burst of interference is
    # independent across retakes, a regression is not.
    if os.environ.get("REPRO_BENCH_ASSERT_TELEMETRY"):

        def off_overheads(bench: dict) -> tuple[float, float]:
            floor = (bench["off_s_per_call"]
                     / bench["baseline_s_per_call"] - 1.0) * 100
            return floor, bench["off_overhead_pct"]

        floor_pct, median_pct = off_overheads(benches["telemetry"])
        for _retake in range(2):
            if min(floor_pct, median_pct) <= 2.0:
                break
            floor_pct, median_pct = off_overheads(_bench_telemetry())
        assert min(floor_pct, median_pct) <= 2.0, (
            f"telemetry-off train step exceeds the 2% ratchet over the "
            f"untraced baseline arm on both estimators, three times "
            f"(last: floor {floor_pct:+.2f}%, median {median_pct:+.2f}%)")


def write_summary(results_dir) -> dict:
    """Merge every BENCH_*.json into one machine-readable summary."""
    summary = {}
    for path in sorted(results_dir.glob("BENCH_*.json")):
        if path.name == "BENCH_summary.json":
            continue
        try:
            summary[path.stem.removeprefix("BENCH_")] = json.loads(path.read_text())
        except (ValueError, OSError):
            summary[path.stem.removeprefix("BENCH_")] = {"error": "unreadable"}
    (results_dir / "BENCH_summary.json").write_text(
        json.dumps(summary, indent=2) + "\n")
    return summary


def test_summary_aggregates_all_artifacts(results_dir):
    summary = write_summary(results_dir)
    assert "train_step" in summary
    on_disk = json.loads((results_dir / "BENCH_summary.json").read_text())
    expected = {p.stem.removeprefix("BENCH_")
                for p in results_dir.glob("BENCH_*.json")} - {"summary"}
    assert set(on_disk) == expected


if __name__ == "__main__":  # pragma: no cover - manual convenience
    RESULTS_DIR.mkdir(exist_ok=True)
    test_train_step_bench(RESULTS_DIR)
