"""Bench: regenerate Fig. 3 (master/slave processing + communication flow)."""

from repro.experiments import fig3

from benchmarks.conftest import save_artifact


def test_fig3_flow_trace(benchmark, results_dir):
    data = benchmark.pedantic(fig3.run, rounds=1, iterations=1)
    assert data["master_sequence_ok"], data["lanes"].get("master")
    assert all(data["slave_sequences_ok"].values()), data["slave_sequences_ok"]
    save_artifact(results_dir, "fig3.txt", fig3.format_figure(data))
