"""Ablation: exchange synchrony (per-iteration blocking vs stale/async).

The paper's implementation synchronizes neighbor exchange every iteration;
Lipizzaner's original design tolerates stale neighbors.  This bench runs
both on the same workload: the async variant must never be slower than the
synchronous one beyond noise (it removes the wait), at the cost of training
on possibly stale genomes.
"""


import pytest

from repro.coevolution.sequential import build_training_dataset
from repro.experiments.workloads import bench_config
from repro.parallel import DistributedRunner

from benchmarks.conftest import save_artifact

# Multi-minute full-training run: excluded from the fast CI lane.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def workload():
    config = bench_config(3, 3)
    return config, build_training_dataset(config)


def _run(config, dataset, mode):
    return DistributedRunner(
        config, backend="process", dataset=dataset, exchange_mode=mode
    ).run()


def test_ablation_sync_vs_async(benchmark, workload, results_dir):
    config, dataset = workload
    sync_result = _run(config, dataset, "neighbors")
    async_result = benchmark.pedantic(
        lambda: _run(config, dataset, "async"), rounds=1, iterations=1
    )
    assert sync_result.complete and async_result.complete

    sync_s = sync_result.training.wall_time_s
    async_s = async_result.training.wall_time_s
    lines = [
        "ABLATION — EXCHANGE SYNCHRONY (3x3, process backend)",
        f"synchronous (paper):  {sync_s:8.2f}s",
        f"asynchronous (stale): {async_s:8.2f}s",
        f"async/sync ratio:     {async_s / sync_s:8.2f}",
    ]
    save_artifact(results_dir, "ablation_sync.txt", "\n".join(lines))
    # Removing the synchronization wait must not make things slower
    # (allow 30% noise — the workload is seconds-scale).
    assert async_s < sync_s * 1.3


def test_ablation_allgather_exchange(benchmark, workload, results_dir):
    """The paper-style LOCAL allgather moves every center to every slave;
    the neighbor-p2p variant moves only what each cell consumes."""
    config, dataset = workload
    p2p = _run(config, dataset, "neighbors")
    allgather = benchmark.pedantic(
        lambda: _run(config, dataset, "allgather"), rounds=1, iterations=1
    )
    assert allgather.complete
    lines = [
        "ABLATION — EXCHANGE TRANSPORT (3x3, process backend)",
        f"neighbor p2p:     {p2p.training.wall_time_s:8.2f}s",
        f"LOCAL allgather:  {allgather.training.wall_time_s:8.2f}s",
    ]
    save_artifact(results_dir, "ablation_exchange.txt", "\n".join(lines))
