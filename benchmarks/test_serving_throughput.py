"""Bench: serving throughput — batched vs unbatched, and cache hit rate.

The serving claim mirrors the paper's training claim: fusing many small
forward passes into few large ones amortizes fixed per-call cost.  Here we
replay the same open-loop request flood twice — once with coalescing
disabled (``max_batch_samples=1``: one request per engine batch) and once
enabled — and compare samples/sec.  A second scenario replays the synthetic
traffic trace of :mod:`repro.serving.loadtest` against a fully equipped
server (LRU + sample pool) and reports the cache hit rate.
"""

import threading
import time

import numpy as np
import pytest

from repro.config import default_config
from repro.serving import GeneratorServer, ServableEnsemble, replay, synthetic_trace

from benchmarks.conftest import save_artifact
from tests.conftest import make_random_checkpoint

CONCURRENCY = 8
REQUESTS = 400
REQUEST_N = 4


def _random_ensemble(seed: int = 0) -> ServableEnsemble:
    """A servable ensemble from random genomes — no training required."""
    checkpoint = make_random_checkpoint(default_config(2, 2), seed=seed)
    return ServableEnsemble.from_checkpoint(checkpoint, cell=0)


def _flood(ensemble: ServableEnsemble, *, max_batch_samples: int) -> dict:
    """Open-loop flood: every client submits its whole shard, then waits."""
    with GeneratorServer(ensemble, lru_capacity=0, pool_capacity=0,
                         workers=2, max_pending=REQUESTS + CONCURRENCY,
                         max_batch_samples=max_batch_samples,
                         max_delay_s=0.001) as server:
        futures: list = []
        lock = threading.Lock()
        per_client = REQUESTS // CONCURRENCY

        def client(k: int) -> None:
            local = [server.submit(REQUEST_N, seed=100_000 + k * 10_000 + i)
                     for i in range(per_client)]
            with lock:
                futures.extend(local)

        start = time.perf_counter()
        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(CONCURRENCY)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for future in futures:
            future.result(timeout=120)
        elapsed = time.perf_counter() - start
        stats = server.stats()
    return {
        "elapsed_s": elapsed,
        "samples_per_s": REQUESTS * REQUEST_N / elapsed,
        "requests_per_batch": stats.mean_coalesced_requests,
    }


# Wall-clock-ratio assertion: quarantined from the blocking fast CI lane
# (like every sibling benchmark) so a noisy shared runner can't flake it.
@pytest.mark.slow
def test_batched_vs_unbatched_throughput(results_dir):
    ensemble = _random_ensemble()
    _flood(ensemble, max_batch_samples=1)  # warm-up (imports, allocators)
    # Wall-clock ratios are load-sensitive; take the best of three rounds so
    # a noisy neighbor on a shared runner can't fail the assertion.
    speedup = 0.0
    for _ in range(3):
        unbatched = _flood(ensemble, max_batch_samples=1)
        batched = _flood(ensemble, max_batch_samples=4096)
        speedup = batched["samples_per_s"] / unbatched["samples_per_s"]
        if speedup >= 2.0:
            break
    text = "\n".join([
        "SERVING THROUGHPUT (open-loop flood, "
        f"{REQUESTS} requests x {REQUEST_N} samples, "
        f"{CONCURRENCY} clients, 2 workers)",
        f"  unbatched : {unbatched['samples_per_s']:8.0f} samples/s "
        f"({unbatched['requests_per_batch']:.1f} requests/batch)",
        f"  batched   : {batched['samples_per_s']:8.0f} samples/s "
        f"({batched['requests_per_batch']:.1f} requests/batch)",
        f"  speedup   : {speedup:.2f}x",
    ])
    save_artifact(results_dir, "serving_throughput.txt", text)
    # The acceptance bar: coalescing must at least double throughput.
    assert speedup >= 2.0, text
    assert batched["requests_per_batch"] > 2.0


@pytest.mark.slow
def test_cache_hit_rate_under_trace(results_dir):
    ensemble = _random_ensemble()
    rng = np.random.default_rng(7)
    trace = synthetic_trace(400, rng, mean_size=8)
    with GeneratorServer(ensemble, lru_capacity=256, pool_capacity=1024,
                         pool_refill_batch=256, workers=2) as server:
        # Let the pool pre-fill before traffic arrives.
        deadline = time.time() + 15.0
        while server.pool.level < 512 and time.time() < deadline:
            time.sleep(0.01)
        counters = replay(server, trace, concurrency=CONCURRENCY)
        stats = server.stats()
    text = "\n".join([
        f"SERVING CACHE (synthetic trace, {len(trace)} requests, "
        f"{CONCURRENCY} clients)",
        f"  completed  : {counters['completed']} "
        f"({counters['samples']} samples), rejected {counters['rejected']}",
        f"  hit rate   : {stats.cache_hit_rate:.1%} "
        f"(lru {stats.lru_hits}, pool {stats.pool_hits})",
        f"  throughput : {stats.samples_per_s:.0f} samples/s",
        f"  latency    : p50 {stats.p50_latency_s * 1e3:.2f}ms, "
        f"p95 {stats.p95_latency_s * 1e3:.2f}ms",
    ])
    save_artifact(results_dir, "serving_cache.txt", text)
    assert counters["completed"] == len(trace)
    # The trace is half seedless (pool-eligible) and 30% hot seeds
    # (LRU-eligible) — a healthy cache should absorb a decent share.
    assert stats.cache_hit_rate >= 0.25, text
