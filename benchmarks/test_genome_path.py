"""Bench: the genome hot path, before/after the parameter arena (PR 4).

Measures the three routines the arena collapses, each against the legacy
per-tensor implementation that remains in the codebase as the arena-less
fallback:

* **flatten** — ``parameters_to_vector`` into a reused buffer: per-tensor
  copy loop vs one contiguous slice copy out of the arena slab.
* **update_genomes** — ``vector_to_parameters`` (the paper's profiled
  "update genomes" routine): per-tensor scatter loop vs one contiguous
  write into the slab.
* **optimizer_step** — one Adam update: per-tensor Python loop vs the
  fused slab sweep.
* **exchange_round** — a full genome exchange hop: snapshot → wire encode
  → decode → write into a neighbor's network; legacy loops + copying
  ``encode_body`` vs arena + gather-write ``encode_body_parts``.

Results land in ``benchmarks/results/BENCH_genome_path.json`` so the perf
trajectory is trackable across PRs.  The assertions here only check the
benchmark machinery (the CI smoke runs tiny sizes via ``REPRO_BENCH_TINY``);
the ≥2x acceptance numbers are read off the committed artifact.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.config import NetworkSettings
from repro.coevolution.genome import Genome, genome_from_network
from repro.gan.networks import Generator
from repro.mpi import wire
from repro.nn import arena_of, optimizer_by_name, parameters_to_vector
from repro.nn.serialize import _flatten_loop, _scatter_loop, vector_to_parameters

from benchmarks.conftest import save_artifact

# Full-size timing run: the fast CI lane instead runs this module directly
# with REPRO_BENCH_TINY=1 as a seconds-scale machinery smoke.
pytestmark = pytest.mark.slow

_TINY = bool(os.environ.get("REPRO_BENCH_TINY"))
#: Tiny sizes prove the machinery in CI seconds; the committed artifact is
#: produced at the paper's Table I topology (~270k parameters).
_SETTINGS = (NetworkSettings(latent_size=8, hidden_layers=2, hidden_neurons=16,
                             output_neurons=36)
             if _TINY else NetworkSettings())
_REPS = 30 if _TINY else 200


def _timeit(fn, reps: int) -> float:
    """Median-of-5 timing of ``reps`` calls (seconds per call)."""
    samples = []
    for _ in range(5):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter() - start) / reps)
    return float(np.median(samples))


def _bench_pair(before, after, reps: int = _REPS) -> dict:
    before_s, after_s = _timeit(before, reps), _timeit(after, reps)
    return {
        "before_s_per_call": before_s,
        "after_s_per_call": after_s,
        "speedup": before_s / after_s if after_s > 0 else float("inf"),
    }


def _grad_filled(network) -> None:
    arena = arena_of(network)
    arena.ensure_grads()
    rng = np.random.default_rng(7)
    arena.grad[...] = rng.standard_normal(arena.size)


def test_genome_path_microbench(results_dir):
    rng = np.random.default_rng(0)
    network = Generator(_SETTINGS, rng)
    neighbor = Generator(_SETTINGS, rng)
    arena = arena_of(network)
    n = arena.size
    buf = np.empty(n, dtype=np.float64)
    vec = np.random.default_rng(1).standard_normal(n)

    benches = {}

    # -- flatten into a reused buffer: per-tensor loop vs one slab copy ----
    benches["flatten_copy"] = _bench_pair(
        lambda: _flatten_loop(network, buf),
        lambda: parameters_to_vector(network, out=buf),
    )
    np.testing.assert_array_equal(_flatten_loop(network, buf.copy()),
                                  parameters_to_vector(network))

    # -- flatten for local consumption: the pre-arena code allocated and
    #    loop-copied a fresh vector; the arena path borrows the live slab
    #    (alias=True — what the sub-population update and promote now do).
    benches["flatten_borrow"] = _bench_pair(
        lambda: _flatten_loop(network, np.empty(n, dtype=np.float64)),
        lambda: parameters_to_vector(network, alias=True),
    )

    # -- update genomes, the per-network unit of the profiled routine:
    #    move one network's parameters into another network.  Pre-arena:
    #    allocating per-tensor flatten + per-tensor scatter (two loop
    #    copies).  Arena: borrow the source slab, one contiguous write.
    def legacy_update() -> None:
        snapshot = _flatten_loop(network, np.empty(n, dtype=np.float64))
        _scatter_loop(snapshot, neighbor)

    def arena_update() -> None:
        vector_to_parameters(parameters_to_vector(network, alias=True), neighbor)

    benches["update_genomes"] = _bench_pair(legacy_update, arena_update)

    # -- update genomes from a *received* vector (remote neighbors): the
    #    write half alone — per-tensor scatter vs one contiguous write.
    benches["update_genomes_neighbor"] = _bench_pair(
        lambda: _scatter_loop(vec, network),
        lambda: vector_to_parameters(vec, network),
    )

    # -- optimizer step: per-tensor Adam loop vs fused slab sweep ----------
    _grad_filled(network)
    legacy_opt = optimizer_by_name("adam", network.parameters(), 1e-4)
    fused_opt = optimizer_by_name("adam", network.parameters(), 1e-4,
                                  arena=arena)
    benches["optimizer_step"] = _bench_pair(legacy_opt.step, fused_opt.step)

    # -- a full exchange hop ----------------------------------------------
    def legacy_round() -> None:
        genome = Genome(_flatten_loop(network, np.empty(n)), 1e-4, "bce")
        body = wire.encode_body(genome)          # copying join
        received: Genome = wire.decode_body(body)
        _scatter_loop(received.parameters, neighbor)

    def arena_round() -> None:
        genome = genome_from_network(network, 1e-4, "bce")  # one memcpy
        parts = wire.encode_body_parts(genome)   # gather-write, no joins
        received: Genome = wire.decode_body(b"".join(parts))
        received.write_into(neighbor)

    benches["exchange_round"] = _bench_pair(legacy_round, arena_round,
                                            reps=max(5, _REPS // 10))

    payload = {
        "network": {
            "latent_size": _SETTINGS.latent_size,
            "hidden_layers": _SETTINGS.hidden_layers,
            "hidden_neurons": _SETTINGS.hidden_neurons,
            "output_neurons": _SETTINGS.output_neurons,
            "parameters": int(n),
        },
        "tiny": _TINY,
        "reps": _REPS,
        "benches": benches,
    }
    save_artifact(results_dir, "BENCH_genome_path.json",
                  json.dumps(payload, indent=2))

    # Machinery assertions only (thresholds are read off the artifact):
    # every bench produced finite positive timings, and the arena paths
    # computed the same bytes the legacy paths did.
    for name, bench in benches.items():
        assert bench["before_s_per_call"] > 0, name
        assert bench["after_s_per_call"] > 0, name
        assert np.isfinite(bench["speedup"]), name
    snapshot = parameters_to_vector(network)
    legacy_snapshot = _flatten_loop(network, np.empty(n))
    np.testing.assert_array_equal(snapshot, legacy_snapshot)
    np.testing.assert_array_equal(parameters_to_vector(neighbor),
                                  parameters_to_vector(network))
