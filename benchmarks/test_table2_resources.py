"""Bench: regenerate Table II (resources used on each execution).

Measures the master's placement path — platform inspection plus the
balanced task placement — for each of the paper's grid sizes, and checks
the cores/memory accounting against the paper's numbers.
"""

import pytest

from repro.cluster import cluster_uy, place_tasks, table2_resources
from repro.experiments import table2
from repro.experiments.workloads import PAPER_GRIDS

from benchmarks.conftest import save_artifact


@pytest.mark.parametrize("rows,cols", PAPER_GRIDS, ids=["2x2", "3x3", "4x4"])
def test_table2_placement(benchmark, rows, cols):
    resources = table2_resources(rows, cols)

    def place():
        platform = cluster_uy()
        return place_tasks(platform, tasks=resources["cores"])

    plan = benchmark(place)
    assert plan.tasks == resources["cores"]
    assert plan.max_load() == 1  # 30 empty nodes -> perfectly spread


def test_table2_rows_match_paper(benchmark, results_dir):
    rows = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    assert all(row.cores_match for row in rows)
    for row in rows:
        assert abs(row.memory_mb - row.paper_memory_mb) <= 1024
    save_artifact(results_dir, "table2.txt", table2.format_table(rows))
