"""Bench: regenerate Fig. 1 (toroidal grid, overlapping neighborhoods)."""

from repro.experiments import fig1

from benchmarks.conftest import save_artifact


def test_fig1_neighborhood_structure(benchmark, results_dir):
    data = benchmark(fig1.run)
    # The two neighborhoods the paper's figure draws:
    assert data["example_interior"] == [(1, 1), (1, 0), (0, 1), (1, 2), (2, 1)]
    assert data["example_wrapping"] == [(1, 3), (1, 2), (0, 3), (1, 0), (2, 3)]
    # Overlap property: every cell is in exactly 5 neighborhoods.
    for coords, containing in data["overlaps"].items():
        assert len(set(containing)) == 5
    save_artifact(results_dir, "fig1.txt", fig1.format_figure(data))
