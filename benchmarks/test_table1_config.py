"""Bench: regenerate Table I (parameter settings of the trained GANs).

A configuration artifact — the "measurement" is building and validating the
configuration object the master broadcasts, which is also the payload cost
of the run-task message.
"""

from repro.config import ExperimentConfig, paper_table1_config
from repro.experiments import table1

from benchmarks.conftest import save_artifact


def test_table1_parameters(benchmark, results_dir):
    result = benchmark.pedantic(table1.run, rounds=3, iterations=1)
    assert result["all_match"], result["matches_paper"]
    save_artifact(results_dir, "table1.txt", result["table"])


def test_table1_config_broadcast_roundtrip(benchmark):
    """The config's JSON round-trip is what every slave deserializes."""
    config = paper_table1_config(4, 4)

    def roundtrip():
        return ExperimentConfig.from_json(config.to_json())

    clone = benchmark(roundtrip)
    assert clone == config
