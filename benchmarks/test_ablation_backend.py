"""Ablation: execution backend (sequential vs threaded vs process).

The motivation for the paper's *distributed-memory* design.  Python threads
get only partial parallelism: NumPy releases the GIL inside BLAS kernels,
but all interpreter-level work (autograd bookkeeping, the coevolutionary
logic, message handling) serializes on one GIL.  True processes parallelize
everything.  This bench quantifies both on the 3x3 workload — measured here:
threads ~1.5x over sequential, processes ~3.5x.
"""

import pytest

from repro.coevolution import SequentialTrainer
from repro.coevolution.sequential import build_training_dataset
from repro.experiments.workloads import bench_config
from repro.parallel import DistributedRunner

from benchmarks.conftest import save_artifact

# Multi-minute full-training run: excluded from the fast CI lane.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def workload():
    config = bench_config(3, 3)
    return config, build_training_dataset(config)


def test_ablation_backend(benchmark, workload, results_dir):
    config, dataset = workload
    sequential = SequentialTrainer(config, dataset).run()
    threaded = DistributedRunner(config, backend="threaded", dataset=dataset).run()

    process = benchmark.pedantic(
        lambda: DistributedRunner(config, backend="process", dataset=dataset).run(),
        rounds=1, iterations=1,
    )

    seq_s = sequential.wall_time_s
    thr_s = threaded.training.wall_time_s
    proc_s = process.training.wall_time_s
    lines = [
        "ABLATION — EXECUTION BACKEND (3x3 grid, identical protocol)",
        f"sequential (single core):     {seq_s:8.2f}s",
        f"threaded ranks (one GIL):     {thr_s:8.2f}s",
        f"process ranks (distributed):  {proc_s:8.2f}s",
        f"process speedup vs sequential: {seq_s / proc_s:7.2f}",
        f"threaded speedup vs sequential:{seq_s / thr_s:7.2f}",
        "",
        "threads parallelize only the GIL-releasing BLAS kernels; processes",
        "parallelize the Python-level training logic too.",
    ]
    save_artifact(results_dir, "ablation_backend.txt", "\n".join(lines))

    # Processes must clearly win over both, and threads cannot approach
    # process scaling (interpreter work serializes on the GIL).
    assert proc_s < seq_s
    assert proc_s < thr_s
    assert (seq_s / proc_s) > 1.3 * (seq_s / thr_s)
