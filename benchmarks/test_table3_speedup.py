"""Bench: regenerate Table III (execution times + speedup per grid size).

The paper's headline result.  For every grid size the identical workload
runs through the single-core SequentialTrainer and the process-backend
DistributedRunner (one rank per core); the distributed run is the
registered benchmark measurement.

Shape assertions (the reproduction criteria):
  * distributed beats single-core on every grid;
  * speedup grows monotonically with the cell count (4 -> 9 -> 16).

Scale the workload up with REPRO_BENCH_ITERATIONS / REPRO_BENCH_DATASET to
approach the paper's asymptotic speedups.
"""

import pytest

from repro.coevolution import SequentialTrainer
from repro.coevolution.sequential import build_training_dataset
from repro.experiments import table3
from repro.experiments.workloads import PAPER_GRIDS, bench_config
from repro.parallel import DistributedRunner

from benchmarks.conftest import save_artifact

# Multi-minute full-training run: excluded from the fast CI lane.
pytestmark = pytest.mark.slow


@pytest.mark.parametrize("rows,cols", PAPER_GRIDS, ids=["2x2", "3x3", "4x4"])
def test_table3_grid(benchmark, artifact_store, rows, cols):
    config = bench_config(rows, cols)
    dataset = build_training_dataset(config)

    sequential = SequentialTrainer(config, dataset).run()

    def distributed_run():
        return DistributedRunner(config, backend="process", dataset=dataset).run()

    result = benchmark.pedantic(distributed_run, rounds=1, iterations=1)
    assert result.complete

    row = table3.Table3Row(
        grid=(rows, cols),
        single_core_s=sequential.wall_time_s,
        distributed_mean_s=result.training.wall_time_s,
        distributed_std_s=0.0,
        paper_speedup=table3.PAPER_VALUES[(rows, cols)]["speedup"],
        distributed_samples=[result.training.wall_time_s],
    )
    artifact_store.setdefault("table3_rows", []).append(row)

    # Core shape: the distributed version wins.
    assert row.speedup > 1.0, (
        f"distributed ({row.distributed_mean_s:.1f}s) did not beat "
        f"single-core ({row.single_core_s:.1f}s) on {rows}x{cols}"
    )


def test_table3_summary(benchmark, artifact_store, results_dir):
    rows = sorted(artifact_store.get("table3_rows", []),
                  key=lambda r: r.grid[0] * r.grid[1])
    assert len(rows) == 3, "run the per-grid benches first (natural file order)"

    def assemble():
        return table3.format_table(rows)

    text = benchmark.pedantic(assemble, rounds=1, iterations=1)
    save_artifact(results_dir, "table3.txt", text)

    # The paper's scaling shape: speedup grows with the grid size.
    speedups = [row.speedup for row in rows]
    assert speedups[0] < speedups[1] < speedups[2], speedups
