"""Transport overhead: per-iteration exchange latency, process vs. socket.

The socket transport adds two serialization hops and a coordinator relay to
every message the process transport moves through a kernel pipe.  This
bench measures what that costs where it matters — the per-iteration
neighbor exchange of genome-sized arrays — and records the baseline in
``BENCH_transport.json`` so future transport work (zero-copy framing,
direct worker-to-worker connections) has a number to beat.

Pattern: every rank sendrecv's a genome-sized vector around a ring, one
round per iteration, like the LOCAL exchange of the training loop.
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.mpi import run_mpi

# Wall-clock-sensitive multi-process measurement: slow lane, like every
# other bench that spawns ranks (the CI socket-smoke job covers the fast
# lane's rendezvous/exchange/shutdown coverage).
pytestmark = pytest.mark.slow

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE = RESULTS_DIR / "BENCH_transport.json"

#: Roughly one generator genome (float64) — the unit the exchange moves.
PAYLOAD_FLOATS = 120_000
ITERATIONS = 40
RANKS = 5  # 2x2 grid: one master-sized rank plus four slaves


def exchange_program(world, payload_floats, iterations):
    """Timed ring exchange; returns this rank's mean seconds per iteration."""
    rank, size = world.Get_rank(), world.Get_size()
    own = np.full(payload_floats, float(rank))
    dest, source = (rank + 1) % size, (rank - 1) % size
    world.barrier(timeout=60)  # start the clock together
    start = time.perf_counter()
    for iteration in range(iterations):
        incoming = world.sendrecv(own, dest=dest, source=source,
                                  sendtag=1, recvtag=1, timeout=60)
        assert incoming.shape == own.shape
    elapsed = time.perf_counter() - start
    world.barrier(timeout=60)
    return elapsed / iterations


def _measure(backend: str, transport_options=None) -> dict:
    wall_start = time.perf_counter()
    per_rank = run_mpi(RANKS, exchange_program,
                       args=(PAYLOAD_FLOATS, ITERATIONS),
                       backend=backend, timeout=300,
                       transport_options=transport_options)
    wall = time.perf_counter() - wall_start
    stats = per_rank.transport_stats
    return {
        "mean_iteration_latency_s": float(np.mean(per_rank)),
        "max_iteration_latency_s": float(np.max(per_rank)),
        "startup_plus_run_wall_s": wall,
        "messages_per_rank": stats[0].messages_sent,
        "payload_bytes_per_rank": stats[0].bytes_sent,
    }


def test_transport_overhead_process_vs_socket(results_dir):
    process = _measure("process")
    socket_one = _measure("socket")
    socket_two = _measure("socket",
                          {"hosts": f"127.0.0.1:{RANKS - 2},127.0.0.1:2"})

    baseline = {
        "bench": "transport_overhead",
        "ranks": RANKS,
        "iterations": ITERATIONS,
        "payload_bytes": PAYLOAD_FLOATS * 8,
        "pattern": "ring sendrecv (one round per iteration)",
        "backends": {
            "process": process,
            "socket-1worker": socket_one,
            "socket-2workers": socket_two,
        },
        "socket_overhead_factor": (
            socket_two["mean_iteration_latency_s"]
            / max(process["mean_iteration_latency_s"], 1e-9)
        ),
    }
    BASELINE.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"\n{json.dumps(baseline, indent=2)}\n"
          f"[saved to benchmarks/results/{BASELINE.name}]")

    # Correctness-shaped assertions only — absolute timings are machine
    # noise, but every backend must have moved the same traffic.
    for record in (process, socket_one, socket_two):
        assert record["mean_iteration_latency_s"] > 0
        assert record["messages_per_rank"] >= ITERATIONS
        assert record["payload_bytes_per_rank"] >= ITERATIONS * PAYLOAD_FLOATS * 8
    assert BASELINE.exists()
