"""Unit tests for the heartbeat monitor, using a fake comm layer."""

import threading
import time

import pytest

from repro.parallel.heartbeat import HeartbeatMonitor, SlaveLiveness
from repro.parallel.messages import StatusReply
from repro.parallel.states import SlaveState


class FakeComm:
    """A controllable stand-in for the master's comm manager."""

    def __init__(self):
        self.requests: list[int] = []
        self._replies: list[StatusReply] = []
        self._lock = threading.Lock()

    def request_status(self, rank: int) -> None:
        with self._lock:
            self.requests.append(rank)

    def queue_reply(self, rank: int, state: str = "processing", iteration: int = 0):
        with self._lock:
            self._replies.append(StatusReply(rank, state, iteration, time.time()))

    def drain_status_replies(self):
        with self._lock:
            replies, self._replies = self._replies, []
            return replies


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture()
def comm():
    return FakeComm()


class TestLiveness:
    def test_initial_entry(self):
        entry = SlaveLiveness(rank=3)
        assert not entry.finished and not entry.dead and not entry.accounted

    def test_accounted_states(self):
        finished = SlaveLiveness(rank=1, state=SlaveState.FINISHED.value)
        dead = SlaveLiveness(rank=2, dead=True)
        assert finished.accounted and dead.accounted


class TestMonitor:
    def test_validation(self, comm):
        with pytest.raises(ValueError):
            HeartbeatMonitor(comm, [1], interval_s=0.0)
        with pytest.raises(ValueError):
            HeartbeatMonitor(comm, [1], miss_limit=0)

    def test_polls_processing_slaves(self, comm):
        monitor = HeartbeatMonitor(comm, [1, 2], interval_s=0.02, miss_limit=100)
        monitor.start()
        try:
            assert wait_until(lambda: comm.requests.count(1) >= 2)
            assert wait_until(lambda: comm.requests.count(2) >= 2)
        finally:
            monitor.stop()

    def test_records_replies(self, comm):
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=100)
        monitor.start()
        try:
            comm.queue_reply(1, "processing", iteration=7)
            assert wait_until(
                lambda: monitor.snapshot()[1].iteration == 7
            )
            assert monitor.snapshot()[1].missed_rounds == 0
        finally:
            monitor.stop()

    def test_detects_death_after_miss_limit(self, comm):
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=3)
        monitor.start()
        try:
            assert wait_until(monitor.deaths_detected.is_set)
            assert monitor.dead_ranks() == [1]
            assert monitor.all_accounted()
        finally:
            monitor.stop()

    def test_replying_slave_stays_alive(self, comm):
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=3)

        # Answer every request promptly from a feeder thread.
        stop = threading.Event()

        def feeder():
            answered = 0
            while not stop.is_set():
                if len(comm.requests) > answered:
                    answered = len(comm.requests)
                    comm.queue_reply(1, "processing")
                time.sleep(0.005)

        thread = threading.Thread(target=feeder, daemon=True)
        thread.start()
        monitor.start()
        try:
            time.sleep(0.3)  # many intervals
            assert not monitor.deaths_detected.is_set()
            assert monitor.dead_ranks() == []
        finally:
            stop.set()
            monitor.stop()
            thread.join(timeout=2)

    def test_mark_finished_stops_polling(self, comm):
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=1000)
        monitor.start()
        try:
            assert wait_until(lambda: len(comm.requests) >= 1)
            monitor.mark_finished(1)
            count = len(comm.requests)
            time.sleep(0.1)
            # At most one in-flight round after marking finished.
            assert len(comm.requests) <= count + 1
            assert monitor.all_accounted()
        finally:
            monitor.stop()

    def test_finished_reply_accounts_slave(self, comm):
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=1000)
        monitor.start()
        try:
            comm.queue_reply(1, SlaveState.FINISHED.value, iteration=9)
            assert wait_until(lambda: monitor.snapshot()[1].finished)
            assert monitor.all_accounted()
        finally:
            monitor.stop()

    def test_monitor_thread_exits_when_all_accounted(self, comm):
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=2)
        monitor.start()
        assert wait_until(lambda: not monitor._thread.is_alive())

    def test_snapshot_is_a_copy(self, comm):
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=3)
        snap = monitor.snapshot()
        snap[1].dead = True
        assert not monitor.liveness[1].dead
