"""Round-trip tests for the IDX (MNIST file format) reader/writer."""

import io

import numpy as np
import pytest

from repro.data.mnist_idx import (
    IdxFormatError,
    read_idx_file,
    read_idx_images,
    read_idx_labels,
    write_idx_file,
)


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", ["u1", "i1", "i2", "i4", "f4", "f8"])
    def test_dtypes(self, rng, dtype):
        array = (rng.normal(size=(4, 3)) * 10).astype(dtype)
        buf = io.BytesIO()
        write_idx_file(buf, array)
        buf.seek(0)
        out = read_idx_file(buf)
        np.testing.assert_array_equal(out, array)

    def test_3d_images(self, rng):
        imgs = (rng.uniform(0, 255, size=(5, 28, 28))).astype(np.uint8)
        buf = io.BytesIO()
        write_idx_file(buf, imgs)
        buf.seek(0)
        np.testing.assert_array_equal(read_idx_file(buf), imgs)

    def test_file_paths(self, tmp_path, rng):
        path = tmp_path / "labels-idx1-ubyte"
        labels = rng.integers(0, 10, size=20).astype(np.uint8)
        write_idx_file(path, labels)
        np.testing.assert_array_equal(read_idx_labels(path), labels)

    def test_read_idx_images_normalizes(self, tmp_path):
        path = tmp_path / "images-idx3-ubyte"
        imgs = np.full((2, 28, 28), 255, dtype=np.uint8)
        write_idx_file(path, imgs)
        out = read_idx_images(path)
        assert out.shape == (2, 784)
        assert out.max() == pytest.approx(1.0)

    def test_native_byte_order_output(self, rng):
        buf = io.BytesIO()
        write_idx_file(buf, rng.normal(size=(3,)).astype(">f8"))
        buf.seek(0)
        out = read_idx_file(buf)
        assert out.dtype.byteorder in ("=", "<", "|")


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(IdxFormatError, match="magic"):
            read_idx_file(io.BytesIO(b"\x01\x00\x08\x01\x00\x00\x00\x01x"))

    def test_unknown_dtype_code(self):
        with pytest.raises(IdxFormatError, match="dtype"):
            read_idx_file(io.BytesIO(b"\x00\x00\xff\x01\x00\x00\x00\x01x"))

    def test_truncated_dims(self):
        with pytest.raises(IdxFormatError, match="dimension"):
            read_idx_file(io.BytesIO(b"\x00\x00\x08\x02\x00\x00\x00\x01"))

    def test_truncated_payload(self):
        with pytest.raises(IdxFormatError, match="payload"):
            read_idx_file(io.BytesIO(b"\x00\x00\x08\x01\x00\x00\x00\x05xx"))

    def test_write_unsupported_dtype(self):
        with pytest.raises(IdxFormatError):
            write_idx_file(io.BytesIO(), np.zeros(3, dtype=np.complex128))

    def test_images_must_be_3d(self, tmp_path):
        path = tmp_path / "bad"
        write_idx_file(path, np.zeros(4, dtype=np.uint8))
        with pytest.raises(IdxFormatError):
            read_idx_images(path)

    def test_labels_must_be_1d(self, tmp_path):
        path = tmp_path / "bad"
        write_idx_file(path, np.zeros((2, 2), dtype=np.uint8))
        with pytest.raises(IdxFormatError):
            read_idx_labels(path)
