"""Unit tests for SlaveProcess against a scripted fake comm manager.

These isolate the slave's control logic — the two-thread structure, the
Fig. 2 state machine, status replies, the abort path and fault injection —
from the MPI runtime (which has its own tests).
"""

import threading

import pytest

from repro.coevolution.genome import Genome
from repro.parallel.comm_manager import CommManager
from repro.parallel.grid import Grid
from repro.parallel.messages import ExchangePayload, RunTask
from repro.parallel.slave import InjectedFault, SlaveProcess
from repro.parallel.states import SlaveState
from tests.conftest import make_quick_config


class ScriptedComm(CommManager):
    """Plays the master and all neighbors for one slave under test."""

    def __init__(self, task: RunTask, rank: int = 1):
        self._rank = rank
        self.task = task
        self.node_info = None
        self.status_replies = []
        self.result = None
        self.contexts_built = False
        self.abort_now = threading.Event()
        self.request_status_now = threading.Event()
        self._echo_genomes: dict[int, ExchangePayload] = {}

    # identity ---------------------------------------------------------------
    @property
    def rank(self):
        return self._rank

    @property
    def size(self):
        return 5

    # setup ---------------------------------------------------------------------
    def send_node_info(self, info):
        self.node_info = info

    def wait_for_run_task(self):
        return self.task

    def build_contexts(self, is_active_slave):
        self.contexts_built = True

    # heartbeat -------------------------------------------------------------------
    def poll_status_request(self):
        if self.request_status_now.is_set():
            self.request_status_now.clear()
            return True
        return False

    def reply_status(self, reply):
        self.status_replies.append(reply)

    def poll_abort(self):
        return self.abort_now.is_set()

    # exchange ---------------------------------------------------------------------
    def exchange_genomes(self, grid, cell_index, payload, mode, timer=None,
                         abort_event=None, fault_state=None, catch_up=False,
                         resync_until=None):
        if abort_event is not None and abort_event.is_set():
            from repro.parallel.comm_manager import ExchangeAborted

            raise ExchangeAborted("scripted abort")
        # Echo the slave's own center back as every neighbor's genome.
        return {
            neighbor: ExchangePayload(
                neighbor, payload.iteration,
                payload.generator_genome.copy(),
                payload.discriminator_genome.copy(),
            )
            for neighbor in grid.neighbor_cells(cell_index)
        }

    # results -----------------------------------------------------------------------
    def send_result(self, result):
        self.result = result


def make_task(config, **overrides):
    defaults = dict(
        config_json=config.to_json(),
        cell_index=0,
        grid_payload=Grid(config.coevolution.grid_rows,
                          config.coevolution.grid_cols).to_payload(),
        assigned_node="node00",
    )
    defaults.update(overrides)
    return RunTask(**defaults)


@pytest.fixture()
def config():
    return make_quick_config(2, 2, iterations=2)


class TestHappyPath:
    def test_full_lifecycle(self, config, small_dataset):
        comm = ScriptedComm(make_task(config))
        slave = SlaveProcess(comm, small_dataset)
        result = slave.run()

        assert comm.node_info.rank == 1
        assert comm.contexts_built
        assert slave.machine.state is SlaveState.FINISHED
        assert comm.result is result
        assert result.cell_index == 0
        assert len(result.reports) == 2
        assert isinstance(result.generator_genome, Genome)

    def test_state_history_matches_fig2(self, config, small_dataset):
        comm = ScriptedComm(make_task(config))
        slave = SlaveProcess(comm, small_dataset)
        slave.run()
        events = [t.event for t in slave.machine.history]
        assert events == ["run task message", "last iteration performed"]

    def test_status_requests_answered_during_training(self, config, small_dataset):
        comm = ScriptedComm(make_task(config))
        slave = SlaveProcess(comm, small_dataset, poll_interval_s=0.001)
        comm.request_status_now.set()  # pending before training starts
        slave.run()
        assert comm.status_replies, "no status reply recorded"
        assert comm.status_replies[0].rank == 1
        assert comm.status_replies[0].state in ("inactive", "processing", "finished")

    def test_profile_flag_produces_timer(self, config, small_dataset):
        comm = ScriptedComm(make_task(config, profile=True))
        result = SlaveProcess(comm, small_dataset).run()
        assert result.timer is not None
        assert result.timer.seconds("train") > 0

    def test_trace_flag_records_events(self, config, small_dataset):
        comm = ScriptedComm(make_task(config, trace=True))
        result = SlaveProcess(comm, small_dataset).run()
        events = [e.event for e in result.trace_events]
        assert "start training" in events
        assert "send results to master" in events

    def test_no_trace_by_default(self, config, small_dataset):
        comm = ScriptedComm(make_task(config))
        result = SlaveProcess(comm, small_dataset).run()
        assert result.trace_events == []


class TestAbortPath:
    def test_abort_yields_partial_result(self, config, small_dataset):
        import dataclasses

        coev = dataclasses.replace(config.coevolution, iterations=1000)
        long_config = dataclasses.replace(config, coevolution=coev)
        comm = ScriptedComm(make_task(long_config))
        slave = SlaveProcess(comm, small_dataset, poll_interval_s=0.001)

        # Trip the abort as soon as the first status reply proves the
        # execution thread is alive.
        def tripwire():
            import time

            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if slave._iteration >= 1:
                    comm.abort_now.set()
                    return
                time.sleep(0.002)

        trigger = threading.Thread(target=tripwire, daemon=True)
        trigger.start()
        result = slave.run()
        trigger.join(timeout=5)

        assert result.aborted
        assert slave.machine.state is SlaveState.FINISHED
        assert 0 < len(result.reports) < 1000


class TestFaultInjection:
    def test_injected_fault_propagates(self, config, small_dataset):
        comm = ScriptedComm(make_task(config, fault_at_iteration=1))
        slave = SlaveProcess(comm, small_dataset)
        with pytest.raises(InjectedFault, match="iteration 1"):
            slave.run()
        assert comm.result is None  # died before reporting

    def test_fault_at_iteration_zero(self, config, small_dataset):
        comm = ScriptedComm(make_task(config, fault_at_iteration=0))
        with pytest.raises(InjectedFault):
            SlaveProcess(comm, small_dataset).run()
