"""Tests for training checkpoints (survive the 96-hour wall-time limit)."""

import numpy as np
import pytest

from repro.coevolution import (
    SequentialTrainer,
    TrainingCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from tests.conftest import make_quick_config


@pytest.fixture()
def trained_trainer(small_dataset):
    config = make_quick_config(2, 2, iterations=4)
    trainer = SequentialTrainer(config, small_dataset)
    trainer.run(iterations=2)  # halfway through the configured 4
    return trainer


class TestSnapshot:
    def test_from_trainer(self, trained_trainer):
        checkpoint = TrainingCheckpoint.from_trainer(trained_trainer)
        assert checkpoint.iteration == 2
        assert checkpoint.remaining_iterations == 2
        assert len(checkpoint.center_genomes) == 4
        assert all(w.shape == (5,) for w in checkpoint.mixture_weights)

    def test_validation_wrong_cell_count(self, trained_trainer):
        checkpoint = TrainingCheckpoint.from_trainer(trained_trainer)
        with pytest.raises(ValueError, match="genomes"):
            TrainingCheckpoint(
                config=checkpoint.config,
                iteration=1,
                center_genomes=checkpoint.center_genomes[:2],
                mixture_weights=checkpoint.mixture_weights[:2],
            )

    def test_validation_negative_iteration(self, trained_trainer):
        checkpoint = TrainingCheckpoint.from_trainer(trained_trainer)
        with pytest.raises(ValueError, match="iteration"):
            TrainingCheckpoint(
                config=checkpoint.config,
                iteration=-1,
                center_genomes=checkpoint.center_genomes,
                mixture_weights=checkpoint.mixture_weights,
            )

    def test_summary_and_repr(self, trained_trainer):
        checkpoint = TrainingCheckpoint.from_trainer(trained_trainer)
        summary = checkpoint.summary()
        assert "grid 2x2 (4 cells)" in summary
        assert "iteration 2/4" in summary
        assert "2 remaining" in summary
        assert summary in repr(checkpoint)


class TestFileRoundTrip:
    def test_save_load_identical(self, trained_trainer, tmp_path):
        checkpoint = TrainingCheckpoint.from_trainer(trained_trainer)
        path = tmp_path / "run.ckpt.npz"
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path)
        assert loaded.iteration == checkpoint.iteration
        assert loaded.config == checkpoint.config
        for (g1, d1), (g2, d2) in zip(checkpoint.center_genomes, loaded.center_genomes):
            np.testing.assert_array_equal(g1.parameters, g2.parameters)
            np.testing.assert_array_equal(d1.parameters, d2.parameters)
            assert g1.learning_rate == g2.learning_rate
            assert g1.loss_name == g2.loss_name
        for w1, w2 in zip(checkpoint.mixture_weights, loaded.mixture_weights):
            np.testing.assert_array_equal(w1, w2)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = tmp_path / "random.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_atomic_write_leaves_no_tmp(self, trained_trainer, tmp_path):
        checkpoint = TrainingCheckpoint.from_trainer(trained_trainer)
        path = tmp_path / "run.ckpt.npz"
        save_checkpoint(path, checkpoint)
        leftovers = [p for p in tmp_path.iterdir() if "tmp" in p.name]
        assert leftovers == []


class TestResume:
    def test_resume_runs_remaining_iterations(self, trained_trainer, small_dataset,
                                              tmp_path):
        path = tmp_path / "run.ckpt.npz"
        save_checkpoint(path, TrainingCheckpoint.from_trainer(trained_trainer))
        resumed = SequentialTrainer.from_checkpoint(load_checkpoint(path), small_dataset)
        assert resumed.start_iteration == 2
        result = resumed.run()  # runs only the remaining 2 of 4 iterations
        assert all(len(reports) == 2 for reports in result.cell_reports)
        # Cells continue counting from the checkpointed iteration.
        assert all(cell.iteration == 4 for cell in resumed.cells)

    def test_resume_starts_from_checkpointed_genomes(self, trained_trainer,
                                                     small_dataset, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        checkpoint = TrainingCheckpoint.from_trainer(trained_trainer)
        save_checkpoint(path, checkpoint)
        resumed = SequentialTrainer.from_checkpoint(load_checkpoint(path), small_dataset)
        for cell, (g, _) in zip(resumed.cells, checkpoint.center_genomes):
            restored, _ = cell.center_genomes()
            np.testing.assert_array_equal(restored.parameters, g.parameters)

    def test_resume_is_deterministic(self, trained_trainer, small_dataset, tmp_path):
        path = tmp_path / "run.ckpt.npz"
        save_checkpoint(path, TrainingCheckpoint.from_trainer(trained_trainer))

        def resume_and_finish():
            trainer = SequentialTrainer.from_checkpoint(
                load_checkpoint(path), small_dataset
            )
            result = trainer.run()
            return result.center_genomes[0][0].parameters

        np.testing.assert_array_equal(resume_and_finish(), resume_and_finish())

    def test_restore_adopts_genome_loss(self, small_dataset):
        config = make_quick_config(2, 2, iterations=2)
        trainer = SequentialTrainer(config, small_dataset)
        cell = trainer.cells[0]
        g, d = cell.center_genomes()
        g.loss_name = "mse"
        d.loss_name = "mse"
        cell.restore(g, d, np.full(5, 0.2), iteration=1)
        assert cell.loss_name == "mse"
        assert cell.center.loss.name == "mse"
        assert cell.iteration == 1
