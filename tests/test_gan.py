"""Tests for the GAN networks, pair training steps, and sampling."""

import numpy as np
import pytest

from repro.config import NetworkSettings, paper_table1_config
from repro.gan import (
    Discriminator,
    Generator,
    build_gan_pair,
    generate_images,
    sample_latent,
)
from repro.nn import Tensor
from repro.nn.serialize import count_parameters


@pytest.fixture()
def settings():
    return NetworkSettings()  # the Table I topology


class TestNetworks:
    def test_generator_shapes(self, settings, rng):
        gen = Generator(settings, rng)
        out = gen(Tensor(rng.normal(size=(3, 64))))
        assert out.shape == (3, 784)

    def test_generator_output_in_tanh_range(self, settings, rng):
        gen = Generator(settings, rng)
        out = gen(Tensor(rng.normal(size=(16, 64)))).numpy()
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_generator_rejects_wrong_latent(self, settings, rng):
        gen = Generator(settings, rng)
        with pytest.raises(ValueError):
            gen(Tensor(rng.normal(size=(3, 32))))

    def test_discriminator_shapes(self, settings, rng):
        disc = Discriminator(settings, rng)
        out = disc(Tensor(rng.normal(size=(5, 784))))
        assert out.shape == (5, 1)

    def test_discriminator_rejects_wrong_width(self, settings, rng):
        disc = Discriminator(settings, rng)
        with pytest.raises(ValueError):
            disc(Tensor(rng.normal(size=(5, 100))))

    def test_table1_parameter_counts(self, settings, rng):
        gen = Generator(settings, rng)
        # 64*256+256 + 256*256+256 + 256*784+784
        assert count_parameters(gen) == 64 * 256 + 256 + 256 * 256 + 256 + 256 * 784 + 784
        disc = Discriminator(settings, rng)
        assert count_parameters(disc) == 784 * 256 + 256 + 256 * 256 + 256 + 256 + 1

    def test_different_rng_different_weights(self, settings):
        a = Generator(settings, np.random.default_rng(1))
        b = Generator(settings, np.random.default_rng(2))
        pa = a.parameters()[0].numpy()
        pb = b.parameters()[0].numpy()
        assert np.abs(pa - pb).max() > 0


class TestSampling:
    def test_sample_latent_shape(self, rng):
        z = sample_latent(7, 64, rng)
        assert z.shape == (7, 64)

    def test_sample_latent_validation(self, rng):
        with pytest.raises(ValueError):
            sample_latent(-1, 64, rng)
        with pytest.raises(ValueError):
            sample_latent(1, 0, rng)

    def test_sample_latent_zero_is_empty(self, rng):
        # Zero-count shards are legitimate in the serving batching engine.
        assert sample_latent(0, 64, rng).shape == (0, 64)

    def test_generate_images(self, settings, rng):
        gen = Generator(settings, rng)
        imgs = generate_images(gen, 10, rng)
        assert imgs.shape == (10, 784)

    def test_generate_images_zero_is_empty(self, settings, rng):
        gen = Generator(settings, rng)
        assert generate_images(gen, 0, rng).shape == (0, 784)
        with pytest.raises(ValueError):
            generate_images(gen, -1, rng)

    def test_generate_images_chunking(self, settings, rng):
        gen = Generator(settings, rng)
        imgs = generate_images(gen, 10, np.random.default_rng(0), batch=3)
        ref = generate_images(gen, 10, np.random.default_rng(0), batch=100)
        # Same rng stream, same chunk boundaries or not -> same draws overall.
        assert imgs.shape == ref.shape
        np.testing.assert_allclose(imgs, ref)


class TestGanPair:
    @pytest.fixture()
    def pair(self, rng):
        config = paper_table1_config(2, 2)
        return build_gan_pair(config, rng)

    def test_build_from_config(self, pair):
        assert pair.loss.name == "bce"
        assert pair.learning_rate == pytest.approx(0.0002)

    def test_mustangs_name_rejected(self, rng):
        config = paper_table1_config(2, 2)
        with pytest.raises(ValueError):
            build_gan_pair(config, rng, loss_name="mustangs")

    def test_learning_rate_setter_updates_both(self, pair):
        pair.learning_rate = 0.005
        assert pair.g_optimizer.learning_rate == 0.005
        assert pair.d_optimizer.learning_rate == 0.005

    def test_learning_rate_must_stay_positive(self, pair):
        with pytest.raises(ValueError):
            pair.learning_rate = 0.0

    def test_discriminator_step_updates_discriminator_only(self, pair, rng):
        real = rng.uniform(-1, 1, size=(20, 784))
        g_before = pair.generator.parameters()[0].numpy().copy()
        d_before = pair.discriminator.parameters()[0].numpy().copy()
        loss = pair.train_discriminator_step(real, rng)
        assert np.isfinite(loss)
        assert np.array_equal(g_before, pair.generator.parameters()[0].numpy())
        assert not np.array_equal(d_before, pair.discriminator.parameters()[0].numpy())

    def test_generator_step_updates_generator_only(self, pair, rng):
        g_before = pair.generator.parameters()[0].numpy().copy()
        d_before = pair.discriminator.parameters()[0].numpy().copy()
        loss = pair.train_generator_step(20, rng)
        assert np.isfinite(loss)
        assert not np.array_equal(g_before, pair.generator.parameters()[0].numpy())
        assert np.array_equal(d_before, pair.discriminator.parameters()[0].numpy())

    def test_train_against_foreign_adversaries(self, pair, rng):
        config = paper_table1_config(2, 2)
        other = build_gan_pair(config, np.random.default_rng(99))
        real = rng.uniform(-1, 1, size=(10, 784))
        d_loss = pair.train_discriminator_step(real, rng, generator=other.generator)
        g_loss = pair.train_generator_step(10, rng, discriminator=other.discriminator)
        assert np.isfinite(d_loss) and np.isfinite(g_loss)
        # Foreign discriminator must not have been updated.
        assert other.discriminator.parameters()[0].grad is None or np.all(
            other.discriminator.parameters()[0].grad == 0
        )

    def test_evaluate_changes_nothing(self, pair, rng):
        real = rng.uniform(-1, 1, size=(10, 784))
        g_before = pair.generator.parameters()[0].numpy().copy()
        d_before = pair.discriminator.parameters()[0].numpy().copy()
        d_loss, g_loss = pair.evaluate(real, rng)
        assert np.isfinite(d_loss) and np.isfinite(g_loss)
        np.testing.assert_array_equal(g_before, pair.generator.parameters()[0].numpy())
        np.testing.assert_array_equal(d_before, pair.discriminator.parameters()[0].numpy())

    def test_reset_optimizers_keeps_lr(self, pair):
        pair.learning_rate = 0.001
        pair.g_optimizer.t = 5 if hasattr(pair.g_optimizer, "t") else 0
        pair.reset_optimizers()
        assert pair.learning_rate == 0.001
        assert getattr(pair.g_optimizer, "t", 0) == 0

    def test_discriminator_learns_to_separate(self, rng):
        """A few steps on fixed data should reduce discriminator loss."""
        config = paper_table1_config(2, 2)
        pair = build_gan_pair(config, rng)
        pair.learning_rate = 0.002
        real = rng.uniform(0.5, 1.0, size=(50, 784)) * 2 - 1
        first = pair.train_discriminator_step(real, rng)
        for _ in range(30):
            last = pair.train_discriminator_step(real, rng)
        assert last < first
