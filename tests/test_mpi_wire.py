"""Unit tests for the TCP frame layer: framing, pickle-5 out-of-band
buffers, routing headers, and corruption handling."""

import socket
import threading

import numpy as np
import pytest

from repro.mpi import wire
from repro.mpi.stats import TransportStats, merge_transport_stats, payload_nbytes


@pytest.fixture()
def sock_pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestBodyCodec:
    def test_roundtrip_plain_objects(self):
        for obj in [None, 42, "héllo", {"a": [1, 2]}, (1, "x")]:
            assert wire.decode_body(wire.encode_body(obj)) == obj

    def test_roundtrip_numpy_exact(self):
        array = np.random.default_rng(0).standard_normal((7, 5))
        out = wire.decode_body(wire.encode_body(array))
        np.testing.assert_array_equal(out, array)
        assert out.dtype == array.dtype

    def test_received_arrays_are_writable(self):
        """In-place math on a received array must work exactly as it does
        on the in-memory transports."""
        out = wire.decode_body(wire.encode_body(np.arange(8.0)))
        assert out.flags.writeable
        out += 1  # would raise ValueError on a read-only buffer
        np.testing.assert_array_equal(out, np.arange(8.0) + 1)

    def test_numpy_travels_out_of_band(self):
        """A large contiguous array must ride in its own segment, not be
        escaped into the pickle stream (the genome fast path)."""
        array = np.zeros(10_000)
        body = wire.encode_body(array)
        (nseg,) = np.frombuffer(body[:4], dtype=">u4")
        assert nseg >= 2  # pickle blob + at least one raw buffer
        # Overhead over the raw buffer stays tiny (no escaping/copies).
        assert len(body) < array.nbytes + 1024

    def test_nested_arrays_roundtrip(self):
        payload = {"g": np.arange(10.0), "d": np.arange(5.0), "tag": 3}
        out = wire.decode_body(wire.encode_body(payload))
        np.testing.assert_array_equal(out["g"], payload["g"])
        assert out["tag"] == 3

    def test_truncated_body_rejected(self):
        body = wire.encode_body(np.arange(100.0))
        with pytest.raises(wire.WireError):
            wire.decode_body(body[: len(body) // 2])
        with pytest.raises(wire.WireError):
            wire.decode_body(b"\x00\x00")


class TestBodyParts:
    """The gather-write parts API: the send-side hot path must never
    concatenate or copy the out-of-band buffers."""

    def test_parts_join_equals_encode_body(self):
        payload = {"g": np.arange(100.0), "d": np.arange(50.0), "tag": 7}
        parts = wire.encode_body_parts(payload)
        assert b"".join(parts) == wire.encode_body(payload)
        assert wire.body_parts_nbytes(parts) == len(wire.encode_body(payload))

    def test_out_of_band_buffers_are_not_copied(self):
        """The genome vector's own memory must appear as a live memoryview
        part — no intermediate concatenation of out-of-band buffers."""
        array = np.random.default_rng(3).standard_normal(4096)
        parts = wire.encode_body_parts(("genome", array))
        views = [p for p in parts if isinstance(p, memoryview)]
        assert views, "large array should travel as an out-of-band memoryview"
        assert any(np.shares_memory(np.frombuffer(v, dtype=np.uint8), array)
                   for v in views)
        # And the parts the sender would write decode back bit-exactly.
        tag, decoded = wire.decode_body(b"".join(parts))
        np.testing.assert_array_equal(decoded, array)

    def test_pack_frame_parts_roundtrip_over_socket(self):
        a, b = socket.socketpair()
        try:
            array = np.arange(1000.0)
            parts = wire.pack_frame_parts(wire.MSG, 4, {"x": array})
            # Sender-visible structure: one header+table bytes part, then
            # the pickle blob, then the raw buffer — never one big blob.
            assert isinstance(parts, list) and len(parts) >= 3
            wire.write_frame(a, parts)
            frame = wire.read_frame(b)
            assert (frame.kind, frame.rank) == (wire.MSG, 4)
            np.testing.assert_array_equal(frame.payload()["x"], array)
        finally:
            a.close()
            b.close()

    def test_pack_frame_parts_matches_pack_frame(self):
        payload = ("payload", np.arange(32.0))
        assert b"".join(wire.pack_frame_parts(wire.MSG, 2, payload)) == \
            wire.pack_frame(wire.MSG, 2, payload)

    def test_oversized_parts_fail_at_the_sender(self, monkeypatch):
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 1024)
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.pack_frame_parts(wire.MSG, 0, np.zeros(1024))


class TestFrames:
    def test_roundtrip_over_socket(self, sock_pair):
        a, b = sock_pair
        wire.write_frame(a, wire.pack_frame(wire.MSG, 3, {"x": np.arange(4.0)}))
        frame = wire.read_frame(b)
        assert frame.kind == wire.MSG
        assert frame.rank == 3
        np.testing.assert_array_equal(frame.payload()["x"], np.arange(4.0))

    def test_forward_without_repickling(self, sock_pair):
        """A router forwards the received (header, body) parts verbatim —
        no re-pickle, no re-pack, no concatenation."""
        a, b = sock_pair
        original = wire.pack_frame(wire.MSG, 2, ("payload", np.arange(8.0)))
        wire.write_frame(a, original)
        frame = wire.read_frame(b)
        wire.write_frame(b, frame.parts)  # gather-write of the raw buffers
        relayed = wire.read_frame(a)
        assert relayed.rank == 2
        kind, array = relayed.payload()
        assert kind == "payload"
        np.testing.assert_array_equal(array, np.arange(8.0))

    def test_repack_with_new_rank_still_possible(self, sock_pair):
        a, b = sock_pair
        wire.write_frame(a, wire.pack_frame(wire.MSG, 1, "x"))
        frame = wire.read_frame(b)
        wire.write_frame(b, wire.pack_frame(wire.MSG, 9, body=frame.body))
        assert wire.read_frame(a).rank == 9

    def test_bad_magic_rejected(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"XX" + bytes(20))
        with pytest.raises(wire.WireError, match="magic"):
            wire.read_frame(b)

    def test_oversized_length_rejected(self, sock_pair):
        import struct

        a, b = sock_pair
        a.sendall(struct.pack("!2sBiI", wire.MAGIC, wire.MSG, 0, 2**31 - 1)
                  + struct.pack("!I", 0))
        with pytest.raises(wire.WireError):
            wire.read_frame(b)

    def test_oversized_body_fails_at_the_sender(self, monkeypatch):
        """An over-limit frame must raise at pack time with the real cause,
        not surface at the receiver as a bogus lost-connection failure."""
        monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 1024)
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.pack_frame(wire.MSG, 0, body=bytes(2048))
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.pack_frame(wire.MSG, 0, np.zeros(1024))

    def test_max_body_cap_tightens_limit(self, sock_pair):
        """Pre-auth reads pass a small max_body: a body within the global
        frame limit but above the caller's cap must be refused before it
        is buffered."""
        a, b = sock_pair
        wire.write_frame(a, wire.pack_frame(wire.HELLO, 0, body=bytes(8192)))
        with pytest.raises(wire.WireError, match="exceeds"):
            wire.read_frame(b, max_body=4096)

    def test_closed_connection_surfaces(self, sock_pair):
        a, b = sock_pair
        a.close()
        with pytest.raises(wire.WireError, match="closed"):
            wire.read_frame(b)

    def test_interleaved_frames_stay_framed(self, sock_pair):
        a, b = sock_pair
        frames = [wire.pack_frame(wire.MSG, i, np.full(100, float(i)))
                  for i in range(10)]

        def sender():
            for frame in frames:
                wire.write_frame(a, frame)

        thread = threading.Thread(target=sender)
        thread.start()
        for i in range(10):
            frame = wire.read_frame(b)
            assert frame.rank == i
            np.testing.assert_array_equal(frame.payload(), np.full(100, float(i)))
        thread.join()


class TestTransportStats:
    def test_payload_nbytes_counts_buffers(self):
        assert payload_nbytes(np.zeros(10)) == 80
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40
        assert payload_nbytes({"k": np.zeros(1)}) == 8
        assert payload_nbytes(object()) == 0

    def test_payload_nbytes_memoryview_counts_bytes_not_elements(self):
        """len() on a float64 memoryview is the element count — the byte
        accounting must use .nbytes or it under-counts 8x."""
        view = memoryview(np.zeros(10))
        assert len(view) == 10
        assert payload_nbytes(view) == 80
        assert payload_nbytes(memoryview(b"abcd")) == 4

    def test_payload_nbytes_walks_dataclasses(self):
        from repro.parallel.messages import ExchangePayload
        from repro.coevolution.genome import Genome

        genome = Genome(np.zeros(100), 1e-3, "bce")
        payload = ExchangePayload(0, 1, genome, genome)
        assert payload_nbytes(payload) >= 1600  # two 800-byte vectors

    def test_counters_and_merge(self):
        stats = TransportStats(rank=1)
        stats.count_sent(np.zeros(4))
        stats.count_received(np.zeros(2))
        assert (stats.messages_sent, stats.bytes_sent) == (1, 32)
        assert (stats.messages_received, stats.bytes_received) == (1, 16)
        total = merge_transport_stats([stats, TransportStats(2, 1, 1, 8, 8)])
        assert total.messages_sent == 2
        assert total.bytes_sent == 40
        assert "sent 1 msg" in stats.summary()
