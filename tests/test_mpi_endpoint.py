"""Direct unit tests for the Endpoint (mailbox pump + matching engine)."""

import queue
import threading
import time

import numpy as np
import pytest

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.endpoint import Endpoint, Envelope
from repro.mpi.errors import MpiError, MpiTimeoutError

CTX = (0,)


@pytest.fixture()
def endpoint():
    inbox = queue.SimpleQueue()
    peers = {0: inbox.put}
    ep = Endpoint(0, inbox, peers)
    yield ep
    ep.close()


def put(endpoint, source=1, tag=0, payload="x", ctx=CTX):
    endpoint._inbox.put(Envelope(ctx, source, tag, payload))


class TestMatching:
    def test_exact_match(self, endpoint):
        put(endpoint, source=1, tag=5, payload="hello")
        env = endpoint.recv(CTX, source=1, tag=5, timeout=5)
        assert env.payload == "hello"

    def test_any_source(self, endpoint):
        put(endpoint, source=3, tag=1)
        env = endpoint.recv(CTX, ANY_SOURCE, 1, timeout=5)
        assert env.source == 3

    def test_any_tag(self, endpoint):
        put(endpoint, source=1, tag=42)
        env = endpoint.recv(CTX, 1, ANY_TAG, timeout=5)
        assert env.tag == 42

    def test_earliest_first(self, endpoint):
        put(endpoint, source=1, tag=1, payload="first")
        put(endpoint, source=1, tag=1, payload="second")
        assert endpoint.recv(CTX, 1, 1, timeout=5).payload == "first"
        assert endpoint.recv(CTX, 1, 1, timeout=5).payload == "second"

    def test_non_matching_stays_buffered(self, endpoint):
        put(endpoint, source=1, tag=1, payload="keep")
        put(endpoint, source=1, tag=2, payload="want")
        assert endpoint.recv(CTX, 1, 2, timeout=5).payload == "want"
        assert endpoint.recv(CTX, 1, 1, timeout=5).payload == "keep"

    def test_context_isolation(self, endpoint):
        put(endpoint, ctx=(0, 1, 1), source=1, tag=1, payload="other-comm")
        put(endpoint, ctx=CTX, source=1, tag=1, payload="world")
        assert endpoint.recv(CTX, 1, 1, timeout=5).payload == "world"
        assert endpoint.recv((0, 1, 1), 1, 1, timeout=5).payload == "other-comm"


class TestProbeAndPending:
    def test_iprobe_does_not_consume(self, endpoint):
        put(endpoint, source=1, tag=7)
        deadline = time.monotonic() + 5
        while endpoint.iprobe(CTX, 1, 7) is None:
            assert time.monotonic() < deadline
        assert endpoint.iprobe(CTX, 1, 7) is not None  # still there
        endpoint.recv(CTX, 1, 7, timeout=5)
        assert endpoint.iprobe(CTX, 1, 7) is None

    def test_pending_counts_by_context(self, endpoint):
        put(endpoint, ctx=CTX, source=1, tag=1)
        put(endpoint, ctx=CTX, source=1, tag=2)
        put(endpoint, ctx=(0, 9, 9), source=1, tag=1)
        deadline = time.monotonic() + 5
        while endpoint.pending(CTX) < 2:
            assert time.monotonic() < deadline
        assert endpoint.pending(CTX) == 2
        assert endpoint.pending((0, 9, 9)) == 1


class TestTimeoutsAndShutdown:
    def test_timeout_raises(self, endpoint):
        start = time.monotonic()
        with pytest.raises(MpiTimeoutError):
            endpoint.recv(CTX, 1, 1, timeout=0.05)
        assert time.monotonic() - start < 1.0

    def test_negative_timeout_rejected(self, endpoint):
        with pytest.raises(ValueError):
            endpoint.recv(CTX, 1, 1, timeout=-1.0)

    def test_recv_after_close_raises(self):
        inbox = queue.SimpleQueue()
        ep = Endpoint(0, inbox, {0: inbox.put})
        ep.close()
        with pytest.raises(MpiError, match="closed"):
            ep.recv(CTX, 1, 1, timeout=5)

    def test_close_idempotent(self):
        inbox = queue.SimpleQueue()
        ep = Endpoint(0, inbox, {0: inbox.put})
        ep.close()
        ep.close()

    def test_send_to_unknown_rank(self, endpoint):
        with pytest.raises(MpiError, match="unknown destination"):
            endpoint.send_to(99, Envelope(CTX, 0, 0, None))


class TestConcurrentReceivers:
    def test_two_threads_get_disjoint_messages(self, endpoint):
        """The slave's two threads share one endpoint; each message must be
        delivered exactly once."""
        received = []
        lock = threading.Lock()

        def consume(tag):
            for _ in range(20):
                env = endpoint.recv(CTX, ANY_SOURCE, tag, timeout=10)
                with lock:
                    received.append(env.payload)

        t1 = threading.Thread(target=consume, args=(1,))
        t2 = threading.Thread(target=consume, args=(2,))
        t1.start()
        t2.start()
        for i in range(20):
            put(endpoint, source=1, tag=1, payload=("a", i))
            put(endpoint, source=1, tag=2, payload=("b", i))
        t1.join(timeout=15)
        t2.join(timeout=15)
        assert not t1.is_alive() and not t2.is_alive()
        assert len(received) == 40
        assert len(set(received)) == 40  # exactly-once delivery

    def test_numpy_payload_identity_preserved_in_process(self, endpoint):
        array = np.arange(5.0)
        put(endpoint, source=1, tag=1, payload=array)
        env = endpoint.recv(CTX, 1, 1, timeout=5)
        assert env.payload is array  # same object: in-process transport
