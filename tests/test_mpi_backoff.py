"""Edge cases of the sanctioned retry schedule (:mod:`repro.mpi.backoff`).

The happy path (retries then success) is exercised constantly by the
socket transport tests; what lives here are the contract edges — schedule
validation, jitter bounds, and what surfaces when the deadline budget is
exhausted mid-schedule.
"""

import random

import pytest

from repro.mpi.backoff import BackoffPolicy, with_backoff


class Flaky:
    """Fails ``failures`` times with the given errors, then succeeds."""

    def __init__(self, *errors):
        self.errors = list(errors)
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.errors:
            raise self.errors.pop(0)
        return "ok"


class TestPolicyValidation:
    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError, match="attempts must be >= 1"):
            BackoffPolicy(attempts=0)

    def test_negative_attempts_rejected(self):
        with pytest.raises(ValueError, match="attempts must be >= 1"):
            BackoffPolicy(attempts=-3)

    def test_one_attempt_means_no_retry(self):
        flaky = Flaky(OSError("refused"))
        with pytest.raises(OSError, match="refused"):
            with_backoff(flaky, policy=BackoffPolicy(
                attempts=1, base_delay_s=0.0))
        assert flaky.calls == 1

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="jitter"):
            BackoffPolicy(jitter=-0.1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            BackoffPolicy(base_delay_s=-0.01)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            BackoffPolicy(deadline_s=0.0)


class TestJitterBounds:
    def test_delays_stay_within_jitter_band(self):
        policy = BackoffPolicy(attempts=50, base_delay_s=0.1,
                               max_delay_s=1000.0, multiplier=1.0,
                               jitter=0.25)
        delays = list(policy.delays(random.Random(7)))
        assert len(delays) == 49
        for delay in delays:
            assert 0.1 * 0.75 <= delay <= 0.1 * 1.25

    def test_zero_jitter_is_exact_exponential(self):
        policy = BackoffPolicy(attempts=5, base_delay_s=0.05,
                               max_delay_s=2.0, multiplier=2.0, jitter=0.0)
        assert list(policy.delays(random.Random(7))) == [
            0.05, 0.1, 0.2, 0.4]

    def test_max_delay_caps_jittered_waits(self):
        policy = BackoffPolicy(attempts=20, base_delay_s=1.0,
                               max_delay_s=1.0, multiplier=4.0, jitter=1.0)
        for delay in policy.delays(random.Random(3)):
            assert 0.0 <= delay <= 1.0

    def test_schedule_length_is_attempts_minus_one(self):
        policy = BackoffPolicy(attempts=4, jitter=0.0)
        assert len(list(policy.delays(random.Random(0)))) == 3


class TestDeadline:
    def test_deadline_raises_last_underlying_error(self):
        # The schedule still has attempts left, but the next wait would
        # blow the budget: the *last real* error must surface, never a
        # synthetic timeout.
        flaky = Flaky(OSError("refused"), ConnectionResetError("reset"))
        policy = BackoffPolicy(attempts=10, base_delay_s=0.05,
                               max_delay_s=0.05, jitter=0.0,
                               deadline_s=0.08)
        with pytest.raises(ConnectionResetError, match="reset"):
            with_backoff(flaky, policy=policy)
        assert flaky.calls == 2  # third try was over budget

    def test_exhausted_attempts_raise_last_error(self):
        flaky = Flaky(OSError("first"), OSError("second"), OSError("last"))
        policy = BackoffPolicy(attempts=3, base_delay_s=0.0, jitter=0.0)
        with pytest.raises(OSError, match="last"):
            with_backoff(flaky, policy=policy)
        assert flaky.calls == 3

    def test_on_retry_sees_each_failure(self):
        seen = []
        flaky = Flaky(OSError("a"), OSError("b"))
        policy = BackoffPolicy(attempts=5, base_delay_s=0.0, jitter=0.0)
        result = with_backoff(
            flaky, policy=policy,
            on_retry=lambda attempt, exc: seen.append((attempt, str(exc))))
        assert result == "ok"
        assert seen == [(1, "a"), (2, "b")]

    def test_non_retryable_error_escapes_immediately(self):
        flaky = Flaky(KeyError("boom"))
        with pytest.raises(KeyError):
            with_backoff(flaky, policy=BackoffPolicy(
                attempts=5, base_delay_s=0.0))
        assert flaky.calls == 1
