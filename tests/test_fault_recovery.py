"""Fault-recovery tests: the chaos matrix (kill timing x transport x
policy), the heartbeat finish/death race, no-fault bit-identity of
recovery-enabled runs, and the CLI's fault reporting contract."""

import hashlib
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.parallel import DistributedRunner
from repro.parallel.heartbeat import HeartbeatMonitor
from repro.parallel.messages import StatusReply
from repro.parallel.states import SlaveState
from tests.conftest import make_quick_config


@pytest.fixture(scope="module")
def module_dataset():
    import os

    os.environ.setdefault("REPRO_CACHE_DIR", "/tmp/repro-test-cache")
    from repro.data.dataset import ArrayDataset
    from repro.data.synthetic import load_synthetic_mnist
    from repro.data.transforms import to_tanh_range

    raw = load_synthetic_mnist(400, seed=42)
    return ArrayDataset(to_tanh_range(raw.images), raw.labels)


def _genome_digest(result) -> str:
    """Hash of every cell's final genomes + mixture weights."""
    digest = hashlib.sha256()
    for g, d in result.training.center_genomes:
        digest.update(g.parameters.tobytes())
        digest.update(d.parameters.tobytes())
    for weights in result.training.mixture_weights:
        digest.update(np.asarray(weights).tobytes())
    return digest.hexdigest()


# -- heartbeat finish/death race ----------------------------------------------


class StubComm:
    """Controllable stand-in for the master's comm manager."""

    def __init__(self):
        self.requests: list[int] = []
        self._replies: list[StatusReply] = []
        self._lock = threading.Lock()

    def request_status(self, rank: int) -> None:
        with self._lock:
            self.requests.append(rank)

    def queue_reply(self, rank: int, state: str = "processing", iteration: int = 0):
        with self._lock:
            self._replies.append(StatusReply(rank, state, iteration, time.time()))

    def drain_status_replies(self):
        with self._lock:
            replies, self._replies = self._replies, []
            return replies


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestHeartbeatFinishRace:
    """A slave's FINISHED result must beat a concurrent death declaration:
    a rank that goes quiet during a long final batch can exhaust the miss
    budget while its result is already in flight."""

    def test_delayed_finish_overturns_death_declaration(self):
        comm = StubComm()
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=2)
        monitor.start()
        try:
            # The slave never answers: the monitor declares it dead.
            assert wait_until(monitor.deaths_detected.is_set)
            assert monitor.dead_ranks() == [1]
            # ... then its result arrives (the delayed finish).
            assert monitor.mark_finished(1) is True  # death overturned
            assert monitor.dead_ranks() == []
            assert monitor.snapshot()[1].finished
            assert monitor.all_accounted()
        finally:
            monitor.stop()

    def test_mark_finished_without_prior_death_is_not_a_resurrection(self):
        comm = StubComm()
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=100)
        assert monitor.mark_finished(1) is False

    def test_revive_resets_liveness_for_a_respawned_rank(self):
        comm = StubComm()
        monitor = HeartbeatMonitor(comm, [1], interval_s=0.02, miss_limit=2)
        monitor.start()
        try:
            assert wait_until(monitor.deaths_detected.is_set)
            monitor.revive(1)
            entry = monitor.snapshot()[1]
            assert not entry.dead
            assert entry.missed_rounds == 0
            assert entry.state == SlaveState.PROCESSING.value
        finally:
            monitor.stop()


# -- initial-state recovery without a dataset ---------------------------------


class TestInitialCellSnapshot:
    def test_parity_with_real_cell(self, module_dataset):
        """The dataset-free iteration-0 snapshot must replay Cell.__init__
        exactly — same loss draw, same init RNG streams, same storage-dtype
        quantization (the guard the docstring promises)."""
        from repro.coevolution.cell import Cell
        from repro.coevolution.checkpoint import initial_cell_snapshot

        config = make_quick_config(2, 2, iterations=2)
        for cell_index in range(2):
            cell = Cell(config, cell_index, module_dataset, neighborhood_size=5)
            g_ref, d_ref = cell.center_genomes()
            snap = initial_cell_snapshot(config, cell_index, 5)
            assert snap.iteration == 0
            np.testing.assert_array_equal(snap.generator_genome.parameters,
                                          g_ref.parameters)
            np.testing.assert_array_equal(snap.discriminator_genome.parameters,
                                          d_ref.parameters)
            assert snap.generator_genome.loss_name == g_ref.loss_name
            np.testing.assert_array_equal(snap.mixture_weights,
                                          cell.mixture.weights)


# -- the chaos matrix ---------------------------------------------------------


class TestChaosMatrixProcess:
    """Kill a forked rank with os._exit at two timings (before its first
    iteration completes / mid-run, after checkpoints exist) under every
    fault policy."""

    @pytest.mark.parametrize("policy", ["abort", "degrade", "recover"])
    @pytest.mark.parametrize("kill_at", [0, 1],
                             ids=["before-first-checkpoint", "mid-run"])
    def test_process_kill(self, module_dataset, policy, kill_at):
        config = make_quick_config(2, 2, iterations=3)
        runner = DistributedRunner(
            config,
            backend="process",
            dataset=module_dataset,
            fault_at={1: kill_at},   # cell 1 -> rank 2
            fault_kill=True,
            fault_policy=policy,
            heartbeat_interval_s=0.05,
            miss_limit=4,
            timeout_s=240,
        )
        result = runner.run()
        assert result.dead_ranks == [2]
        assert result.fault_policy == policy
        assert len(result.training.center_genomes) == 4
        if policy == "abort":
            assert not result.ok and not result.complete
        elif policy == "degrade":
            assert result.ok
            assert result.degraded_ranks == [2]
            assert result.recovered_ranks == []
        else:
            assert result.ok, f"recover left degraded {result.degraded_ranks}"
            assert result.recovered_ranks == [2]
            assert result.degraded_ranks == []
            # The adopted cell really trained: it has post-death reports.
            assert result.training.cell_reports[1], "recovered cell has no reports"


class TestChaosMatrixSocket:
    """The TCP variant: a worker process hosting exactly the victim rank
    dies with os._exit — a real socket-visible death."""

    HOSTS = "127.0.0.1:4,127.0.0.1:1"   # rank 4 (cell 3) alone on worker B

    def _run(self, dataset, *, kill_at, policy, **options):
        config = make_quick_config(2, 2, iterations=3)
        runner = DistributedRunner(
            config,
            backend="socket",
            hosts=self.HOSTS,
            dataset=dataset,
            fault_at={3: kill_at},
            fault_kill=True,
            fault_policy=policy,
            heartbeat_interval_s=0.05,
            miss_limit=6,
            timeout_s=240,
            **options,
        )
        return runner.run()

    def test_socket_abort_mid_run(self, module_dataset):
        result = self._run(module_dataset, kill_at=1, policy="abort")
        assert result.dead_ranks == [4]
        assert not result.ok and not result.complete

    def test_socket_degrade_before_first_checkpoint(self, module_dataset):
        result = self._run(module_dataset, kill_at=0, policy="degrade")
        assert result.dead_ranks == [4]
        assert result.ok
        assert result.degraded_ranks == [4]
        # The frozen cell reports its initial-state genomes.
        assert len(result.training.center_genomes) == 4

    def test_socket_recover_by_adoption(self, module_dataset):
        """No restart budget: a surviving worker's slave adopts the cell."""
        result = self._run(module_dataset, kill_at=1, policy="recover")
        assert result.dead_ranks == [4]
        assert result.ok, f"degraded {result.degraded_ranks}"
        assert result.recovered_ranks == [4]
        assert result.training.cell_reports[3], "adopted cell has no reports"

    def test_socket_recover_by_respawn(self, module_dataset):
        """With a restart budget the coordinator respawns a replacement
        worker and the cell resumes there from its checkpoint."""
        result = self._run(module_dataset, kill_at=1, policy="recover",
                           max_restarts=1)
        assert result.dead_ranks == [4]
        assert result.ok, f"degraded {result.degraded_ranks}"
        assert result.recovered_ranks == [4]
        assert result.training.cell_reports[3], "respawned cell has no reports"
        # The replacement's hosting connection counts one reconnect.
        by_rank = {s.rank: s for s in result.transport_stats}
        assert by_rank[4].reconnects >= 1


class TestSocketRecoverAcceptance:
    """The acceptance-scale run: a 4x4 grid over TCP with one rank killed
    mid-run completes under recover with trained genomes for every cell."""

    def test_4x4_socket_recover(self, module_dataset):
        config = make_quick_config(4, 4, iterations=2,
                                   dataset_size=400, batch_size=10, batches=1)
        runner = DistributedRunner(
            config,
            backend="socket",
            hosts="127.0.0.1:16,127.0.0.1:1",   # rank 16 (cell 15) alone
            dataset=module_dataset,
            fault_at={15: 1},
            fault_kill=True,
            fault_policy="recover",
            heartbeat_interval_s=0.1,
            miss_limit=8,
            timeout_s=480,
        )
        result = runner.run()
        assert result.dead_ranks == [16]
        assert result.ok, f"degraded {result.degraded_ranks}"
        assert result.recovered_ranks == [16]
        assert len(result.training.center_genomes) == 16
        for cell in range(16):
            g, d = result.training.center_genomes[cell]
            assert g.parameters.size and d.parameters.size
            assert result.training.cell_reports[cell], f"cell {cell} untrained"


# -- no-fault bit-identity ----------------------------------------------------


class TestRecoveryBitIdentity:
    """Enabling the recovery machinery must not change training: a
    fault-free run under recover (checkpoints streaming every iteration)
    produces bit-identical genomes to the abort-policy baseline."""

    def test_threaded_recover_matches_abort_baseline(self, module_dataset):
        config = make_quick_config(2, 2, iterations=2)
        baseline = DistributedRunner(config, backend="threaded",
                                     dataset=module_dataset).run()
        recovery = DistributedRunner(config, backend="threaded",
                                     dataset=module_dataset,
                                     fault_policy="recover",
                                     snapshot_every=1).run()
        assert recovery.complete and recovery.ok
        assert _genome_digest(recovery) == _genome_digest(baseline)

    def test_socket_recover_matches_abort_baseline(self, module_dataset):
        config = make_quick_config(2, 2, iterations=2)
        baseline = DistributedRunner(config, backend="threaded",
                                     dataset=module_dataset).run()
        recovery = DistributedRunner(config, backend="socket",
                                     hosts="127.0.0.1:5",
                                     dataset=module_dataset,
                                     fault_policy="recover",
                                     snapshot_every=1).run()
        assert recovery.complete and recovery.ok
        assert _genome_digest(recovery) == _genome_digest(baseline)


# -- facade + CLI contract ----------------------------------------------------


class TestExperimentFaultPolicy:
    def test_invalid_policy_rejected(self):
        from repro.api import Experiment

        with pytest.raises(ValueError, match="fault policy"):
            Experiment().fault_policy("retry")

    def test_negative_restarts_rejected(self):
        from repro.api import Experiment

        with pytest.raises(ValueError, match="max_restarts"):
            Experiment().fault_policy("recover", max_restarts=-1)

    def test_sequential_backend_rejects_fault_policy(self):
        from repro.api import Experiment

        experiment = Experiment(make_quick_config(1, 1, iterations=1))
        experiment.backend("sequential").fault_policy("degrade")
        with pytest.raises(ValueError, match="sequential"):
            experiment.run()


class _FakeExperiment:
    """Stands in for _build_experiment's product inside _cmd_run."""

    def __init__(self, result):
        self._result = result
        self.fault_args = None

    def profile(self, enabled):
        return self

    def fault_policy(self, policy, *, max_restarts=0, snapshot_every=None):
        self.fault_args = (policy, max_restarts, snapshot_every)
        return self

    def telemetry(self, level="basic", trace_path=None):
        return self

    def callbacks(self, *callbacks):
        return self

    @property
    def config(self):
        return SimpleNamespace(
            coevolution=SimpleNamespace(cells=1, iterations=2))

    def run(self):
        return self._result


def _fake_run_result(*, fault_policy, dead_ranks, degraded=(), recovered=()):
    from repro.api.result import RunResult
    from repro.parallel.runner import DistributedResult

    training = SimpleNamespace(cell_reports=[[]], wall_time_s=0.5,
                               best_cell_index=lambda: 0)
    distributed = DistributedResult(
        training=training,
        outcome_placement={},
        dead_ranks=list(dead_ranks),
        fault_policy=fault_policy,
        degraded_ranks=list(degraded),
        recovered_ranks=list(recovered),
    )
    return RunResult(backend="threaded", training=training,
                     distributed=distributed, iterations_run=2)


class TestCliFaultContract:
    def test_run_parser_accepts_fault_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "--fault-policy", "recover",
             "--max-restarts", "2", "--snapshot-every", "3"])
        assert args.fault_policy == "recover"
        assert args.max_restarts == 2
        assert args.snapshot_every == 3

    def test_abort_death_exits_nonzero_and_reports(self, monkeypatch, capsys):
        import repro.cli as cli

        fake = _FakeExperiment(_fake_run_result(
            fault_policy="abort", dead_ranks=[2]))
        monkeypatch.setattr(cli, "_build_experiment", lambda args: fake)
        code = cli.main(["run", "--telemetry", "off"])
        captured = capsys.readouterr()
        assert code == 1
        assert "fault report (abort): died [2]" in captured.err
        assert "WARNING" in captured.err
        assert fake.fault_args == ("abort", 0, None)

    def test_degrade_death_exits_zero_with_breakdown(self, monkeypatch, capsys):
        import repro.cli as cli

        fake = _FakeExperiment(_fake_run_result(
            fault_policy="degrade", dead_ranks=[2], degraded=[2]))
        monkeypatch.setattr(cli, "_build_experiment", lambda args: fake)
        code = cli.main(["run", "--telemetry", "off",
                         "--fault-policy", "degrade"])
        captured = capsys.readouterr()
        assert code == 0
        assert "degraded [2]" in captured.err
        assert fake.fault_args == ("degrade", 0, None)

    def test_recover_success_exits_zero(self, monkeypatch, capsys):
        import repro.cli as cli

        fake = _FakeExperiment(_fake_run_result(
            fault_policy="recover", dead_ranks=[2], recovered=[2]))
        monkeypatch.setattr(cli, "_build_experiment", lambda args: fake)
        code = cli.main(["run", "--telemetry", "off",
                         "--fault-policy", "recover", "--max-restarts", "1"])
        captured = capsys.readouterr()
        assert code == 0
        assert "recovered [2]" in captured.err
        assert fake.fault_args == ("recover", 1, None)
