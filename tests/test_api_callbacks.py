"""Tests for the callback-driven run loop and the shipped callbacks."""

import json

import numpy as np
import pytest

from repro.api import (
    Callback,
    CallbackList,
    EarlyStopping,
    Experiment,
    JsonlMetrics,
    PeriodicCheckpoint,
)

from tests.conftest import make_quick_config


class RecordingCallback(Callback):
    """Records every hook invocation in order."""

    def __init__(self):
        self.events = []

    def on_run_start(self, ctx):
        self.events.append(("run_start",))

    def on_exchange(self, ctx, iteration):
        self.events.append(("exchange", iteration))

    def on_iteration_end(self, ctx, iteration, reports):
        self.events.append(("iteration_end", iteration, len(reports)))

    def on_checkpoint(self, ctx, path, checkpoint):
        self.events.append(("checkpoint", checkpoint.iteration))

    def on_run_end(self, ctx, result):
        self.events.append(("run_end", result.iterations_run))

    def kinds(self):
        return [event[0] for event in self.events]


class TestHookSequence:
    def test_sequential_fires_live_in_order(self, cache_dir):
        config = make_quick_config(iterations=2)
        recorder = RecordingCallback()
        Experiment(config).backend("sequential").callbacks(recorder).run()
        assert recorder.kinds() == [
            "run_start",
            "exchange", "iteration_end",
            "exchange", "iteration_end",
            "run_end",
        ]
        assert recorder.events[1] == ("exchange", 1)
        assert recorder.events[2] == ("iteration_end", 1, config.coevolution.cells)
        assert recorder.events[-1] == ("run_end", 2)

    def test_distributed_replays_identical_sequence(self, cache_dir):
        config = make_quick_config(iterations=2)
        live = RecordingCallback()
        replayed = RecordingCallback()
        Experiment(config).backend("sequential").callbacks(live).run()
        Experiment(config).backend("threaded").callbacks(replayed).run()
        assert live.events == replayed.events

    def test_callback_list_dispatch_order(self):
        first, second = RecordingCallback(), RecordingCallback()
        callbacks = CallbackList([first, second])
        callbacks.on_run_start(None)
        assert first.kinds() == second.kinds() == ["run_start"]

    def test_non_callback_rejected(self):
        with pytest.raises(TypeError):
            CallbackList([object()])


class TestEarlyStopping:
    def test_stops_on_plateau(self, cache_dir):
        config = make_quick_config(iterations=8)
        # An impossible improvement threshold plateaus immediately: the
        # first evaluation sets the baseline, the second exhausts patience.
        stopper = EarlyStopping(metric="fitness", patience=1, min_delta=1e9)
        result = (Experiment(config).backend("sequential")
                  .callbacks(stopper).run())
        assert result.stopped_early
        assert result.iterations_run == 2
        assert stopper.stopped_at == 2
        assert len(stopper.history) == 2

    def test_no_stop_when_patience_not_exhausted(self, cache_dir):
        config = make_quick_config(iterations=2)
        stopper = EarlyStopping(metric="fitness", patience=5, min_delta=1e9)
        result = (Experiment(config).backend("sequential")
                  .callbacks(stopper).run())
        assert not result.stopped_early
        assert result.iterations_run == 2

    def test_fid_metric_evaluates(self, cache_dir):
        config = make_quick_config(iterations=2)
        stopper = EarlyStopping(metric="fid", patience=99, fid_samples=32,
                                classifier_epochs=1)
        Experiment(config).backend("sequential").callbacks(stopper).run()
        assert len(stopper.history) == 2
        assert all(np.isfinite(value) for _, value in stopper.history)

    def test_fid_does_not_perturb_training(self, cache_dir):
        """Metric evaluation must consume no cell RNG: genomes unchanged."""
        config = make_quick_config(iterations=2)
        plain = Experiment(config).backend("sequential").run()
        watched = (Experiment(config).backend("sequential")
                   .callbacks(EarlyStopping(metric="fid", patience=99,
                                            fid_samples=16,
                                            classifier_epochs=1))
                   .run())
        for (a, _), (b, _) in zip(plain.center_genomes, watched.center_genomes):
            assert np.array_equal(a.parameters, b.parameters)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(metric="accuracy")

    def test_state_resets_between_runs(self, cache_dir):
        """A reused instance must stop the second run too, not stay latched."""
        config = make_quick_config(iterations=4)
        stopper = EarlyStopping(metric="fitness", patience=1, min_delta=1e9)
        experiment = Experiment(config).backend("sequential").callbacks(stopper)
        first = experiment.run()
        second = experiment.run()
        assert first.stopped_early and second.stopped_early
        assert first.iterations_run == second.iterations_run == 2
        assert len(stopper.history) == 2


class TestPeriodicCheckpoint:
    def test_writes_every_n_iterations(self, cache_dir, tmp_path):
        config = make_quick_config(iterations=4)
        path = tmp_path / "periodic.npz"
        recorder = RecordingCallback()
        checkpointer = PeriodicCheckpoint(path, every=2)
        Experiment(config).backend("sequential").callbacks(
            checkpointer, recorder).run()
        # Iterations 2 and 4 plus the end-of-run snapshot; only the mid-run
        # writes dispatch on_checkpoint (the end write happens after other
        # callbacks' on_run_end, so a hook there would be out of order).
        assert checkpointer.writes == 3
        assert path.exists()
        assert [e for e in recorder.events if e[0] == "checkpoint"] == [
            ("checkpoint", 2), ("checkpoint", 4)]

    def test_checkpoint_resumes(self, cache_dir, tmp_path):
        from repro.coevolution.checkpoint import load_checkpoint

        config = make_quick_config(iterations=3)
        path = tmp_path / "resume.npz"
        stopper = EarlyStopping(metric="fitness", patience=1, min_delta=1e9)
        Experiment(config).backend("sequential").callbacks(
            PeriodicCheckpoint(path, every=1, at_end=False), stopper).run()
        # The stopper fired at iteration 2, after that iteration's snapshot.
        checkpoint = load_checkpoint(path)
        assert checkpoint.iteration == 2
        assert checkpoint.remaining_iterations == 1

    def test_end_of_run_checkpoint_works_distributed(self, cache_dir, tmp_path):
        from repro.coevolution.checkpoint import load_checkpoint

        config = make_quick_config(iterations=2)
        path = tmp_path / "dist.npz"
        Experiment(config).backend("threaded").callbacks(
            PeriodicCheckpoint(path)).run()
        assert load_checkpoint(path).iteration == 2


class TestJsonlMetrics:
    def test_streams_one_line_per_event(self, cache_dir, tmp_path):
        config = make_quick_config(iterations=2)
        path = tmp_path / "metrics.jsonl"
        Experiment(config).backend("sequential").callbacks(
            JsonlMetrics(path)).run()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in events] == [
            "run_start", "iteration", "iteration", "run_end"]
        assert events[0]["grid"] == [2, 2]
        assert events[1]["iteration"] == 1
        assert len(events[1]["cells"]) == config.coevolution.cells
        assert events[-1]["iterations_run"] == 2
        assert events[-1]["complete"] is True

    def test_run_end_is_the_final_event_with_checkpointing(self, cache_dir,
                                                           tmp_path):
        """The end-of-run checkpoint must not append events after run_end."""
        config = make_quick_config(iterations=2)
        metrics_path = tmp_path / "metrics.jsonl"
        Experiment(config).backend("sequential").callbacks(
            JsonlMetrics(metrics_path),
            PeriodicCheckpoint(tmp_path / "model.npz", every=1),
        ).run()
        events = [json.loads(line)["event"]
                  for line in metrics_path.read_text().splitlines()]
        assert events[-1] == "run_end"
        assert events == ["run_start", "iteration", "checkpoint",
                          "iteration", "checkpoint", "run_end"]

    def test_distributed_stream_matches_sequential(self, cache_dir, tmp_path):
        config = make_quick_config(iterations=2)
        seq_path = tmp_path / "seq.jsonl"
        dist_path = tmp_path / "dist.jsonl"
        Experiment(config).backend("sequential").callbacks(
            JsonlMetrics(seq_path)).run()
        Experiment(config).backend("threaded").callbacks(
            JsonlMetrics(dist_path)).run()

        def iteration_events(path):
            return [json.loads(line) for line in path.read_text().splitlines()
                    if json.loads(line)["event"] == "iteration"]

        assert iteration_events(seq_path) == iteration_events(dist_path)
