"""Every static-analysis rule against its paired good/bad fixture.

The fixtures under ``tests/fixtures/analysis/`` are linted in memory via
:func:`repro.analysis.lint_source` under the module name each rule keys on
(several fixtures would be unsafe to import — they exist to be flagged).
"""

from pathlib import Path

import pytest

from repro.analysis import lint_source

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"

#: rule id -> the module name the fixture pair is linted under.
RULE_MODULES = {
    "R1": "repro.mpi.fixture",
    "R2": "repro.coevolution.fixture",
    "R3": "repro.parallel.fixture",
    "R4": "repro.nn.fixture",
    "R5": "repro.serving.fixture",
    "R6": "repro.nn.fixture",
    "R7": "repro.cluster.fixture",
    "R8": "repro.data.fixture",
    "R9": "repro.mpi.fixture",
    "R10": "repro.parallel.fixture",
}


def lint_fixture(name: str, module: str):
    path = FIXTURES / name
    return lint_source(path.read_text(encoding="utf-8"),
                       path=str(path), module=module)


@pytest.mark.parametrize("rule", sorted(RULE_MODULES))
def test_bad_fixture_is_flagged(rule):
    findings = lint_fixture(f"{rule.lower()}_bad.py", RULE_MODULES[rule])
    hits = [f for f in findings if f.rule == rule]
    assert hits, f"{rule} failed to flag its bad fixture: {findings}"
    assert all(f.line > 0 and f.message for f in hits)


@pytest.mark.parametrize("rule", sorted(RULE_MODULES))
def test_good_fixture_passes(rule):
    findings = lint_fixture(f"{rule.lower()}_good.py", RULE_MODULES[rule])
    assert not findings, f"{rule} good fixture should be clean: {findings}"


def test_r9_flags_each_retry_shape():
    findings = lint_fixture("r9_bad.py", RULE_MODULES["R9"])
    hits = [f for f in findings if f.rule == "R9"]
    assert len(hits) == 3  # while-retry, range-attempt, timeout-swallow


def test_r9_exempts_the_backoff_module():
    findings = lint_fixture("r9_bad.py", "repro.mpi.backoff")
    assert not any(f.rule == "R9" for f in findings)


def test_r10_flags_each_payload_shape():
    findings = lint_fixture("r10_bad.py", RULE_MODULES["R10"])
    hits = [f for f in findings if f.rule == "R10"]
    assert len(hits) == 2  # plain dataclass + dataclass(frozen=True)


def test_r10_only_applies_to_wire_layers():
    source = ("from dataclasses import dataclass\n\n"
              "@dataclass\n"
              "class PlotPayload:\n"
              "    series: tuple = ()\n")
    outside = lint_source(source, module="repro.viz.fixture")
    assert not any(f.rule == "R10" for f in outside)


def test_r2_flags_every_enemy_once():
    findings = lint_fixture("r2_bad.py", RULE_MODULES["R2"])
    messages = " ".join(f.message for f in findings)
    assert "numpy.random.normal" in messages
    assert "random.choice" in messages
    assert "time.time" in messages
    assert "iterating a set" in messages


def test_r2_wall_clock_only_on_hot_components():
    source = "import time\n\ndef stamp():\n    return time.time()\n"
    hot = lint_source(source, module="repro.nn.fixture")
    cold = lint_source(source, module="repro.experiments.fixture")
    assert any(f.rule == "R2" for f in hot)
    assert not any(f.rule == "R2" for f in cold)


def test_r1_only_applies_to_mpi():
    source = "import pickle\n\ndef load(b):\n    return pickle.loads(b)\n"
    outside = lint_source(source, module="repro.coevolution.fixture")
    assert not any(f.rule == "R1" for f in outside)


def test_r5_resolves_import_alias():
    source = ("from repro.telemetry import bus as t\n\n"
              "def f():\n    t.count('x')\n")
    findings = lint_source(source, module="repro.gan.fixture")
    assert any(f.rule == "R5" for f in findings)
    # A non-telemetry object with a .count() method must not be flagged.
    source = "def f(items):\n    return items.count('x')\n"
    assert not lint_source(source, module="repro.gan.fixture")


def test_r8_exempts_runtime_module():
    source = "import os\n\nFLAG = os.environ.get('X')\n"
    inside = lint_source(source, module="repro.runtime")
    outside = lint_source(source, module="repro.viz.fixture")
    assert not any(f.rule == "R8" for f in inside)
    assert any(f.rule == "R8" for f in outside)


def test_pragma_suppresses_with_reason():
    findings = lint_fixture("pragma_good.py", "repro.mpi.fixture")
    assert not findings


def test_pragma_without_reason_is_its_own_finding():
    findings = lint_fixture("pragma_bad.py", "repro.mpi.fixture")
    pragma = [f for f in findings if f.rule == "PRAGMA"]
    assert len(pragma) == 2  # missing reason + unknown rule id
    # An ineffective pragma must not suppress the underlying finding.
    assert any(f.rule == "R1" for f in findings)


def test_pragma_in_docstring_is_not_a_pragma():
    source = ('"""Docs quoting ``# repro: allow[R1]`` must not parse."""\n'
              "VALUE = 1\n")
    assert not lint_source(source, module="repro.metrics.fixture")
