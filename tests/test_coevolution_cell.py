"""Tests for the per-cell training step and the sequential trainer."""

import numpy as np
import pytest

from repro.coevolution.cell import Cell, NEIGHBORHOOD_SIZE
from repro.coevolution.sequential import SequentialTrainer
from repro.profiling import RoutineTimer
from tests.conftest import make_quick_config


@pytest.fixture()
def cell(small_dataset):
    return Cell(make_quick_config(), 0, small_dataset)


def neighbor_genomes_for(cell, count=4):
    """Fabricate neighbor genomes by perturbing the cell's own center."""
    out = []
    for i in range(count):
        g, d = cell.center_genomes()
        g = g.copy()
        g.parameters += 0.01 * (i + 1)
        out.append((g, d.copy()))
    return out


class TestCellBasics:
    def test_initial_state(self, cell):
        assert cell.iteration == 0
        assert cell.loss_name == "bce"
        assert len(cell.subpopulation_generators()) == NEIGHBORHOOD_SIZE
        np.testing.assert_allclose(cell.mixture.weights, np.full(5, 0.2))

    def test_center_genomes_snapshot(self, cell):
        g, d = cell.center_genomes()
        g.parameters[:] = 0
        g2, _ = cell.center_genomes()
        assert np.any(g2.parameters != 0)  # snapshot was a copy

    def test_mustangs_assigns_loss_from_pool(self, small_dataset):
        import dataclasses

        config = make_quick_config()
        training = dataclasses.replace(config.training, loss_function="mustangs")
        config = dataclasses.replace(config, training=training)
        names = {Cell(config, i, small_dataset).loss_name for i in range(12)}
        assert names <= {"bce", "mse", "heuristic"}
        assert len(names) >= 2  # twelve draws almost surely hit 2+ losses

    def test_rng_streams_are_per_cell(self, small_dataset):
        a = Cell(make_quick_config(), 0, small_dataset)
        b = Cell(make_quick_config(), 1, small_dataset)
        ga, _ = a.center_genomes()
        gb, _ = b.center_genomes()
        assert np.abs(ga.parameters - gb.parameters).max() > 0


class TestCellStep:
    def test_step_advances_and_reports(self, cell):
        report = cell.step(neighbor_genomes_for(cell))
        assert cell.iteration == 1
        assert report.iteration == 1
        assert np.isfinite(report.best_generator_fitness)
        assert np.isfinite(report.best_discriminator_fitness)
        assert 0 <= report.selected_generator < 5
        assert 0 <= report.selected_discriminator < 5
        assert report.learning_rate > 0
        assert report.mixture_weights.sum() == pytest.approx(1.0)

    def test_step_changes_center(self, cell):
        before, _ = cell.center_genomes()
        cell.step(neighbor_genomes_for(cell))
        after, _ = cell.center_genomes()
        assert np.abs(before.parameters - after.parameters).max() > 0

    def test_step_with_fewer_neighbors_tolerated(self, cell):
        report = cell.step(neighbor_genomes_for(cell, count=2))
        assert report.iteration == 1

    def test_step_with_excess_neighbors_ignores_extras(self, cell):
        report = cell.step(neighbor_genomes_for(cell, count=7))
        assert report.iteration == 1

    def test_determinism(self, small_dataset):
        def run():
            c = Cell(make_quick_config(), 0, small_dataset)
            for _ in range(2):
                c.step(neighbor_genomes_for(c))
            return c.center_genomes()[0].parameters

        np.testing.assert_array_equal(run(), run())

    def test_profiling_sections_recorded(self, cell):
        timer = RoutineTimer()
        cell.step(neighbor_genomes_for(cell), timer)
        snap = timer.snapshot()
        for routine in ("update_genomes", "train", "mutate"):
            assert snap.seconds(routine) > 0, routine

    def test_reports_accumulate(self, cell):
        cell.step(neighbor_genomes_for(cell))
        cell.step(neighbor_genomes_for(cell))
        assert len(cell.reports) == 2

    def test_sample_from_mixture(self, cell):
        samples = cell.sample_from_mixture(6)
        assert samples.shape == (6, 784)
        assert samples.min() >= -1 and samples.max() <= 1


class TestSequentialTrainer:
    def test_runs_all_cells(self, small_dataset):
        config = make_quick_config(2, 2, iterations=2)
        result = SequentialTrainer(config, small_dataset).run()
        assert len(result.center_genomes) == 4
        assert len(result.cell_reports) == 4
        assert all(len(reports) == 2 for reports in result.cell_reports)
        assert result.wall_time_s > 0

    def test_3x3_grid(self, small_dataset):
        config = make_quick_config(3, 3, iterations=1)
        result = SequentialTrainer(config, small_dataset).run()
        assert len(result.center_genomes) == 9

    def test_iterations_override(self, small_dataset):
        config = make_quick_config(2, 2, iterations=5)
        result = SequentialTrainer(config, small_dataset).run(iterations=1)
        assert all(len(reports) == 1 for reports in result.cell_reports)

    def test_determinism_across_runs(self, small_dataset):
        config = make_quick_config(2, 2, iterations=2)
        a = SequentialTrainer(config, small_dataset).run()
        b = SequentialTrainer(config, small_dataset).run()
        for (ga, _), (gb, _) in zip(a.center_genomes, b.center_genomes):
            np.testing.assert_array_equal(ga.parameters, gb.parameters)

    def test_cells_differentiate(self, small_dataset):
        """Different cells evolve different genomes (diversity preserved)."""
        config = make_quick_config(2, 2, iterations=2)
        result = SequentialTrainer(config, small_dataset).run()
        g0 = result.center_genomes[0][0].parameters
        g3 = result.center_genomes[3][0].parameters
        assert np.abs(g0 - g3).max() > 0

    def test_timer_snapshots(self, small_dataset):
        config = make_quick_config(2, 2, iterations=1)
        result = SequentialTrainer(config, small_dataset).run(timer_factory=RoutineTimer)
        assert len(result.timer_snapshots) == 4
        assert all(s.seconds("train") > 0 for s in result.timer_snapshots)
        assert all(s.seconds("gather") >= 0 for s in result.timer_snapshots)

    def test_best_cell_index(self, small_dataset):
        config = make_quick_config(2, 2, iterations=1)
        result = SequentialTrainer(config, small_dataset).run()
        best = result.best_cell_index()
        assert 0 <= best < 4
        finals = [r[-1].best_generator_fitness for r in result.cell_reports]
        assert finals[best] == min(finals)

    def test_training_reduces_generator_fitness_over_time(self, small_dataset):
        """Across enough iterations the best generator fitness improves
        (the arms race makes monotonicity impossible, so compare phases)."""
        config = make_quick_config(2, 2, iterations=6, batches=2)
        result = SequentialTrainer(config, small_dataset).run()
        for reports in result.cell_reports:
            early = np.mean([r.best_generator_fitness for r in reports[:2]])
            late = np.mean([r.best_generator_fitness for r in reports[-2:]])
            # Generator loss should not explode; usually it shrinks.
            assert late < early + 0.5
