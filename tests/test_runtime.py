"""Tests for the BLAS pinning runtime controls."""

import os

import pytest

from repro.runtime import blas_pin_active, pin_blas_threads


class TestPinBlasThreads:
    def test_sets_environment(self):
        pin_blas_threads(1)
        assert os.environ["OMP_NUM_THREADS"] == "1"
        assert os.environ["OPENBLAS_NUM_THREADS"] == "1"

    def test_applies_to_loaded_blas(self):
        # NumPy is loaded in this process, so the ctypes path must succeed
        # on any Linux box with OpenBLAS-backed NumPy (this repo's target).
        assert pin_blas_threads(1) is True
        assert blas_pin_active() == 1

    def test_idempotent(self):
        pin_blas_threads(1)
        assert pin_blas_threads(1) is True

    def test_validation(self):
        with pytest.raises(ValueError):
            pin_blas_threads(0)

    def test_repin_different_value(self):
        try:
            assert pin_blas_threads(2) is True
            assert blas_pin_active() == 2
        finally:
            pin_blas_threads(1)
