"""Unit tests for the DistributedRunner's reduction phase and validation."""

import numpy as np
import pytest

from repro.coevolution.genome import Genome
from repro.parallel.master import MasterOutcome
from repro.parallel.messages import SlaveResult
from repro.parallel.runner import DistributedRunner
from repro.parallel.tracing import EventTrace
from repro.profiling import RoutineTimer
from tests.conftest import make_quick_config


def make_result(cell_index, rank, value=1.0, with_timer=False):
    genome = Genome(np.full(6, value), 1e-3, "bce")
    timer = None
    if with_timer:
        t = RoutineTimer()
        t.add("train", value)
        timer = t.snapshot()
    return SlaveResult(
        rank=rank,
        cell_index=cell_index,
        generator_genome=genome,
        discriminator_genome=genome.copy(),
        mixture_weights=np.full(5, 0.2),
        timer=timer,
    )


def make_outcome(results, dead=()):
    return MasterOutcome(
        results=results,
        dead_ranks=list(dead),
        node_info=[],
        placement={0: "node00"},
        trace=EventTrace(actor="master", enabled=False),
        wall_time_s=1.0,
    )


@pytest.fixture()
def runner():
    return DistributedRunner(make_quick_config(2, 2, iterations=1),
                             backend="threaded")


class TestReduction:
    def test_complete_outcome(self, runner):
        results = {i: make_result(i, i + 1, value=float(i)) for i in range(4)}
        reduced = runner._reduce(make_outcome(results), wall_time_s=2.0)
        assert reduced.complete
        assert reduced.training.wall_time_s == 2.0
        for cell in range(4):
            g, _ = reduced.training.center_genomes[cell]
            assert g.parameters[0] == float(cell)

    def test_dead_slave_leaves_hole_filled_with_survivor(self, runner):
        results = {i: make_result(i, i + 1, value=float(i)) for i in (0, 2, 3)}
        reduced = runner._reduce(make_outcome(results, dead=[2]), wall_time_s=1.0)
        assert not reduced.complete
        assert reduced.dead_ranks == [2]
        # The hole (cell 1) is filled with the first available genome so the
        # result stays rectangular.
        g_hole, _ = reduced.training.center_genomes[1]
        assert g_hole.parameters[0] == 0.0

    def test_no_results_raises(self, runner):
        with pytest.raises(RuntimeError, match="nothing to reduce"):
            runner._reduce(make_outcome({}), wall_time_s=1.0)

    def test_timers_collected(self, runner):
        results = {i: make_result(i, i + 1, value=float(i + 1), with_timer=True)
                   for i in range(4)}
        reduced = runner._reduce(make_outcome(results), wall_time_s=1.0)
        assert len(reduced.slave_timers) == 4
        # parallel merge = max; serial merge = sum
        assert reduced.distributed_profile().seconds("train") == pytest.approx(4.0)
        assert reduced.total_work_profile().seconds("train") == pytest.approx(10.0)

    def test_traces_include_master_and_slaves(self, runner):
        results = {0: make_result(0, 1)}
        results[0].trace_events = [object()]  # non-empty marker
        reduced = runner._reduce(make_outcome(results), wall_time_s=1.0)
        actors = {t.actor for t in reduced.traces}
        assert "master" in actors and "slave-1" in actors


class TestValidation:
    def test_sequential_backend_rejected(self):
        with pytest.raises(ValueError, match="SequentialTrainer"):
            DistributedRunner(make_quick_config(), backend="sequential")

    def test_backend_defaults_to_config(self):
        import dataclasses

        config = make_quick_config()
        execution = dataclasses.replace(config.execution, backend="threaded")
        config = dataclasses.replace(config, execution=execution)
        assert DistributedRunner(config).backend == "threaded"
