"""Tests for the parameter-sweep harness."""

import csv

import pytest

from repro.experiments.sweep import Sweep, SweepRow


def constant_run(combo, repetition):
    return {"value": combo["x"] * 10 + combo["y"]}


def noisy_run(combo, repetition):
    return {"value": float(repetition)}  # 0, 1, 2, ... per repetition


class TestSweepConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            Sweep(name="s", parameters={}, run=constant_run)
        with pytest.raises(ValueError):
            Sweep(name="s", parameters={"x": []}, run=constant_run)
        with pytest.raises(ValueError):
            Sweep(name="s", parameters={"x": [1]}, run=constant_run, repetitions=0)

    def test_combinations_cartesian(self):
        sweep = Sweep(name="s", parameters={"x": [1, 2], "y": [3, 4]},
                      run=constant_run)
        combos = sweep.combinations()
        assert len(combos) == 4
        assert {"x": 1, "y": 3} in combos and {"x": 2, "y": 4} in combos


class TestExecution:
    def test_metrics_per_combination(self):
        sweep = Sweep(name="s", parameters={"x": [1, 2], "y": [0]},
                      run=constant_run)
        rows = sweep.execute()
        assert [r.metrics_mean["value"] for r in rows] == [10.0, 20.0]
        assert all(r.metrics_std["value"] == 0.0 for r in rows)

    def test_repetition_statistics(self):
        sweep = Sweep(name="s", parameters={"x": [0]}, run=noisy_run,
                      repetitions=3)
        row = sweep.execute()[0]
        assert row.metrics_mean["value"] == pytest.approx(1.0)  # mean(0,1,2)
        assert row.metrics_std["value"] == pytest.approx(1.0)
        assert row.repetitions == 3

    def test_progress_callback(self):
        seen = []
        sweep = Sweep(name="scan", parameters={"x": [1, 2]},
                      run=lambda combo, rep: {"v": float(combo["x"])},
                      progress=seen.append)
        sweep.execute()
        assert len(seen) == 2 and all("scan" in s for s in seen)

    def test_empty_metrics_rejected(self):
        sweep = Sweep(name="s", parameters={"x": [1]},
                      run=lambda combo, rep: {})
        with pytest.raises(ValueError, match="no metrics"):
            sweep.execute()

    def test_inconsistent_metrics_rejected(self):
        calls = iter([{"a": 1.0}, {"b": 2.0}])
        sweep = Sweep(name="s", parameters={"x": [1]},
                      run=lambda combo, rep: next(calls), repetitions=2)
        with pytest.raises(ValueError, match="inconsistent"):
            sweep.execute()


class TestCsv:
    def test_write_and_read_back(self, tmp_path):
        sweep = Sweep(name="s", parameters={"grid": [(2, 2), (3, 3)]},
                      run=lambda combo, rep: {"cells": float(combo["grid"][0] ** 2)})
        rows = sweep.execute()
        path = tmp_path / "sweep.csv"
        Sweep.write_csv(path, rows)
        with open(path) as handle:
            parsed = list(csv.DictReader(handle))
        assert len(parsed) == 2
        assert parsed[0]["grid"] == "(2, 2)"
        assert float(parsed[0]["cells_mean"]) == 4.0
        assert "seconds" in parsed[0]

    def test_write_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Sweep.write_csv(tmp_path / "x.csv", [])

    def test_flat_row(self):
        row = SweepRow(parameters={"x": 1}, metrics_mean={"m": 2.0},
                       metrics_std={"m": 0.5}, repetitions=2, seconds=1.0)
        flat = row.flat()
        assert flat == {"x": 1, "m_mean": 2.0, "m_std": 0.5,
                        "repetitions": 2, "seconds": 1.0}


class TestSweepOverRealTrainer:
    def test_grid_size_sweep(self, small_dataset):
        """A miniature version of the paper's methodology as a sweep."""
        from repro.coevolution import SequentialTrainer
        from tests.conftest import make_quick_config

        def measure(combo, repetition):
            config = make_quick_config(*combo["grid"], iterations=1)
            result = SequentialTrainer(config, small_dataset).run()
            return {"wall_s": result.wall_time_s}

        sweep = Sweep(name="grids", parameters={"grid": [(1, 2), (2, 2)]},
                      run=measure)
        rows = sweep.execute()
        assert len(rows) == 2
        # 4 cells cost more than 2 cells on one core.
        assert rows[1].metrics_mean["wall_s"] > rows[0].metrics_mean["wall_s"]
