"""Tests for the experiment regenerators (fast paths only; the timing
experiments themselves run under benchmarks/)."""

import pytest

from repro.experiments import fig1, fig2, fig4, table1, table2
from repro.experiments.workloads import PAPER_GRIDS, bench_config, quick_config
from repro.profiling import ProfileRow


class TestWorkloads:
    def test_paper_grids(self):
        assert PAPER_GRIDS == ((2, 2), (3, 3), (4, 4))

    def test_bench_config_structure(self):
        config = bench_config(3, 3)
        assert config.coevolution.grid_size == (3, 3)
        assert config.training.batch_size == 100  # Table I value preserved
        assert config.network.hidden_neurons == 256

    def test_quick_config_is_fast_scale(self):
        config = quick_config()
        assert config.dataset_size <= 1000
        assert config.coevolution.iterations <= 4

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ITERATIONS", "7")
        assert bench_config(2, 2).coevolution.iterations == 7

    def test_env_override_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_ITERATIONS", "0")
        with pytest.raises(ValueError):
            bench_config(2, 2)


class TestTable1:
    def test_all_paper_values_match(self):
        result = table1.run()
        assert result["all_match"], result["matches_paper"]

    def test_format_contains_sections(self):
        result = table1.run()
        for section in ("Network topology", "Coevolutionary settings",
                        "Hyperparameter mutation", "Training settings",
                        "Execution settings"):
            assert section in result["table"]


class TestTable2:
    def test_cores_match_paper(self):
        rows = table2.run()
        assert all(row.cores_match for row in rows)

    def test_memory_close_to_paper(self):
        rows = table2.run()
        for row in rows:
            assert abs(row.memory_mb - row.paper_memory_mb) <= 1024

    def test_placement_on_busy_cluster(self):
        rows = table2.run(busy_fraction=0.5)
        assert len(rows) == 3

    def test_format(self):
        text = table2.format_table(table2.run())
        assert "TABLE II" in text and "4x4" in text


class TestFig1:
    def test_paper_examples(self):
        data = fig1.run()
        assert data["example_interior"] == [(1, 1), (1, 0), (0, 1), (1, 2), (2, 1)]
        assert data["example_wrapping"] == [(1, 3), (1, 2), (0, 3), (1, 0), (2, 3)]

    def test_every_cell_has_neighborhood(self):
        data = fig1.run()
        assert len(data["neighborhoods"]) == 16

    def test_render(self):
        text = fig1.format_figure(fig1.run())
        assert "[C]" in text and "[N]" in text


class TestFig2:
    def test_static_walk(self):
        data = fig2.run(dynamic=False)
        assert data["walk"] == ["inactive", "processing", "finished"]
        assert len(data["transitions"]) == 2
        assert len(data["rejected"]) == 7

    def test_format(self):
        text = fig2.format_figure(fig2.run(dynamic=False))
        assert "inactive" in text and "processing" in text and "finished" in text


class TestFig4:
    def test_series_from_precomputed_rows(self):
        rows = [
            ProfileRow("gather", 1.0, 1.0),
            ProfileRow("train", 10.0, 2.0),
            ProfileRow("update genomes", 5.0, 0.4),
            ProfileRow("mutate", 1.0, 0.6),
            ProfileRow("overall", 17.0, 4.0),
        ]
        data = fig4.run(rows=rows)
        assert data["routines"] == ["gather", "train", "update genomes", "mutate"]
        assert data["single_core"] == [1.0, 10.0, 5.0, 1.0]
        assert data["distributed"] == [1.0, 2.0, 0.4, 0.6]

    def test_ascii_rendering(self):
        rows = [
            ProfileRow("gather", 1.0, 1.0),
            ProfileRow("train", 10.0, 2.0),
            ProfileRow("update genomes", 5.0, 0.4),
            ProfileRow("mutate", 1.0, 0.6),
        ]
        text = fig4.format_figure(fig4.run(rows=rows))
        assert "train" in text and "#" in text
