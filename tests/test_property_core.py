"""Property-based tests for grid geometry, mixture evolution, selection,
serialization and transforms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coevolution.grid import ToroidalGrid, von_neumann_neighborhood
from repro.coevolution.mixture import MixtureWeights
from repro.coevolution.selection import rank_by_fitness, tournament_select
from repro.data.transforms import from_tanh_range, to_tanh_range
from repro.nn import Linear, Sequential, Tanh
from repro.nn.serialize import count_parameters, parameters_to_vector, vector_to_parameters

SETTINGS = dict(max_examples=50, deadline=None)

grid_dims = st.integers(min_value=1, max_value=7)


class TestGridProperties:
    @given(grid_dims, grid_dims)
    @settings(**SETTINGS)
    def test_neighborhood_reciprocity(self, rows, cols):
        grid = ToroidalGrid(rows, cols)
        for i in range(grid.cell_count):
            for j in grid.neighborhood_indices(i):
                assert i in grid.neighborhood_indices(j)

    @given(grid_dims, grid_dims)
    @settings(**SETTINGS)
    def test_neighborhood_always_five_entries(self, rows, cols):
        grid = ToroidalGrid(rows, cols)
        for i in range(grid.cell_count):
            assert len(grid.neighborhood_indices(i)) == 5

    @given(grid_dims, grid_dims)
    @settings(**SETTINGS)
    def test_index_coord_bijection(self, rows, cols):
        grid = ToroidalGrid(rows, cols)
        seen = set()
        for i in range(grid.cell_count):
            coords = grid.coords_of(i)
            assert grid.index_of(*coords) == i
            seen.add(coords)
        assert len(seen) == grid.cell_count

    @given(grid_dims, grid_dims)
    @settings(**SETTINGS)
    def test_overlap_equals_own_neighborhood(self, rows, cols):
        grid = ToroidalGrid(rows, cols)
        for i in range(grid.cell_count):
            assert sorted(grid.overlapping_neighborhoods(i)) == sorted(
                set(grid.neighborhood_indices(i))
            )

    @given(st.integers(3, 9), st.integers(3, 9), st.integers(0, 3))
    @settings(**SETTINGS)
    def test_von_neumann_size_on_large_torus(self, rows, cols, radius):
        # On a torus large enough to avoid self-wrapping collisions the
        # Manhattan ball has 2r(r+1)+1 cells.
        if rows > 2 * radius and cols > 2 * radius:
            hood = von_neumann_neighborhood(0, 0, rows, cols, radius)
            assert len(hood) == 2 * radius * (radius + 1) + 1


class TestMixtureProperties:
    @given(
        arrays(np.float64, st.integers(1, 8),
               elements=st.floats(0.0, 10.0, allow_nan=False)),
        st.floats(0.0, 0.5, allow_nan=False),
        st.integers(0, 2 ** 31 - 1),
    )
    @settings(**SETTINGS)
    def test_mutation_preserves_distribution(self, raw, scale, seed):
        if raw.sum() <= 0:
            raw = raw + 1.0
        mix = MixtureWeights(raw)
        mutated = mix.mutated(np.random.default_rng(seed), scale)
        np.testing.assert_allclose(mutated.weights.sum(), 1.0, rtol=1e-9)
        assert np.all(mutated.weights >= 0)

    @given(st.integers(1, 10))
    @settings(**SETTINGS)
    def test_uniform_is_uniform(self, size):
        mix = MixtureWeights.uniform(size)
        np.testing.assert_allclose(mix.weights, np.full(size, 1.0 / size))


class TestSelectionProperties:
    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=12),
        st.integers(1, 6),
        st.integers(0, 2 ** 31 - 1),
    )
    @settings(**SETTINGS)
    def test_winner_is_valid_index(self, fitnesses, k, seed):
        winner = tournament_select(fitnesses, np.random.default_rng(seed), k)
        assert 0 <= winner < len(fitnesses)

    @given(
        st.lists(st.floats(-100, 100, allow_nan=False), min_size=2, max_size=12),
        st.integers(0, 2 ** 31 - 1),
    )
    @settings(**SETTINGS)
    def test_full_tournament_returns_global_best(self, fitnesses, seed):
        winner = tournament_select(
            fitnesses, np.random.default_rng(seed), tournament_size=len(fitnesses)
        )
        assert fitnesses[winner] == min(fitnesses)

    @given(st.lists(st.floats(-100, 100, allow_nan=False), min_size=1, max_size=12))
    @settings(**SETTINGS)
    def test_rank_sorted(self, fitnesses):
        ranked = rank_by_fitness(fitnesses)
        values = [fitnesses[i] for i in ranked]
        assert values == sorted(values)
        assert sorted(ranked) == list(range(len(fitnesses)))


class TestSerializationProperties:
    @given(st.integers(0, 2 ** 31 - 1), st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_vector_roundtrip_bit_exact(self, seed, width_in, width_out):
        rng = np.random.default_rng(seed)
        net = Sequential(Linear(width_in, width_out, rng), Tanh(),
                         Linear(width_out, 2, rng))
        vec = parameters_to_vector(net)
        assert vec.shape == (count_parameters(net),)
        clone_rng = np.random.default_rng(seed + 1)
        clone = Sequential(Linear(width_in, width_out, clone_rng), Tanh(),
                           Linear(width_out, 2, clone_rng))
        vector_to_parameters(vec, clone)
        np.testing.assert_array_equal(vec, parameters_to_vector(clone))


class TestTransformProperties:
    @given(arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(1, 8)),
                  elements=st.floats(0.0, 1.0, allow_nan=False)))
    @settings(**SETTINGS)
    def test_tanh_range_inverse(self, x):
        np.testing.assert_allclose(from_tanh_range(to_tanh_range(x)), x, atol=1e-12)

    @given(arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(1, 8)),
                  elements=st.floats(0.0, 1.0, allow_nan=False)))
    @settings(**SETTINGS)
    def test_tanh_range_bounds(self, x):
        y = to_tanh_range(x)
        assert np.all((y >= -1.0 - 1e-12) & (y <= 1.0 + 1e-12))
