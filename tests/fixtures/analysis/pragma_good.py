"""Linted as repro.mpi.fixture: a well-formed exemption suppresses R1."""

import pickle


def decode_frame(frame: bytes):
    return pickle.loads(frame)  # repro: allow[R1] -- fixture: input authenticated by the caller
