"""Linted as repro.mpi.fixture: pragmas without reasons or naming no rule."""

import pickle


def decode_frame(frame: bytes):
    return pickle.loads(frame)  # repro: allow[R1]


def decode_other(frame: bytes):
    return pickle.loads(frame)  # repro: allow[R99] -- typo'd rule id
