"""Linted as repro.nn.fixture: the stored value holds no key back-reference."""

import weakref

_KERNELS = weakref.WeakKeyDictionary()


def register(network, compiled_kernel):
    _KERNELS[network] = compiled_kernel
    return compiled_kernel
