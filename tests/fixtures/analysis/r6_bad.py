"""Linted as repro.nn.fixture: a layer-2 module eagerly importing layer 6."""

from repro.api import Experiment


def build():
    return Experiment()
