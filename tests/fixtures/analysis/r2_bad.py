"""Linted as repro.coevolution.fixture: global RNG, wall clock, set order."""

import random
import time

import numpy as np


def mutate(sigma):
    noise = np.random.normal(0.0, sigma)
    pick = random.choice([1, 2, 3])
    started = time.time()
    return noise, pick, started


def total_fitness(scores):
    total = 0.0
    for value in set(scores):
        total += value
    return total
