"""Linted as repro.parallel.fixture: epoch-tagged payloads and exempt shapes."""

from dataclasses import dataclass, field


@dataclass
class GossipPayload:
    cell_index: int
    iteration: int
    generators: list = field(default_factory=list)
    discriminators: list = field(default_factory=list)
    epoch: int = 0


@dataclass
class DrainNotice:
    # Control message: master-mediated, never raced across a hand-off.
    rank: int
    snapshots: tuple = ()


class LegacyPayload:
    # Not a dataclass, not a wire frame — a plain helper is out of scope.
    def __init__(self, cell_index):
        self.cell_index = cell_index
