"""Linted as repro.mpi.fixture: hand-rolled socket retry loops (R9)."""

import socket

from repro.mpi.wire import write_frame


def connect_forever(address):
    while True:
        try:
            return socket.create_connection(address, timeout=5.0)
        except OSError:
            continue  # unbounded, unjittered, uncounted


def send_with_attempts(sock, frame):
    for _attempt in range(10):
        try:
            write_frame(sock, frame)
            return True
        except (ConnectionResetError, BrokenPipeError):
            pass  # swallowed: goes around again with no delay
    return False


def recv_until_alive(sock):
    done = False
    while not done:
        try:
            sock.recv(4096)
            done = True
        except socket.timeout:
            done = False
