"""Linted as repro.data.fixture: environment read at use time."""

import os


def debug_enabled():
    return bool(os.environ.get("REPRO_DEBUG", ""))


def cache_dir():
    return os.getenv("REPRO_CACHE_DIR")
