"""Linted as repro.parallel.fixture: copies cross, aliases stay local."""


def exchange(cell, endpoint):
    vector = cell.center_genomes(alias=True)
    endpoint.send_to(1, vector.copy())


class NeighborCache:
    def park(self, network, parameters_to_vector):
        self.latest = parameters_to_vector(network, alias=True).copy()
