"""Linted as repro.coevolution.fixture: seeded generator, monotonic clock."""

import time


def mutate(rng, sigma):
    noise = rng.normal(0.0, sigma)
    started = time.perf_counter()
    return noise, started


def total_fitness(scores):
    total = 0.0
    for value in sorted(set(scores)):
        total += value
    return total
