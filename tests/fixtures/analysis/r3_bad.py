"""Linted as repro.parallel.fixture: live arena aliases crossing boundaries."""


def exchange(cell, endpoint):
    vector = cell.center_genomes(alias=True)
    endpoint.send_to(1, vector)


class NeighborCache:
    def park(self, network, parameters_to_vector):
        self.latest = parameters_to_vector(network, alias=True)
