"""Linted as repro.nn.fixture: weak-keyed value pins its own key."""

import weakref

_KERNELS = weakref.WeakKeyDictionary()


def register(network, build_kernel):
    _KERNELS[network] = build_kernel(network)
    return _KERNELS.setdefault(network, build_kernel(network))
