"""Linted as repro.serving.fixture: sites behind the one-int-check guard."""

from repro.telemetry import bus as telemetry


def hot_path(n):
    if telemetry.enabled():
        telemetry.count("fixture.calls", n)
        telemetry.gauge("fixture.depth", n)
    with telemetry.span("fixture.span"):  # span guards itself (null span)
        return n
