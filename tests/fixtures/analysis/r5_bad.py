"""Linted as repro.serving.fixture: unguarded count/gauge sites."""

from repro.telemetry import bus as telemetry


def hot_path(n):
    telemetry.count("fixture.calls", n)
    telemetry.gauge("fixture.depth", n)
