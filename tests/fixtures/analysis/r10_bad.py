"""Linted as repro.parallel.fixture: payload dataclasses missing the epoch tag."""

from dataclasses import dataclass, field


@dataclass
class GossipPayload:
    cell_index: int
    iteration: int
    generators: list = field(default_factory=list)
    discriminators: list = field(default_factory=list)


@dataclass(frozen=True)
class WeightsPayload:
    cell_index: int
    weights: tuple = ()
