"""Linted as repro.cluster.fixture: threads/sockets created after fork."""

import socket
import threading


def start_pump():
    pump = threading.Thread(target=print, daemon=True)
    pump.start()
    return pump


def open_probe():
    return socket.socket()
