"""Linted as repro.mpi.fixture: unpickling in the network layer."""

import pickle


def decode_frame(frame: bytes):
    return pickle.loads(frame)
