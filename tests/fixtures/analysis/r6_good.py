"""Linted as repro.nn.fixture: the upward reference is lazy."""


def build():
    from repro.api import Experiment

    return Experiment()
