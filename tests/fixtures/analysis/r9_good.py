"""Linted as repro.mpi.fixture: sanctioned shapes around socket I/O (R9)."""

import socket

from repro.mpi.backoff import retry_connect, with_backoff
from repro.mpi.errors import MpiTimeoutError
from repro.mpi.wire import write_frame


def connect(address):
    # Transient-failure retry routed through the one sanctioned home.
    return retry_connect(address, timeout=5.0)


def send(sock, frame):
    return with_backoff(lambda: write_frame(sock, frame))


def send_fan_out(connections, frame):
    # A for-over-peers is a fan-out, not a retry: each pass visits a
    # different connection, best-effort.
    for conn in connections:
        try:
            write_frame(conn.sock, frame)
        except OSError:
            pass


def poll(comm):
    # Polling with a timeout is not a failure retry.
    while True:
        try:
            return comm.recv(timeout=0.25)
        except MpiTimeoutError:
            continue


def accept_loop(listener):
    # A server accepting its next client is not retrying a failed op.
    while True:
        try:
            sock, _ = listener.accept()
        except socket.timeout:
            continue
        except OSError:
            return
        sock.close()


def read_one(sock):
    # The handler escapes the loop: failure handling, not a retry.
    while True:
        try:
            return sock.recv(4096)
        except OSError:
            return None
