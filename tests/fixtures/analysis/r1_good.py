"""Linted as repro.mpi.fixture: constrained parsing instead of pickle."""

import json


def decode_frame(frame: bytes):
    return json.loads(frame.decode("utf-8"))
