"""Linted as repro.data.fixture: environment frozen at import time."""

import os

DEBUG = os.environ.get("REPRO_DEBUG", "")
CACHE = os.getenv("REPRO_CACHE_DIR")
