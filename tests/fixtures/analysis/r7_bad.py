"""Linted as repro.cluster.fixture: thread and socket at import time."""

import socket
import threading

_PUMP = threading.Thread(target=print, daemon=True)
_PROBE = socket.socket()
