"""Tests for the configuration dataclasses (Table I)."""

import pytest

from repro.config import (
    CoevolutionSettings,
    ExecutionSettings,
    ExperimentConfig,
    HyperparameterMutationSettings,
    NetworkSettings,
    TrainingSettings,
    default_config,
    paper_table1_config,
)
from repro.config.settings import ConfigError


class TestDefaults:
    def test_paper_values(self):
        config = paper_table1_config()
        assert config.network.latent_size == 64
        assert config.network.hidden_layers == 2
        assert config.network.hidden_neurons == 256
        assert config.network.output_neurons == 784
        assert config.network.activation == "tanh"
        assert config.coevolution.iterations == 200
        assert config.coevolution.population_size == 1
        assert config.coevolution.tournament_size == 2
        assert config.coevolution.mixture_mutation_scale == 0.01
        assert config.mutation.optimizer == "adam"
        assert config.mutation.initial_learning_rate == 0.0002
        assert config.mutation.mutation_rate == 0.0001
        assert config.mutation.mutation_probability == 0.5
        assert config.training.batch_size == 100
        assert config.training.skip_discriminator_steps == 1
        assert config.execution.time_limit_hours == 96.0
        assert config.execution.temporary_storage_gb == 40
        assert config.dataset_size == 60_000

    def test_tasks_equal_cells_plus_master(self):
        for rows, cols in ((2, 2), (3, 3), (4, 4)):
            config = paper_table1_config(rows, cols)
            assert config.execution.number_of_tasks == rows * cols + 1

    def test_image_side(self):
        assert NetworkSettings().image_side == 28

    def test_default_config_is_scaled(self):
        config = default_config()
        assert config.coevolution.iterations < 200
        assert config.dataset_size < 60_000
        # Structure unchanged:
        assert config.network == NetworkSettings()


class TestValidation:
    def test_bad_activation(self):
        with pytest.raises(ConfigError):
            NetworkSettings(activation="softsign")

    def test_bad_grid(self):
        with pytest.raises(ConfigError):
            CoevolutionSettings(grid_rows=0)

    def test_bad_optimizer(self):
        with pytest.raises(ConfigError):
            HyperparameterMutationSettings(optimizer="lion")

    def test_bad_probability(self):
        with pytest.raises(ConfigError):
            HyperparameterMutationSettings(mutation_probability=1.5)

    def test_bad_loss(self):
        with pytest.raises(ConfigError):
            TrainingSettings(loss_function="wgan")

    def test_bad_backend(self):
        with pytest.raises(ConfigError):
            ExecutionSettings(backend="gpu")

    def test_task_count_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="number_of_tasks"):
            ExperimentConfig(
                coevolution=CoevolutionSettings(grid_rows=2, grid_cols=2),
                execution=ExecutionSettings(number_of_tasks=9),
            )

    def test_dataset_smaller_than_batch_rejected(self):
        with pytest.raises(ConfigError):
            paper_table1_config().scaled(iterations=1, dataset_size=10, batch_size=100)


class TestDerivedAndTransforms:
    def test_batches_per_epoch(self):
        config = paper_table1_config()
        assert config.batches_per_epoch == 600

    def test_with_grid(self):
        config = paper_table1_config(2, 2).with_grid(4, 4)
        assert config.coevolution.grid_size == (4, 4)
        assert config.execution.number_of_tasks == 17

    def test_scaled_keeps_structure(self):
        config = paper_table1_config().scaled(
            iterations=5, dataset_size=1000, batch_size=50
        )
        assert config.coevolution.iterations == 5
        assert config.training.batch_size == 50
        assert config.network == NetworkSettings()

    def test_grid_properties(self):
        coev = CoevolutionSettings(grid_rows=3, grid_cols=4)
        assert coev.cells == 12
        assert coev.grid_size == (3, 4)


class TestSerialization:
    def test_json_roundtrip(self):
        config = paper_table1_config(3, 3)
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config

    def test_roundtrip_of_scaled(self):
        config = default_config(4, 4, seed=7)
        clone = ExperimentConfig.from_json(config.to_json())
        assert clone == config
        assert clone.seed == 7

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown top-level"):
            ExperimentConfig.from_dict({"bogus": 1})

    def test_unknown_section_key_rejected(self):
        payload = paper_table1_config().to_dict()
        payload["network"]["bogus"] = 1
        with pytest.raises(ConfigError, match="unknown keys"):
            ExperimentConfig.from_dict(payload)

    def test_section_must_be_mapping(self):
        payload = paper_table1_config().to_dict()
        payload["network"] = "nope"
        with pytest.raises(ConfigError):
            ExperimentConfig.from_dict(payload)
