"""Exporter golden-file tests: Perfetto JSON, Prometheus round-trip, JSONL,
and the ``repro trace`` summary math."""

import json

import pytest

from repro.telemetry.bus import MergedTelemetry, SpanEvent, TelemetrySnapshot, merge_telemetry
from repro.telemetry.export import (
    LAUNCHER_PID,
    JsonlWriter,
    parse_prometheus,
    to_perfetto,
    to_prometheus,
    write_trace,
)
from repro.telemetry.summary import format_summary, summarize


def _rank_snapshot(rank, events, *, anchor_wall=1000.0, anchor_mono=0.0,
                   counters=None, gauges=None):
    snap = TelemetrySnapshot(rank=rank, anchor_wall=anchor_wall,
                             anchor_mono=anchor_mono)
    snap.events = list(events)
    for event in events:
        snap.span_totals[event.name] = (
            snap.span_totals.get(event.name, 0.0) + event.duration)
        snap.span_counts[event.name] = snap.span_counts.get(event.name, 0) + 1
    snap.counters = dict(counters or {})
    snap.gauges = dict(gauges or {})
    snap.gauge_peaks = dict(gauges or {})
    return snap


def _two_rank_merged():
    rank1 = _rank_snapshot(1, [
        SpanEvent("exchange.gather", 0.00, 0.10, "MainThread", {"cell": 0}),
        SpanEvent("cell.train", 0.10, 0.80, "MainThread", {"cell": 0}),
    ], counters={"mpi.messages_sent": 4.0})
    rank2 = _rank_snapshot(2, [
        SpanEvent("cell.train", 0.05, 0.90, "MainThread", {"cell": 1}),
        SpanEvent("exchange.gather", 0.95, 0.20, "MainThread", {"cell": 1}),
    ], counters={"mpi.messages_sent": 6.0}, gauges={"serving.queue_depth": 3.0})
    return merge_telemetry([rank1, rank2])


class TestPerfetto:
    def test_required_keys_and_shape(self):
        trace = to_perfetto(_two_rank_merged())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        for event in trace["traceEvents"]:
            assert {"ph", "name", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert "ts" in event and "dur" in event and "cat" in event
            else:
                assert event["ph"] == "M"

    def test_one_process_track_per_rank_with_names(self):
        trace = to_perfetto(_two_rank_merged())
        names = {e["pid"]: e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {1: "rank 1", 2: "rank 2"}

    def test_ts_monotone_per_track_and_rebased(self):
        trace = to_perfetto(_two_rank_merged())
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        tracks = {}
        for event in spans:
            tracks.setdefault((event["pid"], event["tid"]), []).append(event["ts"])
        for ts in tracks.values():
            assert ts == sorted(ts)
        assert min(e["ts"] for e in spans) == 0.0  # rebased to earliest span

    def test_skew_alignment_places_ranks_on_one_axis(self):
        # Rank 2's monotonic clock is offset by +5000s; identical wall
        # anchors mean its spans must still land next to rank 1's.
        rank1 = _rank_snapshot(1, [SpanEvent("cell.train", 0.0, 0.5, "t")])
        rank2 = _rank_snapshot(
            2, [SpanEvent("cell.train", 5000.1, 0.5, "t")], anchor_mono=5000.0)
        trace = to_perfetto(merge_telemetry([rank1, rank2]))
        ts = {e["pid"]: e["ts"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert ts[1] == 0.0
        assert ts[2] == pytest.approx(0.1 * 1e6, rel=1e-6)

    def test_attrs_become_args_and_category_is_the_prefix(self):
        trace = to_perfetto(_two_rank_merged())
        train = [e for e in trace["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "cell.train"]
        assert {e["args"]["cell"] for e in train} == {0, 1}
        assert all(e["cat"] == "cell" for e in train)

    def test_launcher_snapshot_uses_reserved_pid(self):
        launcher = _rank_snapshot(None, [SpanEvent("socket.rendezvous", 0, 1, "t")])
        trace = to_perfetto(merge_telemetry([launcher]))
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert spans[0]["pid"] == LAUNCHER_PID

    def test_write_trace_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_trace(str(path), _two_rank_merged())
        assert json.loads(path.read_text()) == written


class TestPrometheus:
    def test_exposition_round_trips_through_the_parser(self):
        merged = _two_rank_merged()
        samples = parse_prometheus(to_prometheus(merged))
        assert samples[("repro_mpi_messages_sent", (("rank", "1"),))] == 4.0
        assert samples[("repro_mpi_messages_sent", (("rank", "2"),))] == 6.0
        assert samples[("repro_serving_queue_depth", (("rank", "2"),))] == 3.0
        # Span totals export as _seconds/_calls pairs, full float fidelity.
        rank1 = merged.per_rank(1)
        assert samples[("repro_cell_train_seconds", (("rank", "1"),))] == (
            rank1.span_totals["cell.train"])
        assert samples[("repro_cell_train_calls", (("rank", "1"),))] == 1.0

    def test_type_lines_present(self):
        text = to_prometheus(_two_rank_merged())
        assert "# TYPE repro_mpi_messages_sent counter" in text
        assert "# TYPE repro_serving_queue_depth gauge" in text

    def test_launcher_rank_label_is_none(self):
        launcher = _rank_snapshot(None, [], counters={"socket.workers_admitted": 2.0})
        samples = parse_prometheus(to_prometheus(merge_telemetry([launcher])))
        assert samples[("repro_socket_workers_admitted", (("rank", "none"),))] == 2.0

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_prometheus("this is not an exposition line at all {{{")

    def test_empty_merged_produces_empty_exposition(self):
        assert to_prometheus(MergedTelemetry()) == ""
        assert parse_prometheus("") == {}


class TestJsonlWriter:
    def test_appends_sorted_flushed_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        writer = JsonlWriter(str(path))
        writer.write({"b": 2, "a": 1})
        writer.write({"event": "x"})
        writer.close()
        lines = path.read_text().splitlines()
        assert lines[0] == '{"a": 1, "b": 2}'  # keys sorted
        assert json.loads(lines[1]) == {"event": "x"}

    def test_reopen_appends(self, tmp_path):
        path = tmp_path / "log.jsonl"
        for i in range(2):
            writer = JsonlWriter(str(path))
            writer.write({"run": i})
            writer.close()
        assert len(path.read_text().splitlines()) == 2

    def test_close_without_write_is_a_noop(self, tmp_path):
        writer = JsonlWriter(str(tmp_path / "never.jsonl"))
        writer.close()
        assert not (tmp_path / "never.jsonl").exists()


class TestSummary:
    def test_routine_totals_and_overlap(self):
        # rank 1 exchanges 0.0-0.1 while rank 2 trains 0.05-0.95: half of
        # that exchange is hidden behind the other rank's training.
        trace = to_perfetto(_two_rank_merged())
        summary = summarize(trace)
        assert summary["ranks"] == {1: "rank 1", 2: "rank 2"}
        assert summary["routines"]["train"]["calls"] == 2
        assert summary["routines"]["train"]["seconds"] == pytest.approx(1.7, abs=1e-6)
        assert summary["routines"]["gather"]["seconds"] == pytest.approx(0.3, abs=1e-6)
        assert summary["overlap_s"] == pytest.approx(0.05, abs=1e-6)
        assert summary["exchange_s"] == pytest.approx(0.3, abs=1e-6)

    def test_slowest_cells_ranked_by_train_time(self):
        summary = summarize(to_perfetto(_two_rank_merged()))
        cells = [slot["cell"] for slot in summary["slowest_cells"]]
        assert cells == [1, 0]  # 0.9s beats 0.8s

    def test_format_summary_mentions_the_table4_vocabulary(self):
        report = format_summary(summarize(to_perfetto(_two_rank_merged())))
        for routine in ("gather", "train", "update_genomes", "mutate"):
            assert routine in report
        assert "overlap" in report

    def test_empty_trace_summarizes_cleanly(self):
        summary = summarize({"traceEvents": []})
        assert summary["events"] == 0
        assert summary["wall_s"] == 0.0
        assert format_summary(summary)  # renders without raising
