"""Tests for Module/Linear/Sequential and activations."""

import numpy as np
import pytest

from repro.nn import (
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    Tensor,
    activation_module,
)
from repro.nn.modules import Identity


class TestLinear:
    def test_forward_shape(self, rng):
        layer = Linear(4, 7, rng)
        out = layer(Tensor(rng.normal(size=(3, 4))))
        assert out.shape == (3, 7)

    def test_forward_math(self, rng):
        layer = Linear(2, 2, rng)
        x = rng.normal(size=(5, 2))
        expected = x @ layer.weight.numpy() + layer.bias.numpy()
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)

    def test_no_bias(self, rng):
        layer = Linear(3, 3, rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_parameters_require_grad(self, rng):
        layer = Linear(3, 3, rng)
        assert all(p.requires_grad for p in layer.parameters())

    def test_custom_init(self, rng):
        layer = Linear(3, 3, rng, init=lambda shape, r: np.zeros(shape))
        assert np.all(layer.weight.numpy() == 0)


class TestSequential:
    def test_applies_in_order(self, rng):
        net = Sequential(Linear(2, 3, rng), Tanh(), Linear(3, 1, rng))
        x = rng.normal(size=(4, 2))
        manual = np.tanh(x @ net.layers[0].weight.numpy() + net.layers[0].bias.numpy())
        manual = manual @ net.layers[2].weight.numpy() + net.layers[2].bias.numpy()
        np.testing.assert_allclose(net(Tensor(x)).numpy(), manual)

    def test_len_and_iter(self, rng):
        net = Sequential(Linear(2, 2, rng), Tanh())
        assert len(net) == 2
        assert [type(m).__name__ for m in net] == ["Linear", "Tanh"]

    def test_named_parameters_are_unique_and_ordered(self, rng):
        net = Sequential(Linear(2, 3, rng), Tanh(), Linear(3, 1, rng))
        names = [name for name, _ in net.named_parameters()]
        assert len(names) == len(set(names)) == 4
        assert names[0].startswith("layer0")

    def test_nested_modules_traversal(self, rng):
        inner = Sequential(Linear(2, 2, rng))
        outer = Sequential(inner, Linear(2, 1, rng))
        assert len(outer.parameters()) == 4
        assert len(list(outer.modules())) >= 4

    def test_zero_grad_resets_all(self, rng):
        net = Sequential(Linear(2, 2, rng))
        loss = (net(Tensor(rng.normal(size=(3, 2)))) ** 2).sum()
        loss.backward()
        assert net.parameters()[0].grad is not None
        net.zero_grad()
        assert np.all(net.parameters()[0].grad == 0)


class TestActivations:
    @pytest.mark.parametrize("module,fn", [
        (Tanh(), np.tanh),
        (ReLU(), lambda x: np.maximum(x, 0)),
        (Identity(), lambda x: x),
    ])
    def test_values(self, rng, module, fn):
        x = rng.normal(size=(4, 4))
        np.testing.assert_allclose(module(Tensor(x)).numpy(), fn(x), rtol=1e-12)

    def test_sigmoid_module(self, rng):
        x = rng.normal(size=(4,))
        np.testing.assert_allclose(
            Sigmoid()(Tensor(x)).numpy(), 1 / (1 + np.exp(-x)), rtol=1e-12
        )

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.3)(Tensor([-2.0, 2.0])).numpy()
        np.testing.assert_allclose(out, [-0.6, 2.0])

    def test_activation_module_factory(self):
        assert isinstance(activation_module("tanh"), Tanh)
        assert isinstance(activation_module("relu"), ReLU)
        assert isinstance(activation_module("leaky_relu"), LeakyReLU)

    def test_activation_module_unknown(self):
        with pytest.raises(ValueError, match="unknown activation"):
            activation_module("swish")
