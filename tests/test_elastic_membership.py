"""Elastic membership: epochs, the re-balancer, graceful drains, live
joins, and the churn acceptance run (kill one, drain one, join two)."""

import hashlib
import os
import socket as socketlib
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.placement import PlacementPlan, migration_count
from repro.mpi.socket_transport import _seed_transport_stats, drain_request
from repro.mpi.stats import TransportStats
from repro.parallel import DistributedRunner, elastic
from repro.parallel.elastic import (DrainNotice, MembershipEvent,
                                    MembershipLog, MembershipTable)
from repro.parallel.grid import Grid
from repro.parallel.recovery import (FaultNotice, FaultState, FrozenCell,
                                     choose_adopter, plan_rebalance)
from tests.conftest import make_quick_config

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(scope="module")
def module_dataset():
    os.environ.setdefault("REPRO_CACHE_DIR", "/tmp/repro-test-cache")
    from repro.data.dataset import ArrayDataset
    from repro.data.synthetic import load_synthetic_mnist
    from repro.data.transforms import to_tanh_range

    raw = load_synthetic_mnist(400, seed=42)
    return ArrayDataset(to_tanh_range(raw.images), raw.labels)


@pytest.fixture(autouse=True)
def _clean_drain_registry():
    """The drain registry is process-global; never leak requests across
    tests (a leftover request would silently drain a later run's rank)."""
    elastic.reset_drain_registry()
    yield
    elastic.reset_drain_registry()


def _digest(center_genomes, mixture_weights) -> str:
    digest = hashlib.sha256()
    for g, d in center_genomes:
        digest.update(g.parameters.tobytes())
        digest.update(d.parameters.tobytes())
    for weights in mixture_weights:
        digest.update(np.asarray(weights).tobytes())
    return digest.hexdigest()


# -- membership table / log ---------------------------------------------------


class TestMembershipTable:
    def test_launch_is_epoch_zero(self):
        table = MembershipTable([1, 2, 3, 4])
        assert table.epoch == 0
        assert table.members() == (1, 2, 3, 4)
        launch = table.log.events[0]
        assert launch.epoch == 0
        assert launch.kind == "launch"
        assert launch.ranks == (1, 2, 3, 4)

    def test_every_transition_bumps_the_epoch(self):
        table = MembershipTable([1, 2, 3, 4])
        assert table.bump("death", [2], cells=[1]) == 1
        assert table.bump("drain", [4], cells=[3]) == 2
        assert table.bump("join", [2]) == 3
        assert table.bump("respawn", [4]) == 4
        assert table.log.epochs() == [0, 1, 2, 3, 4]
        kinds = [event.kind for event in table.log]
        assert kinds == ["launch", "death", "drain", "join", "respawn"]

    def test_members_track_departures_and_arrivals(self):
        table = MembershipTable([1, 2, 3])
        table.bump("death", [2])
        assert table.members() == (1, 3)
        table.bump("drain", [3])
        assert table.members() == (1,)
        table.bump("join", [2])
        table.bump("respawn", [3])
        assert table.members() == (1, 2, 3)

    def test_unknown_kind_rejected(self):
        table = MembershipTable([1])
        with pytest.raises(ValueError, match="unknown membership kind"):
            table.bump("eviction", [1])
        with pytest.raises(ValueError, match="unknown membership kind"):
            MembershipEvent(epoch=1, kind="eviction", ranks=(1,))

    def test_log_is_append_only_and_iterable(self):
        log = MembershipLog()
        log.record(MembershipEvent(epoch=0, kind="launch", ranks=(1,)))
        log.record(MembershipEvent(epoch=1, kind="death", ranks=(1,)))
        assert len(log) == 2
        assert [event.epoch for event in log] == [0, 1]
        assert log.events[1].kind == "death"


# -- the deterministic re-balancer --------------------------------------------


class TestPlanRebalance:
    def test_degenerates_to_choose_adopter_without_grid(self):
        candidates = {3: {7}, 4: {8, 9}}
        plan = plan_rebalance([1], candidates)
        assert plan == {1: choose_adopter(candidates)}
        assert plan[1] == 3  # least loaded

    def test_prefers_neighborhood_locality(self):
        # Cell 5's torus neighbors on 4x4 are {1, 4, 6, 9}.  Rank 1 hosts
        # two of them; rank 2 is lighter but hosts none — locality wins.
        grid = Grid(4, 4)
        candidates = {1: {4, 6}, 2: {15}}
        with_grid = plan_rebalance([5], candidates, grid=grid)
        without = plan_rebalance([5], candidates)
        assert with_grid == {5: 1}
        assert without == {5: 2}

    def test_spreads_an_orphan_storm_across_ranks(self):
        # Two equally-eligible standby ranks: the plan's load accounting
        # must include its own earlier assignments, one orphan each.
        plan = plan_rebalance([0, 2], {1: set(), 2: set()})
        assert plan == {0: 1, 2: 2}

    def test_is_a_pure_function_of_its_inputs(self):
        grid = Grid(4, 4)
        candidates = {9: {8, 13}, 4: {0, 1}, 7: {3}}
        first = plan_rebalance([5, 12, 2], candidates, grid=grid)
        second = plan_rebalance([5, 12, 2], candidates, grid=grid)
        assert first == second

    def test_excluded_ranks_never_adopt(self):
        plan = plan_rebalance([1], {3: {7}, 4: {8}}, excluded=[3])
        assert plan == {1: 4}

    def test_no_candidates_maps_to_none(self):
        assert plan_rebalance([1], {}) == {1: None}
        assert plan_rebalance([1], {3: {7}}, excluded=[3]) == {1: None}


# -- epoch fencing ------------------------------------------------------------


def _frozen(cell, *, epoch, adopter=None, rejoin=5):
    return FrozenCell(cell_index=cell, iteration=0,
                      generator_genome=object(),
                      discriminator_genome=object(),
                      mixture_weights=object(),
                      adopter_rank=adopter, rejoin_iteration=rejoin,
                      epoch=epoch)


def _notice(*cells):
    return FaultNotice(policy="recover", dead_ranks=(), cells=tuple(cells))


class TestEpochFencing:
    def test_static_run_stays_at_epoch_zero(self):
        state = FaultState()
        assert state.current_epoch() == 0
        assert state.min_epoch_for(3) == 0

    def test_current_epoch_tracks_the_newest_notice(self):
        state = FaultState()
        state.apply(_notice(_frozen(1, epoch=2)))
        state.apply(_notice(_frozen(3, epoch=5)))
        assert state.current_epoch() == 5
        assert state.min_epoch_for(1) == 2
        assert state.min_epoch_for(3) == 5

    def test_newer_epoch_replaces_a_known_cell(self):
        state = FaultState()
        state.apply(_notice(_frozen(1, epoch=1, adopter=None)))
        fresh = state.apply(_notice(_frozen(1, epoch=3, adopter=4)))
        assert [cell.epoch for cell in fresh] == [3]
        assert state.send_route(1) is not None  # the joiner now speaks

    def test_same_epoch_duplicate_is_idempotent(self):
        state = FaultState()
        cell = _frozen(1, epoch=2)
        assert state.apply(_notice(cell))
        assert state.apply(_notice(cell)) == []

    def test_stale_epoch_never_downgrades(self):
        state = FaultState()
        state.apply(_notice(_frozen(1, epoch=3, adopter=4)))
        assert state.apply(_notice(_frozen(1, epoch=1, adopter=None))) == []
        assert state.min_epoch_for(1) == 3


# -- the drain registry -------------------------------------------------------


class TestDrainRegistry:
    def test_request_then_mark(self):
        assert not elastic.drain_requested(3)
        elastic.request_drain(3)
        assert elastic.drain_requested(3)
        assert not elastic.was_drained(3)
        elastic.mark_drained(3)
        assert elastic.was_drained(3)

    def test_reset_clears_both_sets(self):
        elastic.request_drain(1)
        elastic.mark_drained(1)
        elastic.reset_drain_registry()
        assert not elastic.drain_requested(1)
        assert not elastic.was_drained(1)

    def test_drain_notice_exposes_its_cells(self):
        from repro.coevolution.checkpoint import CellSnapshot

        snap = CellSnapshot(cell_index=7, iteration=1,
                            generator_genome=None, discriminator_genome=None,
                            mixture_weights=None)
        notice = DrainNotice(rank=8, snapshots=(snap,))
        assert notice.cells == (7,)


# -- transport-stats carry-over -----------------------------------------------


class TestStatsCarryover:
    def test_apply_carryover_accumulates(self):
        stats = TransportStats(4)
        stats.apply_carryover(reconnects=2, ranks_lost=1, send_retries=3)
        stats.count_reconnect()
        assert stats.reconnects == 3
        assert stats.ranks_lost == 1
        assert stats.send_retries == 3

    def test_seed_from_start_frame(self):
        # Incarnation 3 = two re-establishments of the slot; the joiner
        # also inherits the run's cumulative peer losses.
        seeded = _seed_transport_stats(
            [4, 5], {"incarnation": 3, "peer_losses": 2}, connect_retries=1)
        for rank in (4, 5):
            assert seeded[rank].rank == rank
            assert seeded[rank].reconnects == 2
            assert seeded[rank].ranks_lost == 2
            assert seeded[rank].send_retries == 1

    def test_legacy_respawn_flag_seeds_one_reconnect(self):
        seeded = _seed_transport_stats([4], {"respawn": True},
                                       connect_retries=0)
        assert seeded[4].reconnects == 1

    def test_first_incarnation_starts_clean(self):
        seeded = _seed_transport_stats([1], {"incarnation": 1,
                                             "peer_losses": 0},
                                       connect_retries=0)
        assert seeded[1].reconnects == 0
        assert seeded[1].ranks_lost == 0


# -- placement under migration ------------------------------------------------


class TestPlacementElastic:
    def test_reassign_pins_exactly_one_rank(self):
        before = PlacementPlan(("node-a", "node-a", "node-b"))
        after = before.reassign(2, "node-c")
        assert after.task_nodes == ("node-a", "node-a", "node-c")
        assert migration_count(before, after) == 1
        assert migration_count(before, before) == 0

    def test_reassign_rejects_unknown_rank(self):
        plan = PlacementPlan(("node-a",))
        with pytest.raises(ValueError, match="outside the plan"):
            plan.reassign(1, "node-b")

    def test_migration_count_rejects_resize(self):
        with pytest.raises(ValueError, match="never resizes"):
            migration_count(PlacementPlan(("a",)), PlacementPlan(("a", "b")))


# -- graceful drain, in-process -----------------------------------------------


class TestThreadedDrain:
    def test_drained_rank_hands_its_cell_off(self, module_dataset):
        config = make_quick_config(2, 2, iterations=2)
        elastic.request_drain(2)  # rank 2 = cell 1 leaves at the first boundary
        result = DistributedRunner(
            config, backend="threaded", dataset=module_dataset,
            fault_policy="recover", snapshot_every=1,
        ).run()
        assert result.drained_ranks == [2]
        assert result.dead_ranks == []
        assert result.ok and result.complete
        assert len(result.training.center_genomes) == 4
        for cell in range(4):
            assert result.training.cell_reports[cell], f"cell {cell} untrained"
        kinds = [event.kind for event in result.membership]
        assert kinds[0] == "launch"
        assert kinds.count("drain") == 1
        assert result.membership.epochs() == list(range(len(kinds)))
        assert elastic.was_drained(2)


# -- static membership: bit-identity across every backend ---------------------


class TestStaticMembershipIdentity:
    def test_all_backends_digest_identical(self, module_dataset):
        """With nobody joining or leaving, the elastic layer must be
        invisible: epoch 0 everywhere, no extra frames, and the exact
        genomes of every other backend."""
        from repro.coevolution import SequentialTrainer

        config = make_quick_config(2, 2, iterations=2)
        sequential = SequentialTrainer(config, module_dataset).run()
        reference = _digest(sequential.center_genomes,
                            sequential.mixture_weights)
        for backend, options in [
            ("threaded", {}),
            ("process", {}),
            ("socket", {"hosts": "127.0.0.1:5"}),
        ]:
            result = DistributedRunner(
                config, backend=backend, dataset=module_dataset,
                fault_policy="recover", snapshot_every=1, **options,
            ).run()
            assert result.complete and result.ok
            assert _digest(result.training.center_genomes,
                           result.training.mixture_weights) == reference, \
                f"{backend} diverged from the sequential baseline"
            kinds = [event.kind for event in result.membership]
            assert kinds == ["launch"], f"{backend} saw phantom churn"
            assert result.membership.epochs() == [0]


# -- the churn acceptance run -------------------------------------------------


def _free_port() -> int:
    with socketlib.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class TestChurnAcceptance:
    """4x4 over TCP with every kind of churn at once: one worker killed,
    one drained over the wire, two fresh workers joined mid-run.  The run
    must finish with every cell trained and the membership log recording
    each transition."""

    def test_4x4_kill_drain_join(self, module_dataset):
        port = _free_port()
        token = "churn-acceptance"
        connect = f"127.0.0.1:{port}"
        config = make_quick_config(4, 4, iterations=3,
                                   dataset_size=400, batch_size=10, batches=1)
        runner = DistributedRunner(
            config,
            backend="socket",
            # Ranks 0-14 share the big worker; ranks 15 and 16 each get a
            # single-rank worker, so the kill and the drain vacate slots a
            # `repro worker --join` can fill.  (Not 17 single-rank workers:
            # CI-sized machines cannot schedule that many python processes,
            # and the churn under test is membership churn, not the box's.)
            hosts="127.0.0.1:15,127.0.0.1:1,127.0.0.1:1",
            bind=connect,
            token=token,
            dataset=module_dataset,
            fault_at={14: 1},         # cell 14 -> rank 15 dies mid-run
            fault_kill=True,
            fault_policy="recover",
            snapshot_every=1,
            heartbeat_interval_s=0.1,
            miss_limit=8,
            timeout_s=480,
        )
        box = {}

        def _run():
            box["result"] = runner.run()

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        joiners: list[subprocess.Popen] = []
        try:
            # Drain rank 10 over the wire, retrying until the coordinator
            # is up and hosting it.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if drain_request(connect, rank=16, token=token,
                                 timeout=5.0) == 0:
                    break
                time.sleep(0.5)
            else:
                pytest.fail("drain request never reached the coordinator")

            # Two fresh workers ask to join; they are refused until a slot
            # vacates (the kill, the drain), so keep respawning rejected
            # ones while the run is live.
            env = {**os.environ, "PYTHONPATH": SRC}
            cmd = [sys.executable, "-m", "repro", "worker",
                   "--connect", connect, "--token", token, "--join",
                   "--quiet"]
            joiners = [subprocess.Popen(cmd, env=env) for _ in range(2)]
            while thread.is_alive():
                thread.join(timeout=0.5)
                for i, proc in enumerate(joiners):
                    if not thread.is_alive():
                        break
                    if proc.poll() is not None and proc.returncode != 0:
                        joiners[i] = subprocess.Popen(cmd, env=env)
            thread.join(timeout=480)
            assert not thread.is_alive(), "churn run never finished"
        finally:
            for proc in joiners:
                if proc.poll() is None:
                    proc.terminate()
            for proc in joiners:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()

        result = box["result"]
        assert result.dead_ranks == [15]
        assert result.drained_ranks == [16]
        assert sorted(result.joined_ranks) == [15, 16]
        assert result.ok, f"degraded {result.degraded_ranks}"
        assert len(result.training.center_genomes) == 16
        for cell in range(16):
            assert result.training.cell_reports[cell], f"cell {cell} untrained"
        log = result.membership
        kinds = [event.kind for event in log]
        assert kinds[0] == "launch"
        assert kinds.count("death") == 1
        assert kinds.count("drain") == 1
        assert kinds.count("join") == 2
        # Epochs are gapless and monotonic: every transition was recorded.
        assert log.epochs() == list(range(len(kinds)))
