"""Dtype as a run-level policy: registry, trajectories, wire, checkpoints.

float64 stays the bit-identical reference (its trajectories are pinned by
every pre-existing equivalence test); float32 and mixed16 get their own
determinism contract here: same seed + same dtype + same backend chain =>
same genome bytes, and the policy's storage dtype is what genomes, wire
payloads and checkpoints actually carry.
"""

import dataclasses
import hashlib

import numpy as np
import pytest

from repro.config import ConfigError, NetworkSettings, paper_table1_config
from repro.coevolution.genome import Genome
from repro.registry import DTYPES, dtype_policy
from tests.conftest import make_quick_config


def _dtype_config(dtype, loss="bce", **scale):
    base = dict(iterations=50, dataset_size=100, batch_size=10, batches=1)
    base.update(scale)
    cfg = make_quick_config(1, 1, **base)
    return dataclasses.replace(
        cfg,
        network=dataclasses.replace(cfg.network, dtype=dtype),
        training=dataclasses.replace(cfg.training, loss_function=loss),
    )


def _trajectory_hash(result) -> str:
    h = hashlib.sha256()
    for g, d in result.center_genomes:
        h.update(str(g.parameters.dtype).encode())
        h.update(g.parameters.tobytes())
        h.update(d.parameters.tobytes())
    return h.hexdigest()


def _run(config, dataset, backend="sequential", **backend_options):
    from repro.api import Experiment

    return (Experiment(config).dataset(dataset)
            .backend(backend, **backend_options).run())


class TestDtypeRegistry:
    def test_known_policies(self):
        assert {"float64", "float32", "mixed16"} <= DTYPES.known()

    @pytest.mark.parametrize("name,compute,storage", [
        ("float64", "float64", "float64"),
        ("float32", "float32", "float32"),
        ("mixed16", "float32", "float16"),
    ])
    def test_policy_fields(self, name, compute, storage):
        policy = dtype_policy(name)
        assert policy.compute == compute
        assert policy.storage == storage

    def test_unknown_policy_rejected(self):
        with pytest.raises(Exception, match="float128"):
            dtype_policy("float128")

    def test_network_settings_validates_dtype(self):
        with pytest.raises(ConfigError, match="dtype"):
            NetworkSettings(dtype="double")

    def test_config_round_trip_preserves_dtype(self):
        config = paper_table1_config().with_dtype("mixed16")
        assert config.network.dtype == "mixed16"
        restored = type(config).from_dict(config.to_dict())
        assert restored.network.dtype == "mixed16"

    def test_experiment_dtype_method(self):
        from repro.api import Experiment

        experiment = Experiment().dtype("float32")
        assert experiment.config.network.dtype == "float32"


class TestNetworkDtype:
    """The policy's compute dtype reaches parameters, grads and outputs."""

    @pytest.mark.parametrize("name", ["float64", "float32", "mixed16"])
    def test_parameters_and_outputs(self, name):
        from repro.gan.networks import Discriminator, Generator
        from repro.nn import Tensor

        compute = np.dtype(dtype_policy(name).compute)
        settings = NetworkSettings(dtype=name)
        rng = np.random.default_rng(0)
        gen = Generator(settings, rng)
        disc = Discriminator(settings, rng)
        for net in (gen, disc):
            assert all(p.data.dtype == compute for p in net.parameters())
        z = Tensor(rng.standard_normal((4, settings.latent_size)))  # float64 in
        fake = gen(z)
        assert fake.data.dtype == compute
        logits = disc(fake)
        assert logits.data.dtype == compute

    @pytest.mark.parametrize("name", ["float32", "mixed16"])
    def test_gradients_and_optimizer_state_match_compute(self, name):
        from repro.gan.networks import Generator
        from repro.nn.arena import arena_of
        from repro.nn.optim import Adam

        compute = np.dtype(dtype_policy(name).compute)
        settings = NetworkSettings(dtype=name)
        gen = Generator(settings, np.random.default_rng(0))
        arena = arena_of(gen)
        assert arena.data.dtype == compute
        arena.ensure_grads()
        assert arena.grad.dtype == compute
        optimizer = Adam(gen.parameters(), learning_rate=1e-3, arena=arena)
        arena.grad[:] = 1.0
        optimizer.step()
        for state in (optimizer._m_flat, optimizer._v_flat,
                      optimizer._scratch, optimizer._scratch2):
            assert state.dtype == compute
        assert arena.data.dtype == compute  # step never rebinds/promotes

    def test_rng_stream_parity_across_dtypes(self):
        """Same seed => same underlying float64 draws, only cast differs."""
        from repro.gan.networks import Generator

        g64 = Generator(NetworkSettings(dtype="float64"), np.random.default_rng(3))
        g32 = Generator(NetworkSettings(dtype="float32"), np.random.default_rng(3))
        p64 = np.concatenate([p.data.ravel() for p in g64.parameters()])
        p32 = np.concatenate([p.data.ravel() for p in g32.parameters()])
        np.testing.assert_array_equal(p64.astype(np.float32), p32)


class TestGenomeDtype:
    def test_contiguous_float_vectors_adopted_as_is(self):
        for dtype in (np.float64, np.float32, np.float16):
            vec = np.ones(8, dtype=dtype)
            genome = Genome(vec, 1e-3, "bce")
            assert genome.parameters is vec  # zero-copy, dtype intact

    def test_non_float_input_normalized_to_float64(self):
        genome = Genome(np.arange(8), 1e-3, "bce")
        assert genome.parameters.dtype == np.float64
        listed = Genome([1.0, 2.0], 1e-3, "bce")
        assert listed.parameters.dtype == np.float64

    def test_non_contiguous_copied_once_dtype_kept(self):
        strided = np.ones(16, dtype=np.float32)[::2]
        genome = Genome(strided, 1e-3, "bce")
        assert genome.parameters.flags.c_contiguous
        assert genome.parameters.dtype == np.float32


class TestGoldenTrajectories:
    """Per-dtype determinism pins: 50 sequential iterations, each loss.

    The hashes are not portable across BLAS builds, so the pin is
    self-relative: every (dtype, loss) trajectory must differ from the
    float64 reference (dtype really flows through training), and a repeated
    float32 run must reproduce its hash bit for bit.
    """

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.data.dataset import ArrayDataset
        from repro.data.synthetic import load_synthetic_mnist
        from repro.data.transforms import to_tanh_range

        raw = load_synthetic_mnist(100, seed=42)
        return ArrayDataset(to_tanh_range(raw.images), raw.labels)

    @pytest.mark.parametrize("loss", ["bce", "mse", "heuristic"])
    def test_per_dtype_hashes_distinct_and_typed(self, dataset, loss):
        hashes = {}
        for name in ("float64", "float32", "mixed16"):
            result = _run(_dtype_config(name, loss), dataset)
            storage = np.dtype(dtype_policy(name).storage)
            g, d = result.center_genomes[0]
            assert g.parameters.dtype == storage
            assert d.parameters.dtype == storage
            hashes[name] = _trajectory_hash(result)
        assert len(set(hashes.values())) == 3, hashes

    def test_float32_trajectory_is_deterministic(self, dataset):
        first = _trajectory_hash(_run(_dtype_config("float32"), dataset))
        second = _trajectory_hash(_run(_dtype_config("float32"), dataset))
        assert first == second

    def test_mixed16_trajectory_is_deterministic(self, dataset):
        first = _trajectory_hash(_run(_dtype_config("mixed16"), dataset))
        second = _trajectory_hash(_run(_dtype_config("mixed16"), dataset))
        assert first == second


class TestCrossBackendEquivalence:
    """float32 (and mixed16) train the same trajectory on every backend."""

    @pytest.fixture(scope="class")
    def dataset(self):
        from repro.data.dataset import ArrayDataset
        from repro.data.synthetic import load_synthetic_mnist
        from repro.data.transforms import to_tanh_range

        raw = load_synthetic_mnist(400, seed=42)
        return ArrayDataset(to_tanh_range(raw.images), raw.labels)

    def test_float32_sequential_process_socket_equal(self, dataset):
        config = dataclasses.replace(
            make_quick_config(2, 2, iterations=2),
            network=dataclasses.replace(
                make_quick_config().network, dtype="float32"))
        sequential = _run(config, dataset)
        process = _run(config, dataset, backend="process")
        socketed = _run(config, dataset, backend="socket",
                        hosts="127.0.0.1:3,127.0.0.1:2")
        assert socketed.complete
        seq_hash = _trajectory_hash(sequential)
        assert _trajectory_hash(process) == seq_hash
        assert _trajectory_hash(socketed) == seq_hash
        for g, _d in sequential.center_genomes:
            assert g.parameters.dtype == np.float32

    def test_mixed16_sequential_process_equal(self, dataset):
        config = dataclasses.replace(
            make_quick_config(2, 2, iterations=2),
            network=dataclasses.replace(
                make_quick_config().network, dtype="mixed16"))
        sequential = _run(config, dataset)
        process = _run(config, dataset, backend="process")
        assert _trajectory_hash(process) == _trajectory_hash(sequential)
        for g, _d in sequential.center_genomes:
            assert g.parameters.dtype == np.float16


class TestCheckpointDtype:
    @pytest.mark.parametrize("name", ["float32", "mixed16"])
    def test_round_trip_preserves_dtype_bit_exactly(self, name, tmp_path):
        from repro.coevolution.checkpoint import (
            TrainingCheckpoint, load_checkpoint, save_checkpoint)

        storage = np.dtype(dtype_policy(name).storage)
        config = _dtype_config(name, iterations=2)
        rng = np.random.default_rng(0)
        vectors = [rng.standard_normal(32).astype(storage) for _ in range(2)]
        checkpoint = TrainingCheckpoint(
            config=config,
            iteration=1,
            center_genomes=[(Genome(vectors[0], 1e-3, "bce"),
                             Genome(vectors[1], 1e-3, "bce"))],
            mixture_weights=[np.full(5, 0.2)],
        )
        path = tmp_path / "run.npz"
        save_checkpoint(path, checkpoint)
        restored = load_checkpoint(path)
        assert restored.config.network.dtype == name
        g, d = restored.center_genomes[0]
        assert g.parameters.dtype == storage
        assert d.parameters.dtype == storage
        np.testing.assert_array_equal(g.parameters, vectors[0])
        np.testing.assert_array_equal(d.parameters, vectors[1])

    def test_trained_float32_checkpoint_round_trip(self, tmp_path):
        from repro.coevolution.checkpoint import (
            TrainingCheckpoint, load_checkpoint, save_checkpoint)
        from repro.coevolution.sequential import SequentialTrainer
        from repro.data.dataset import ArrayDataset
        from repro.data.synthetic import load_synthetic_mnist
        from repro.data.transforms import to_tanh_range

        raw = load_synthetic_mnist(100, seed=42)
        dataset = ArrayDataset(to_tanh_range(raw.images), raw.labels)
        config = _dtype_config("float32", iterations=2)
        trainer = SequentialTrainer(config, dataset)
        trainer.run()
        checkpoint = TrainingCheckpoint.from_trainer(trainer)
        path = tmp_path / "f32.npz"
        save_checkpoint(path, checkpoint)
        restored = load_checkpoint(path)
        for (g0, d0), (g1, d1) in zip(checkpoint.center_genomes,
                                      restored.center_genomes):
            assert g1.parameters.dtype == np.float32
            np.testing.assert_array_equal(g0.parameters, g1.parameters)
            np.testing.assert_array_equal(d0.parameters, d1.parameters)


class TestWireDtype:
    def test_worker_command_carries_dtype(self):
        import socket as socket_module

        from repro.mpi.socket_transport import SocketTransport

        transport = SocketTransport(2, hosts="remotebox:2", dtype="float32")
        listener = socket_module.socket()
        try:
            listener.bind(("127.0.0.1", 0))
            transport._listener = listener
            assert "--dtype float32" in transport.worker_command(0)
        finally:
            listener.close()
            transport._listener = None
            transport.shutdown()

    def test_mixed_dtype_hello_rejected_loudly(self, capsys):
        """A peer advertising a different dtype policy is rejected at
        rendezvous with a clear error, and the run completes with the
        matching workers — corruption is impossible, not just unlikely."""
        import json
        import socket as socket_module
        import threading
        import time

        from repro.mpi import wire
        from repro.mpi.socket_transport import (
            _WIRE_VERSION, SocketTransport)
        from tests.test_mpi_socket import ring_program

        transport = SocketTransport(2, hosts="127.0.0.1:2", token="tok",
                                    start_timeout=30, dtype="float32")
        launched = threading.Thread(
            target=transport.launch, args=(ring_program, (4,)), daemon=True)
        launched.start()
        try:
            deadline = time.monotonic() + 20
            while transport._listener is None:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            port = transport._listener.getsockname()[1]
            hello = json.dumps({
                "version": _WIRE_VERSION, "token": "tok", "slots": 2,
                "index": 0, "host": "intruder", "pid": 1,
                "dtype": "float64",
            }).encode("utf-8")
            with socket_module.create_connection(("127.0.0.1", port),
                                                 timeout=10) as intruder:
                intruder.sendall(wire.pack_frame(wire.HELLO, 2, body=hello))
            launched.join(timeout=60)
            assert not launched.is_alive(), "rendezvous crashed or hung"
            outcomes = transport.collect(timeout=60)
            assert [o.value for o in outcomes] == [1.0, 0.0]
        finally:
            transport.shutdown()
        err = capsys.readouterr().err
        assert "dtype policy mismatch" in err
        assert "float32" in err and "float64" in err


def _recv_dtype_mismatch_program(comm):
    """A narrower-dtype send into a wider buffer must fail loudly, naming
    both dtypes — never silently widen (or worse, reinterpret bytes)."""
    rank = comm.Get_rank()
    if rank == 0:
        comm.Send(np.zeros(4, dtype=np.float32), dest=1, tag=1)
        return True
    buffer = np.empty(4, dtype=np.float64)
    with pytest.raises(ValueError, match=r"float32.*float64"):
        comm.Recv(buffer, source=0, tag=1)
    return True


class TestCommAccounting:
    """Satellite: buffer mismatch errors name dtypes; stats count real bytes."""

    def test_recv_buffer_dtype_mismatch_names_both_dtypes(self):
        from repro.mpi import run_mpi

        assert all(run_mpi(2, _recv_dtype_mismatch_program,
                           backend="threaded", timeout=30))

    @pytest.mark.parametrize("dtype,expected", [
        (np.float64, 8), (np.float32, 4), (np.float16, 2)])
    def test_payload_nbytes_counts_storage_dtype(self, dtype, expected):
        from repro.mpi.stats import payload_nbytes

        genome = Genome(np.ones(10, dtype=dtype), 1e-3, "bce")
        # learning_rate/loss_name contribute a few bytes; the vector term
        # must scale with the storage dtype's true width.
        assert payload_nbytes(genome.parameters) == 10 * expected
        pair_payload = [(genome, genome)]
        assert payload_nbytes(pair_payload) >= 2 * 10 * expected
