"""Tests for the backend/dataset/loss registries behind repro.api."""

import dataclasses

import pytest

from repro.api import BACKENDS, DATASETS, LOSSES, Experiment, RegistryError
from repro.config import ConfigError, default_config
from repro.nn import loss_by_name
from repro.nn.losses import GANLoss
from repro.registry import Registry

from tests.conftest import make_quick_config


class TestRegistryCore:
    def test_builtin_names_known_without_import(self):
        registry = Registry("thing")
        registry.register_lazy("lazy", "json:loads")
        assert "lazy" in registry
        assert registry.known() == {"lazy"}

    def test_lazy_entry_resolves_on_create(self):
        registry = Registry("thing")
        registry.register_lazy("loads", "json:loads")
        assert registry.create("loads", '{"a": 1}') == {"a": 1}

    def test_register_and_create(self):
        registry = Registry("thing")
        registry.register("double", lambda x: 2 * x)
        assert registry.create("double", 21) == 42

    def test_duplicate_rejected_unless_overwritten(self):
        registry = Registry("thing")
        registry.register("x", int)
        with pytest.raises(RegistryError):
            registry.register("x", float)
        registry.register("x", float, overwrite=True)
        assert registry.get("x") is float

    def test_unknown_name_lists_known(self):
        registry = Registry("thing")
        registry.register("known", int)
        with pytest.raises(RegistryError, match="known"):
            registry.get("missing")

    def test_unregister(self):
        registry = Registry("thing")
        registry.register("x", int)
        registry.unregister("x")
        assert "x" not in registry
        with pytest.raises(RegistryError):
            registry.unregister("x")

    def test_non_callable_factory_rejected(self):
        registry = Registry("thing")
        with pytest.raises(RegistryError):
            registry.register("bad", 42)


class TestBuiltins:
    def test_backends(self):
        assert {"sequential", "process", "threaded", "socket"} <= BACKENDS.known()

    def test_socket_backend_resolves(self):
        from repro.api.backends import SocketBackend

        backend = BACKENDS.create("socket", hosts="127.0.0.1:5")
        assert isinstance(backend, SocketBackend)
        assert backend.runner_options == {"hosts": "127.0.0.1:5"}

    def test_socket_validates_in_config(self):
        """ExecutionSettings checks the registry, so the new backend is a
        legal config value end to end."""
        import dataclasses

        from repro.config import default_config

        config = default_config()
        execution = dataclasses.replace(config.execution, backend="socket")
        replaced = dataclasses.replace(config, execution=execution)
        assert replaced.execution.backend == "socket"

    def test_datasets(self):
        assert {"synthetic-mnist", "synthetic-shapes"} <= DATASETS.known()

    def test_losses_match_loss_by_name(self):
        for name in ("bce", "mse", "heuristic"):
            assert name in LOSSES
            assert type(LOSSES.create(name)) is type(loss_by_name(name))


class _ConstantLoss(GANLoss):
    name = "constant"

    def discriminator_loss(self, real_logits, fake_logits):
        return (real_logits * 0.0).sum()

    def generator_loss(self, fake_logits):
        return (fake_logits * 0.0).sum()


class TestExtensibility:
    """A registered component is usable end to end with zero core edits."""

    def test_custom_loss_validates_in_config_and_resolves(self):
        LOSSES.register("constant", _ConstantLoss)
        try:
            config = default_config()
            training = dataclasses.replace(config.training, loss_function="constant")
            config = dataclasses.replace(config, training=training)  # no ConfigError
            assert config.training.loss_function == "constant"
            assert isinstance(loss_by_name("constant"), _ConstantLoss)
        finally:
            LOSSES.unregister("constant")

    def test_unregistered_loss_still_rejected(self):
        config = default_config()
        with pytest.raises(ConfigError, match="nope"):
            dataclasses.replace(
                config,
                training=dataclasses.replace(config.training, loss_function="nope"),
            )

    def test_custom_loss_trains(self, cache_dir):
        LOSSES.register("constant", _ConstantLoss)
        try:
            config = make_quick_config(iterations=1)
            result = Experiment(config).loss("constant").backend("sequential").run()
            assert result.iterations_run == 1
            assert all(g.loss_name == "constant"
                       for g, _ in result.center_genomes)
        finally:
            LOSSES.unregister("constant")

    def test_custom_dataset_by_name(self, cache_dir):
        from repro.api.datasets import synthetic_mnist

        DATASETS.register("tiny", lambda config: synthetic_mnist(config).subset(
            list(range(200))))
        try:
            config = make_quick_config(iterations=1)
            experiment = Experiment(config).dataset("tiny")
            assert len(experiment.build_dataset()) == 200
        finally:
            DATASETS.unregister("tiny")

    def test_custom_backend_reachable_from_facade(self):
        from repro.api import RunResult, TrainerBackend
        from repro.coevolution.sequential import SequentialTrainer

        class RecordingBackend(TrainerBackend):
            name = "recording"

            def execute(self, ctx):
                from repro import _deprecation

                with _deprecation.suppressed():
                    trainer = SequentialTrainer(ctx.config, ctx.dataset)
                training = trainer.result(0.0)
                return RunResult(backend=self.name, training=training)

        BACKENDS.register("recording", RecordingBackend)
        try:
            config = make_quick_config(iterations=1)
            # A custom backend name is also a *valid configuration value*.
            result = Experiment(config).backend("recording").run()
            assert result.backend == "recording"
            assert result.config.execution.backend == "recording"
        finally:
            BACKENDS.unregister("recording")

    def test_unknown_backend_rejected_by_facade(self):
        with pytest.raises(RegistryError):
            Experiment().backend("warp-drive")

    def test_unknown_dataset_rejected_by_facade(self):
        with pytest.raises(RegistryError):
            Experiment().dataset("imagenet")
