"""Regression: 1x1 grids must complete on every backend.

On a 1x1 torus all four Moore neighbors wrap to the center cell, so the
synchronous exchange used to wait for four messages that nobody would ever
send (``incoming_neighbors`` rightly excludes self) — the distributed run
deadlocked on its first exchange.  Self-edges are now satisfied locally
from the cell's own payload, which is bit-identical to what the fallback
ordering would substitute anyway.
"""

import numpy as np
import pytest

from repro.parallel import DistributedRunner
from repro.parallel.grid import Grid
from tests.conftest import make_quick_config


@pytest.fixture(scope="module")
def module_dataset():
    import os

    os.environ.setdefault("REPRO_CACHE_DIR", "/tmp/repro-test-cache")
    from repro.data.dataset import ArrayDataset
    from repro.data.synthetic import load_synthetic_mnist
    from repro.data.transforms import to_tanh_range

    raw = load_synthetic_mnist(400, seed=42)
    return ArrayDataset(to_tanh_range(raw.images), raw.labels)


def test_1x1_torus_is_all_self_edges():
    grid = Grid(1, 1)
    assert grid.neighbor_cells(0) == [0, 0, 0, 0]
    assert grid.incoming_neighbors(0) == []


def test_1x1_process_backend_completes_and_matches_sequential(module_dataset):
    from repro.coevolution import SequentialTrainer

    config = make_quick_config(1, 1, iterations=2)
    sequential = SequentialTrainer(config, module_dataset).run()
    distributed = DistributedRunner(
        config, backend="process", dataset=module_dataset
    ).run()
    sg, sd = sequential.center_genomes[0]
    dg, dd = distributed.training.center_genomes[0]
    np.testing.assert_array_equal(sg.parameters, dg.parameters)
    np.testing.assert_array_equal(sd.parameters, dd.parameters)


def test_1x1_socket_backend_completes(module_dataset):
    from repro.api import Experiment

    config = make_quick_config(1, 1, iterations=1)
    process = DistributedRunner(
        config, backend="process", dataset=module_dataset
    ).run()
    socketed = (Experiment(config)
                .dataset("synthetic-mnist")
                .backend("socket", hosts="127.0.0.1:2")  # master + one slave
                .run())
    assert socketed.complete
    pg, pd = process.training.center_genomes[0]
    sg, sd = socketed.center_genomes[0]
    np.testing.assert_array_equal(pg.parameters, sg.parameters)
    np.testing.assert_array_equal(pd.parameters, sd.parameters)


def test_1xn_row_grid_completes(module_dataset):
    """Any dimension of 1 produces self-edges (N/S wrap to the cell
    itself); the synchronous exchange must satisfy them locally too."""
    config = make_quick_config(1, 2, iterations=1)
    distributed = DistributedRunner(
        config, backend="threaded", dataset=module_dataset
    ).run()
    assert len(distributed.training.center_genomes) == 2
