"""Tests for the Experiment facade: resolution, equivalence, resume."""

import warnings

import numpy as np
import pytest

from repro import _deprecation
from repro.api import Experiment, RunResult
from repro.config import default_config

from tests.conftest import make_quick_config


def _genomes_equal(a, b) -> bool:
    return all(
        np.array_equal(ga.parameters, gb.parameters)
        and np.array_equal(da.parameters, db.parameters)
        for (ga, da), (gb, db) in zip(a, b)
    )


class TestBuilder:
    def test_default_config_is_the_laptop_default(self):
        assert Experiment().config == default_config()

    def test_fluent_overrides(self):
        experiment = (Experiment()
                      .grid(3, 3)
                      .seed(7)
                      .loss("mse")
                      .backend("threaded"))
        config = experiment.config
        assert config.coevolution.grid_size == (3, 3)
        assert config.execution.number_of_tasks == 10
        assert config.seed == 7
        assert config.training.loss_function == "mse"
        assert config.execution.backend == "threaded"

    def test_describe_is_valid_config_json(self):
        from repro.config import ExperimentConfig

        experiment = Experiment().grid(2, 2).backend("sequential")
        assert ExperimentConfig.from_json(experiment.describe()) == experiment.config

    def test_backend_name_flows_into_config(self):
        assert Experiment().backend("sequential").config.execution.backend == "sequential"

    def test_dataset_instance_shared_verbatim(self, cache_dir):
        config = make_quick_config()
        dataset = Experiment(config).build_dataset()
        assert Experiment(config).dataset(dataset).build_dataset() is dataset


class TestEquivalence:
    """The paper's sequential-vs-distributed guarantee, through the facade."""

    def test_sequential_matches_direct_trainer(self, cache_dir):
        from repro.coevolution.sequential import SequentialTrainer

        config = make_quick_config(iterations=2)
        facade = Experiment(config).backend("sequential").run()
        with _deprecation.suppressed():
            trainer = SequentialTrainer(config)
        direct = trainer.run()
        assert _genomes_equal(facade.center_genomes, direct.center_genomes)

    def test_sequential_matches_process(self, cache_dir):
        config = make_quick_config(iterations=2)
        sequential = Experiment(config).backend("sequential").run()
        process = Experiment(config).backend("process").run()
        assert process.complete
        assert _genomes_equal(sequential.center_genomes, process.center_genomes)
        for a, b in zip(sequential.mixture_weights, process.mixture_weights):
            assert np.array_equal(a, b)

    def test_sequential_matches_threaded(self, cache_dir):
        config = make_quick_config(iterations=2)
        sequential = Experiment(config).backend("sequential").run()
        threaded = Experiment(config).backend("threaded").run()
        assert _genomes_equal(sequential.center_genomes, threaded.center_genomes)

    def test_facade_emits_no_deprecation_warnings(self, cache_dir):
        config = make_quick_config(iterations=1)
        _deprecation.reset()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Experiment(config).backend("sequential").run()
            Experiment(config).backend("threaded").run()


class TestRunResult:
    def test_common_fields_promoted(self, cache_dir):
        config = make_quick_config(iterations=1)
        result = Experiment(config).backend("sequential").run()
        assert isinstance(result, RunResult)
        assert result.config == Experiment(config).backend("sequential").config
        assert len(result.center_genomes) == config.coevolution.cells
        assert len(result.cell_reports) == config.coevolution.cells
        assert result.iterations_run == 1
        assert result.complete and result.dead_ranks == []
        assert 0 <= result.best_cell_index() < config.coevolution.cells
        assert "sequential run" in result.summary()

    def test_distributed_result_reachable(self, cache_dir):
        config = make_quick_config(iterations=1)
        result = Experiment(config).backend("threaded").run()
        assert result.distributed is not None
        assert result.backend == "threaded"
        assert result.trainer is None
        assert result.iterations_run == 1

    def test_profile_snapshots(self, cache_dir):
        config = make_quick_config(iterations=1)
        result = Experiment(config).backend("sequential").profile().run()
        total = result.profile(parallel=False)
        assert total.totals.get("train", 0.0) > 0.0

    def test_to_servable(self, cache_dir):
        config = make_quick_config(iterations=1)
        result = Experiment(config).backend("sequential").run()
        ensemble = result.to_servable()
        images = ensemble.sample(4, seed=1)
        assert images.shape == (4, config.network.output_neurons)

    def test_checkpoint_roundtrip_any_backend(self, cache_dir, tmp_path):
        config = make_quick_config(iterations=2)
        for backend in ("sequential", "threaded"):
            result = Experiment(config).backend(backend).run()
            path = tmp_path / f"{backend}.npz"
            result.save_checkpoint(path)

            from repro.coevolution.checkpoint import load_checkpoint

            restored = load_checkpoint(path)
            assert restored.iteration == 2
            assert restored.remaining_iterations == 0
            assert _genomes_equal(restored.center_genomes, result.center_genomes)


class TestAbortedRuns:
    def test_aborted_distributed_checkpoint_stays_resumable(self, cache_dir):
        """A run that lost ranks must not checkpoint as 'finished'."""
        config = make_quick_config(iterations=50)  # long enough to abort
        result = (Experiment(config)
                  .backend("threaded", fault_at={0: 1},
                           heartbeat_interval_s=0.05, miss_limit=4,
                           timeout_s=120)
                  .run())
        assert not result.complete
        assert result.iteration == result.iterations_run < 50
        assert result.to_checkpoint().remaining_iterations > 0


class TestResume:
    def test_resume_runs_remaining_iterations(self, cache_dir, tmp_path):
        config = make_quick_config(iterations=3)
        # Train 1 of 3 iterations sequentially, snapshot, resume via facade.
        from repro.coevolution.checkpoint import TrainingCheckpoint, save_checkpoint
        from repro.coevolution.sequential import SequentialTrainer

        with _deprecation.suppressed():
            trainer = SequentialTrainer(config)
        trainer.run(iterations=1)
        path = tmp_path / "partial.npz"
        save_checkpoint(path, TrainingCheckpoint.from_trainer(trainer))

        experiment = Experiment.from_checkpoint(path)
        assert experiment.checkpoint.iteration == 1
        result = experiment.run()
        assert result.iterations_run == 2
        assert result.iteration == 3

    def test_resume_pins_sequential_backend(self, cache_dir, tmp_path):
        from repro.coevolution.checkpoint import TrainingCheckpoint, save_checkpoint
        from repro.coevolution.sequential import SequentialTrainer

        config = make_quick_config(iterations=2)
        with _deprecation.suppressed():
            trainer = SequentialTrainer(config)
        trainer.run(iterations=1)
        path = tmp_path / "partial.npz"
        save_checkpoint(path, TrainingCheckpoint.from_trainer(trainer))

        experiment = Experiment.from_checkpoint(path)
        assert experiment.config.execution.backend == "sequential"

    def test_distributed_backend_refuses_checkpoint(self, cache_dir, tmp_path):
        from repro.coevolution.checkpoint import TrainingCheckpoint, save_checkpoint
        from repro.coevolution.sequential import SequentialTrainer

        config = make_quick_config(iterations=2)
        with _deprecation.suppressed():
            trainer = SequentialTrainer(config)
        trainer.run(iterations=1)
        path = tmp_path / "partial.npz"
        save_checkpoint(path, TrainingCheckpoint.from_trainer(trainer))

        experiment = Experiment.from_checkpoint(path).backend("threaded")
        with pytest.raises(ValueError, match="resume"):
            experiment.run()
