"""Arena invariants: slab-backed views, fused optimizers, aliasing rules.

The whole genome hot path rests on a handful of structural guarantees
(see :mod:`repro.nn.arena`): parameters stay bound to slab views through
every mutation, borrowed vectors alias the live slab, copies never do, and
checkpoints round-trip bit-exactly through the arena.
"""

import pickle

import numpy as np
import pytest

from repro.config import NetworkSettings, default_config
from repro.coevolution.checkpoint import (
    TrainingCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.coevolution.genome import Genome, genome_from_network
from repro.gan.networks import Discriminator, Generator
from repro.nn import (
    Linear,
    Sequential,
    Tanh,
    arena_of,
    attach_arena,
    optimizer_by_name,
    parameters_to_vector,
    vector_to_parameters,
)
from repro.nn.serialize import load_state_dict, state_dict

SMALL = NetworkSettings(latent_size=4, hidden_layers=2, hidden_neurons=8,
                        output_neurons=9)


def small_generator(seed: int = 0) -> Generator:
    return Generator(SMALL, np.random.default_rng(seed))


class TestAttachment:
    def test_networks_attach_at_construction(self):
        rng = np.random.default_rng(0)
        assert arena_of(Generator(SMALL, rng)) is not None
        assert arena_of(Discriminator(SMALL, rng)) is not None

    def test_params_become_slab_views_with_identical_values(self):
        rng = np.random.default_rng(1)
        bare = Sequential(Linear(3, 4, rng), Tanh(), Linear(4, 2, rng))
        before = {name: p.data.copy() for name, p in bare.named_parameters()}
        arena = attach_arena(bare)
        assert arena_of(bare) is arena
        offset = 0
        for name, p in bare.named_parameters():
            assert p.data.base is arena.data
            np.testing.assert_array_equal(p.data, before[name])
            np.testing.assert_array_equal(
                arena.data[offset:offset + p.size], before[name].ravel())
            offset += p.size
        assert offset == arena.size

    def test_attach_is_idempotent(self):
        net = small_generator()
        assert attach_arena(net) is arena_of(net)

    def test_attach_without_parameters_rejected(self):
        with pytest.raises(ValueError, match="without parameters"):
            attach_arena(Tanh())


class TestSerializeFastPaths:
    def test_out_buffer_is_reused(self):
        net = small_generator()
        buf = np.empty(arena_of(net).size, dtype=np.float64)
        result = parameters_to_vector(net, out=buf)
        assert result is buf
        np.testing.assert_array_equal(buf, arena_of(net).data)

    def test_alias_returns_live_slab(self):
        net = small_generator()
        vec = parameters_to_vector(net, alias=True)
        assert vec is arena_of(net).data
        # Mutating a parameter is visible through the borrowed vector.
        net.parameters()[0].data[...] = 42.0
        assert (vec[: net.parameters()[0].size] == 42.0).all()

    def test_default_is_a_copy(self):
        net = small_generator()
        vec = parameters_to_vector(net)
        assert not np.shares_memory(vec, arena_of(net).data)

    def test_vector_to_parameters_is_one_slab_write(self):
        net = small_generator()
        vec = np.arange(arena_of(net).size, dtype=np.float64)
        vector_to_parameters(vec, net)
        np.testing.assert_array_equal(arena_of(net).data, vec)
        # Self-assignment of the borrowed slab is a no-op, not an error.
        vector_to_parameters(parameters_to_vector(net, alias=True), net)
        np.testing.assert_array_equal(arena_of(net).data, vec)

    def test_state_dict_never_aliases_the_slab(self):
        net = small_generator()
        for name, value in state_dict(net).items():
            assert not np.shares_memory(value, arena_of(net).data), name

    def test_load_state_dict_preserves_arena_backing(self):
        net, donor = small_generator(0), small_generator(5)
        arena = arena_of(net)
        ids = [id(p.data) for p in net.parameters()]
        load_state_dict(net, state_dict(donor))
        assert [id(p.data) for p in net.parameters()] == ids
        np.testing.assert_array_equal(arena.data, arena_of(donor).data)


class TestFusedOptimizers:
    @pytest.mark.parametrize("name", ["adam", "sgd", "rmsprop"])
    def test_fused_step_matches_legacy_bit_exactly(self, name):
        fused_net, legacy_net = small_generator(3), small_generator(3)
        arena = arena_of(fused_net)
        fused = optimizer_by_name(name, fused_net.parameters(), 1e-3, arena=arena)
        legacy = optimizer_by_name(name, legacy_net.parameters(), 1e-3)
        rng = np.random.default_rng(11)
        for _ in range(5):
            grad = rng.standard_normal(arena.size)
            arena.grad[...] = grad
            offset = 0
            for p in legacy_net.parameters():
                p.grad = grad[offset:offset + p.size].reshape(p.data.shape).copy()
                offset += p.size
            fused.step()
            legacy.step()
        np.testing.assert_array_equal(
            arena.data, parameters_to_vector(legacy_net))

    def test_step_mutates_views_in_place_without_rebinding(self):
        net = small_generator(4)
        arena = arena_of(net)
        opt = optimizer_by_name("adam", net.parameters(), 1e-3, arena=arena)
        ids = [(id(p.data), id(p.grad)) for p in net.parameters()]
        arena.grad[...] = 1.0
        opt.step()
        assert [(id(p.data), id(p.grad)) for p in net.parameters()] == ids
        for p in net.parameters():
            assert p.data.base is arena.data
            assert p.grad.base is arena.grad

    def test_zero_grad_fused_fill(self):
        net = small_generator(6)
        arena = arena_of(net)
        opt = optimizer_by_name("adam", net.parameters(), 1e-3, arena=arena)
        arena.grad[...] = 3.0
        opt.zero_grad()
        assert (arena.grad == 0.0).all()
        arena.grad[...] = 2.0
        net.zero_grad()  # the module-level fast path hits the same slab
        assert (arena.grad == 0.0).all()

    def test_wrong_arena_rejected_loudly(self):
        net, other = small_generator(0), small_generator(1)
        with pytest.raises(ValueError, match="does not back"):
            optimizer_by_name("adam", net.parameters(), 1e-3,
                              arena=arena_of(other))

    def test_ensure_grads_adopts_accumulated_gradients(self):
        net = small_generator(7)
        p = net.parameters()[0]
        p.grad = np.full(p.data.shape, 5.0)
        arena = arena_of(net)
        arena.ensure_grads()
        assert p.grad.base is arena.grad
        assert (p.grad == 5.0).all()

    def test_fused_state_snapshot_roundtrip(self):
        net = small_generator(8)
        arena = arena_of(net)
        opt = optimizer_by_name("adam", net.parameters(), 1e-3, arena=arena)
        arena.grad[...] = 1.5
        opt.step()
        snapshot = opt.state_arrays()
        twin = optimizer_by_name("adam", net.parameters(), 1e-3, arena=arena)
        twin.load_state_arrays(snapshot)
        assert twin.t == opt.t
        np.testing.assert_array_equal(twin._m_flat, opt._m_flat)
        np.testing.assert_array_equal(twin._v_flat, opt._v_flat)


class TestGenomeContract:
    def test_contiguous_float64_is_adopted_without_copy(self):
        vec = np.arange(10.0)
        genome = Genome(vec, 1e-3, "bce")
        assert genome.parameters is vec

    def test_non_contiguous_input_normalized_with_one_copy(self):
        strided = np.arange(20.0)[::2]
        assert not strided.flags.c_contiguous
        genome = Genome(strided, 1e-3, "bce")
        assert genome.parameters.flags.c_contiguous
        np.testing.assert_array_equal(genome.parameters, strided)

    def test_alias_snapshot_borrows_the_arena(self):
        net = small_generator()
        genome = genome_from_network(net, 1e-3, "bce", alias=True)
        assert genome.parameters is arena_of(net).data
        copied = genome_from_network(net, 1e-3, "bce")
        assert not np.shares_memory(copied.parameters, arena_of(net).data)


class TestCheckpointRoundTrip:
    def test_bit_exact_through_the_arena(self, tmp_path):
        config = default_config().scaled(iterations=2, dataset_size=100)
        rng = np.random.default_rng(13)
        cells = config.coevolution.cells
        nets = [(Generator(config.network, rng), Discriminator(config.network, rng))
                for _ in range(cells)]
        genomes = [
            (genome_from_network(g, 1e-3, "bce"), genome_from_network(d, 1e-3, "bce"))
            for g, d in nets
        ]
        checkpoint = TrainingCheckpoint(
            config=config, iteration=1, center_genomes=genomes,
            mixture_weights=[np.full(5, 0.2)] * cells,
        )
        path = tmp_path / "arena.npz"
        save_checkpoint(path, checkpoint)
        restored = load_checkpoint(path)
        for (g0, d0), (g1, d1) in zip(genomes, restored.center_genomes):
            np.testing.assert_array_equal(g0.parameters, g1.parameters)
            np.testing.assert_array_equal(d0.parameters, d1.parameters)
        # Writing a restored genome back lands in the target's slab.
        target = Generator(config.network, np.random.default_rng(99))
        restored.center_genomes[0][0].write_into(target)
        np.testing.assert_array_equal(
            arena_of(target).data, genomes[0][0].parameters)


class TestPicklingSafety:
    def test_unpickled_network_falls_back_without_an_arena(self):
        net = small_generator(2)
        clone = pickle.loads(pickle.dumps(net))
        assert arena_of(clone) is None
        np.testing.assert_array_equal(
            parameters_to_vector(clone), parameters_to_vector(net))
        # The fallback loop still round-trips writes.
        vec = np.arange(arena_of(net).size, dtype=np.float64)
        vector_to_parameters(vec, clone)
        np.testing.assert_array_equal(parameters_to_vector(clone), vec)
