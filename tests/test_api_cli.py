"""CLI ↔ facade integration: default drift, the config subcommand, routing."""

import json

import pytest

from repro.cli import build_parser, main
from repro.config import ExperimentConfig, default_config


class TestDefaultDrift:
    """Regression for the --batches-per-iteration 3-vs-4 drift: every run
    default must come from default_config(), the single source of truth."""

    def test_run_defaults_match_default_config(self):
        args = build_parser().parse_args(["run"])
        defaults = default_config()
        assert args.grid == defaults.coevolution.grid_size
        assert args.backend == defaults.execution.backend
        assert args.iterations == defaults.coevolution.iterations
        assert args.dataset_size == defaults.dataset_size
        assert args.batch_size == defaults.training.batch_size
        assert args.batches_per_iteration == defaults.training.batches_per_iteration
        assert args.seed == defaults.seed
        assert args.loss == defaults.training.loss_function

    def test_default_flags_resolve_to_default_config(self, capsys):
        assert main(["config"]) == 0
        printed = json.loads(capsys.readouterr().out)
        assert ExperimentConfig.from_dict(printed) == default_config()

    def test_choices_come_from_registries(self):
        from repro.registry import BACKENDS, LOSSES

        parser = build_parser()
        for backend in BACKENDS.known():
            assert parser.parse_args(["run", "--backend", backend]).backend == backend
        for loss in LOSSES.known() | {"mustangs"}:
            assert parser.parse_args(["run", "--loss", loss]).loss == loss


class TestConfigSubcommand:
    def test_prints_resolved_flags(self, capsys):
        assert main(["config", "--grid", "3x3", "--seed", "7",
                     "--loss", "mse", "--backend", "sequential"]) == 0
        config = ExperimentConfig.from_json(capsys.readouterr().out)
        assert config.coevolution.grid_size == (3, 3)
        assert config.execution.number_of_tasks == 10
        assert config.seed == 7
        assert config.training.loss_function == "mse"
        assert config.execution.backend == "sequential"

    def test_from_json_round_trips(self, capsys, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(default_config(3, 3, seed=5).to_json())
        assert main(["config", "--from-json", str(path)]) == 0
        assert (ExperimentConfig.from_json(capsys.readouterr().out)
                == default_config(3, 3, seed=5))

    def test_unknown_key_exits_nonzero(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"bogus": 1}')
        assert main(["config", "--from-json", str(path)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_invalid_value_exits_nonzero(self, capsys, tmp_path):
        config = json.loads(default_config().to_json())
        config["seed"] = -1
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(config))
        assert main(["config", "--from-json", str(path)]) == 2
        assert "seed" in capsys.readouterr().err

    def test_missing_file_exits_nonzero(self, capsys, tmp_path):
        assert main(["config", "--from-json", str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err


class TestRunRoutesThroughApi:
    def test_run_distributed_checkpoint_now_supported(self, capsys, cache_dir,
                                                      tmp_path):
        """Pre-facade the CLI refused --checkpoint on distributed runs."""
        from repro.coevolution.checkpoint import load_checkpoint

        ckpt = str(tmp_path / "dist.npz")
        code = main([
            "run", "--grid", "2x2", "--backend", "threaded",
            "--iterations", "1", "--dataset-size", "200",
            "--batch-size", "20", "--batches-per-iteration", "1",
            "--checkpoint", ckpt,
        ])
        assert code == 0
        assert "checkpoint written" in capsys.readouterr().out
        assert load_checkpoint(ckpt).iteration == 1

    def test_run_streams_metrics_jsonl(self, capsys, cache_dir, tmp_path):
        path = tmp_path / "metrics.jsonl"
        code = main([
            "run", "--grid", "2x2", "--backend", "sequential",
            "--iterations", "2", "--dataset-size", "200",
            "--batch-size", "20", "--batches-per-iteration", "1",
            "--metrics-jsonl", str(path),
        ])
        assert code == 0
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["event"] for e in events] == [
            "run_start", "iteration", "iteration", "run_end"]

    def test_run_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "quantum"])

    def test_run_dataset_flag(self, capsys, cache_dir):
        code = main([
            "run", "--grid", "2x2", "--backend", "sequential",
            "--iterations", "1", "--dataset-size", "200",
            "--batch-size", "20", "--batches-per-iteration", "1",
            "--dataset", "synthetic-mnist",
        ])
        assert code == 0
