"""Tests for parameter flattening (the genome representation)."""

import numpy as np
import pytest

from repro.nn import (
    Linear,
    Sequential,
    Tanh,
    count_parameters,
    load_state_dict,
    parameters_to_vector,
    state_dict,
    vector_to_parameters,
)
from repro.nn.autograd import Tensor


@pytest.fixture()
def net(rng):
    return Sequential(Linear(3, 5, rng), Tanh(), Linear(5, 2, rng))


class TestVector:
    def test_count(self, net):
        assert count_parameters(net) == 3 * 5 + 5 + 5 * 2 + 2

    def test_roundtrip_identity(self, net, rng):
        batch = Tensor(rng.normal(size=(2, 3)))
        vec = parameters_to_vector(net)
        out_before = net(batch).numpy().copy()
        vector_to_parameters(vec, net)
        np.testing.assert_array_equal(net(batch).numpy(), out_before)
        vec2 = parameters_to_vector(net)
        np.testing.assert_array_equal(vec, vec2)
        del out_before

    def test_transplant_between_networks(self, rng):
        a = Sequential(Linear(3, 4, rng), Linear(4, 1, rng))
        b = Sequential(Linear(3, 4, rng), Linear(4, 1, rng))
        x = rng.normal(size=(5, 3))
        vector_to_parameters(parameters_to_vector(a), b)
        np.testing.assert_allclose(a(Tensor(x)).numpy(), b(Tensor(x)).numpy())

    def test_preallocated_buffer(self, net):
        buf = np.empty(count_parameters(net))
        out = parameters_to_vector(net, out=buf)
        assert out is buf

    def test_buffer_wrong_shape_rejected(self, net):
        with pytest.raises(ValueError):
            parameters_to_vector(net, out=np.empty(3))

    def test_vector_wrong_shape_rejected(self, net):
        with pytest.raises(ValueError):
            vector_to_parameters(np.zeros(3), net)

    def test_write_is_in_place(self, net):
        params_before = [p.data for p in net.parameters()]
        vector_to_parameters(np.zeros(count_parameters(net)), net)
        for before, param in zip(params_before, net.parameters()):
            assert param.data is before  # same buffer, mutated
            assert np.all(param.data == 0)


class TestStateDict:
    def test_roundtrip(self, net, rng):
        state = state_dict(net)
        x = rng.normal(size=(2, 3))
        expected = net(Tensor(x)).numpy().copy()
        # Perturb, then restore.
        vector_to_parameters(np.zeros(count_parameters(net)), net)
        load_state_dict(net, state)
        np.testing.assert_allclose(net(Tensor(x)).numpy(), expected)

    def test_state_dict_copies(self, net):
        state = state_dict(net)
        first = next(iter(state))
        state[first][...] = 123.0
        assert not np.any(dict(net.named_parameters())[first].data == 123.0)

    def test_missing_key_rejected(self, net):
        state = state_dict(net)
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            load_state_dict(net, state)

    def test_unexpected_key_rejected(self, net):
        state = state_dict(net)
        state["bogus"] = np.zeros(2)
        with pytest.raises(KeyError):
            load_state_dict(net, state)

    def test_shape_mismatch_rejected(self, net):
        state = state_dict(net)
        first = next(iter(state))
        state[first] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            load_state_dict(net, state)
