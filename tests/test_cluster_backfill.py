"""Tests for the scheduler's backfill mode."""


from repro.cluster import BestEffortScheduler, ResourceRequest, cluster_uy
from repro.cluster.scheduler import JobState


def big_request(time_limit=10.0):
    return ResourceRequest(tasks=40, memory_mb_per_task=100, time_limit_hours=time_limit)


def small_request(time_limit=10.0):
    return ResourceRequest(tasks=1, memory_mb_per_task=100, time_limit_hours=time_limit)


class TestBackfill:
    def test_backfill_lets_small_job_jump(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1), backfill=True)
        running = scheduler.submit(big_request(), runtime_hours=5.0)
        blocked = scheduler.submit(big_request(), runtime_hours=1.0)
        small = scheduler.submit(small_request(), runtime_hours=1.0)
        assert running.state is JobState.RUNNING
        assert blocked.state is JobState.PENDING
        # Without backfill this stays pending (see test_cluster.py); with
        # backfill the one-core job starts... but the node is fully
        # occupied by the big job, so it still cannot.
        assert small.state is JobState.PENDING

    def test_backfill_uses_leftover_cores(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1), backfill=True)
        # 30 cores used; head job needs 40 and blocks; small job fits in 10.
        first = scheduler.submit(
            ResourceRequest(tasks=30, memory_mb_per_task=100, time_limit_hours=10),
            runtime_hours=5.0,
        )
        head = scheduler.submit(big_request(), runtime_hours=1.0)
        small = scheduler.submit(small_request(), runtime_hours=1.0)
        assert first.state is JobState.RUNNING
        assert head.state is JobState.PENDING
        assert small.state is JobState.RUNNING  # backfilled

    def test_fifo_mode_never_backfills(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1), backfill=False)
        scheduler.submit(
            ResourceRequest(tasks=30, memory_mb_per_task=100, time_limit_hours=10),
            runtime_hours=5.0,
        )
        head = scheduler.submit(big_request(), runtime_hours=1.0)
        small = scheduler.submit(small_request(), runtime_hours=1.0)
        assert head.state is JobState.PENDING
        assert small.state is JobState.PENDING

    def test_backfilled_job_completes_and_head_eventually_runs(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1), backfill=True)
        first = scheduler.submit(
            ResourceRequest(tasks=30, memory_mb_per_task=100, time_limit_hours=10),
            runtime_hours=2.0,
        )
        head = scheduler.submit(big_request(), runtime_hours=1.0)
        small = scheduler.submit(small_request(), runtime_hours=0.5)
        scheduler.advance(0.5)
        assert small.state is JobState.COMPLETED
        scheduler.advance(1.5)  # first finishes at t=2.0
        assert first.state is JobState.COMPLETED
        assert head.state is JobState.RUNNING
        scheduler.advance(1.0)
        assert head.state is JobState.COMPLETED

    def test_backfill_preserves_resource_accounting(self):
        platform = cluster_uy(servers=1)
        scheduler = BestEffortScheduler(platform, backfill=True)
        scheduler.submit(
            ResourceRequest(tasks=30, memory_mb_per_task=100, time_limit_hours=10),
            runtime_hours=1.0,
        )
        scheduler.submit(big_request(), runtime_hours=1.0)
        scheduler.submit(small_request(), runtime_hours=1.0)
        # 30 + 1 backfilled = 31 cores busy.
        assert platform.free_cores == 9
        scheduler.advance(10.0)
        assert platform.free_cores == 40
