"""The runtime concurrency checker: lock-order cycles, watchdog, aliases.

These tests install the checker explicitly (no ``REPRO_LOCKCHECK`` needed)
and drain every violation they seed, so the suite-wide autouse gate in
``conftest.py`` stays green.
"""

import threading
import time

import numpy as np
import pytest

from repro.analysis import lockcheck
from repro.config import NetworkSettings


@pytest.fixture()
def checker():
    """The checker installed for one test, with guaranteed restore."""
    already = lockcheck.installed()
    lockcheck.install(watchdog_s=30.0)
    try:
        yield lockcheck
    finally:
        lockcheck.clear_violations()
        if not already:    # REPRO_LOCKCHECK=1 runs keep the global install
            lockcheck.uninstall()
        lockcheck.reset()


# -- install/uninstall ------------------------------------------------------

def test_install_patches_and_uninstall_restores():
    already = lockcheck.installed()
    before = threading.Lock
    lockcheck.install()
    try:
        assert lockcheck.installed()
    finally:
        if not already:
            lockcheck.uninstall()
            lockcheck.reset()
    if not already:
        assert threading.Lock is before
        assert not lockcheck.installed()


def test_annotations_are_noops_when_off():
    if lockcheck.installed():
        pytest.skip("checker globally installed (REPRO_LOCKCHECK=1 run)")
    lock = threading.Lock()
    lockcheck.check_owned(lock, "anything")
    lockcheck.register_alias(np.zeros(3), "anything")
    lockcheck.check_no_alias({"x": np.zeros(3)}, "anything")
    assert lockcheck.violation_count() == 0


# -- lock-order (ABBA) ------------------------------------------------------

def test_seeded_abba_ordering_is_detected(checker):
    """Acquiring A->B then B->A is the deadlock shape, caught at the edge
    that closes the cycle — before any thread actually blocks."""
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with lock_a:      # closes the cycle
            pass
    kinds = [v.kind for v in lockcheck.clear_violations()]
    assert "lock-order" in kinds


def test_consistent_ordering_is_clean(checker):
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    for _ in range(3):
        with lock_a:
            with lock_b:
                pass
    assert not lockcheck.violations()


def test_trylock_adds_no_edges(checker):
    """Non-blocking acquires cannot deadlock; inverting order via trylock
    must not be reported."""
    lock_a = threading.Lock()
    lock_b = threading.Lock()
    with lock_a:
        assert lock_b.acquire(blocking=False)
        lock_b.release()
    with lock_b:
        assert lock_a.acquire(blocking=False)
        lock_a.release()
    assert not lockcheck.violations()


def test_three_lock_cycle_is_detected(checker):
    a, b, c = threading.Lock(), threading.Lock(), threading.Lock()
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with c:
        with a:
            pass
    violations = lockcheck.clear_violations()
    assert any(v.kind == "lock-order" for v in violations)


def test_rlock_reentrancy_is_not_a_cycle(checker):
    rlock = threading.RLock()
    with rlock:
        with rlock:
            pass
    assert not lockcheck.violations()


def test_condition_wait_notify_roundtrip(checker):
    """Conditions keep full wait/notify semantics under instrumentation."""
    cond = threading.Condition()
    ready = []

    def waiter():
        with cond:
            cond.wait(timeout=10)
            ready.append(1)

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)
    with cond:
        cond.notify_all()
    thread.join(timeout=10)
    assert ready == [1]
    assert not lockcheck.violations()


# -- blocked-wait watchdog --------------------------------------------------

def test_watchdog_dumps_on_long_block(checker):
    lockcheck.install(watchdog_s=0.3)   # tighten the installed threshold
    lock = threading.Lock()
    held = threading.Event()
    release = threading.Event()

    def holder():
        with lock:
            held.set()
            release.wait(timeout=10)

    def blocker():
        with lock:
            pass

    holder_t = threading.Thread(target=holder)
    holder_t.start()
    assert held.wait(timeout=10)
    blocker_t = threading.Thread(target=blocker)
    blocker_t.start()
    time.sleep(0.8)                      # long enough to trip the watchdog
    release.set()
    blocker_t.join(timeout=10)
    holder_t.join(timeout=10)
    violations = lockcheck.clear_violations()
    blocked = [v for v in violations if v.kind == "blocked-wait"]
    assert blocked
    assert "all-thread dump" in blocked[0].message
    assert blocked[0].stack                     # the annotated stack dump


# -- guarded-mutation annotations -------------------------------------------

def test_check_owned_flags_unheld_lock(checker):
    lock = threading.Lock()
    lockcheck.check_owned(lock, "fixture buffer")
    violations = lockcheck.clear_violations()
    assert [v.kind for v in violations] == ["unguarded-mutation"]
    assert "fixture buffer" in violations[0].message


def test_check_owned_passes_under_lock(checker):
    lock = threading.Lock()
    with lock:
        lockcheck.check_owned(lock, "fixture buffer")
    cond = threading.Condition()
    with cond:
        lockcheck.check_owned(cond, "fixture buffer")
    assert not lockcheck.violations()


# -- alias tracking ---------------------------------------------------------

def test_cross_thread_alias_use_is_detected(checker):
    vector = np.zeros(8)
    lockcheck.register_alias(vector, "test-arena-slab")

    worker = threading.Thread(
        target=lockcheck.check_alias_use, args=(vector, "background reader"))
    worker.start()
    worker.join(timeout=10)

    violations = lockcheck.clear_violations()
    escapes = [v for v in violations if v.kind == "alias-escape"]
    assert escapes
    assert "test-arena-slab" in escapes[0].message


def test_same_thread_alias_use_is_fine(checker):
    vector = np.zeros(8)
    lockcheck.register_alias(vector, "test-arena-slab")
    lockcheck.check_alias_use(vector, "borrowing thread")
    assert not lockcheck.violations()


def test_alias_inside_payload_is_detected(checker):
    vector = np.zeros(8)
    lockcheck.register_alias(vector, "test-arena-slab")
    payload = {"genome": (vector, 2e-4), "iteration": 3}
    lockcheck.check_no_alias(payload, "Endpoint.send_to")
    violations = lockcheck.clear_violations()
    assert any(v.kind == "alias-escape" for v in violations)


def test_copies_pass_the_payload_check(checker):
    vector = np.zeros(8)
    lockcheck.register_alias(vector, "test-arena-slab")
    lockcheck.check_no_alias({"genome": vector.copy()}, "Endpoint.send_to")
    assert not lockcheck.violations()


def test_collected_alias_expires(checker):
    vector = np.zeros(8)
    lockcheck.register_alias(vector, "short-lived")
    del vector
    replacement = np.zeros(8)    # may reuse the id; must not false-positive
    lockcheck.check_no_alias({"genome": replacement}, "send")
    assert not lockcheck.violations()


def test_parameters_to_vector_registers_the_borrow(checker):
    """The real alias producer feeds the tracker: an alias=True borrow
    crossing a thread is reported, a copy is not."""
    from repro.gan.networks import Generator
    from repro.nn.serialize import parameters_to_vector

    small = NetworkSettings(latent_size=4, hidden_layers=2, hidden_neurons=8,
                            output_neurons=9)
    network = Generator(small, np.random.default_rng(0))
    borrowed = parameters_to_vector(network, alias=True)

    worker = threading.Thread(
        target=lockcheck.check_alias_use, args=(borrowed, "sender thread"))
    worker.start()
    worker.join(timeout=10)
    assert any(v.kind == "alias-escape"
               for v in lockcheck.clear_violations())

    copied = parameters_to_vector(network)
    lockcheck.check_no_alias({"genome": copied}, "send")
    assert not lockcheck.violations()
