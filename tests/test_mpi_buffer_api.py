"""Tests for the buffer-style (uppercase) API, sendrecv, and alltoall."""

import numpy as np
import pytest

from repro.mpi import run_mpi

BACKENDS = ("threaded", "process")


def _send_recv_buffer(comm):
    rank = comm.Get_rank()
    if rank == 0:
        comm.Send(np.arange(6, dtype=np.float64).reshape(2, 3), dest=1, tag=3)
        return None
    buffer = np.empty((2, 3), dtype=np.float64)
    comm.Recv(buffer, source=0, tag=3)
    return buffer.sum()


def _recv_shape_mismatch(comm):
    rank = comm.Get_rank()
    if rank == 0:
        comm.Send(np.zeros(4), dest=1, tag=1)
        return True
    buffer = np.empty(5)
    with pytest.raises(ValueError, match="buffer mismatch"):
        comm.Recv(buffer, source=0, tag=1)
    return True


def _bcast_in_place(comm):
    rank = comm.Get_rank()
    buffer = np.arange(4, dtype=np.float64) if rank == 0 else np.zeros(4)
    comm.Bcast(buffer, root=0)
    return buffer.tolist()


def _allgather_buffer(comm):
    rank = comm.Get_rank()
    send = np.full(3, float(rank))
    recv = np.empty((comm.Get_size(), 3))
    comm.Allgather(send, recv)
    return recv[:, 0].tolist()


def _allgather_bad_recvbuf(comm):
    send = np.zeros(3)
    recv = np.empty((2, 3))  # size is 3 -> wrong leading dim
    with pytest.raises(ValueError, match="recvbuf"):
        comm.Allgather(send, recv)
    return True


def _ring_sendrecv(comm):
    rank, size = comm.Get_rank(), comm.Get_size()
    right = (rank + 1) % size
    left = (rank - 1) % size
    # Everyone sends right and receives from left simultaneously — the
    # combined call cannot deadlock.
    return comm.sendrecv(f"token-{rank}", dest=right, source=left,
                         sendtag=2, recvtag=2)


def _alltoall(comm):
    rank, size = comm.Get_rank(), comm.Get_size()
    outgoing = [f"{rank}->{dest}" for dest in range(size)]
    return comm.alltoall(outgoing)


def _alltoall_bad_arity(comm):
    with pytest.raises(ValueError, match="alltoall"):
        comm.alltoall([1])
    return True


@pytest.mark.parametrize("backend", BACKENDS)
class TestBufferApi:
    def test_send_recv_into_buffer(self, backend):
        results = run_mpi(2, _send_recv_buffer, backend=backend, timeout=60)
        assert results[1] == pytest.approx(15.0)

    def test_bcast_in_place(self, backend):
        results = run_mpi(3, _bcast_in_place, backend=backend, timeout=60)
        assert all(r == [0.0, 1.0, 2.0, 3.0] for r in results)

    def test_allgather_into_recvbuf(self, backend):
        results = run_mpi(3, _allgather_buffer, backend=backend, timeout=60)
        assert all(r == [0.0, 1.0, 2.0] for r in results)


class TestBufferValidation:
    def test_recv_shape_mismatch(self):
        assert all(run_mpi(2, _recv_shape_mismatch, backend="threaded", timeout=30))

    def test_allgather_recvbuf_shape(self):
        assert all(run_mpi(3, _allgather_bad_recvbuf, backend="threaded", timeout=30))


@pytest.mark.parametrize("backend", BACKENDS)
class TestSendrecvAlltoall:
    def test_ring_shift(self, backend):
        results = run_mpi(4, _ring_sendrecv, backend=backend, timeout=60)
        assert results == [f"token-{(r - 1) % 4}" for r in range(4)]

    def test_alltoall_personalized(self, backend):
        results = run_mpi(3, _alltoall, backend=backend, timeout=60)
        for rank, received in enumerate(results):
            assert received == [f"{src}->{rank}" for src in range(3)]

    def test_alltoall_arity(self, backend):
        assert all(run_mpi(2, _alltoall_bad_arity, backend=backend, timeout=30))


class TestBufferReusePattern:
    def test_preallocated_buffer_across_rounds(self):
        """The genome-exchange pattern: one buffer reused per iteration."""

        def program(comm):
            rank = comm.Get_rank()
            buffer = np.empty(8)
            sums = []
            for round_no in range(5):
                if rank == 0:
                    comm.Send(np.full(8, float(round_no)), dest=1, tag=round_no)
                else:
                    comm.Recv(buffer, source=0, tag=round_no)
                    sums.append(buffer.sum())
            return sums

        results = run_mpi(2, program, backend="threaded", timeout=30)
        assert results[1] == [0.0, 8.0, 16.0, 24.0, 32.0]
