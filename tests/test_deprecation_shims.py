"""The old entry points warn once, keep working, and stay silent via the facade."""

import warnings

import numpy as np
import pytest

from repro import DistributedRunner, SequentialTrainer, _deprecation
from repro.api import Experiment

from tests.conftest import make_quick_config


@pytest.fixture(autouse=True)
def fresh_warning_state():
    """Each test observes the warning as if the process had just started."""
    _deprecation.reset()
    yield
    _deprecation.reset()


class TestSequentialTrainerShim:
    def test_direct_use_warns_once(self, cache_dir):
        config = make_quick_config(iterations=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            SequentialTrainer(config)
            SequentialTrainer(config)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "Experiment" in str(deprecations[0].message)

    def test_behavior_unchanged(self, cache_dir):
        """The warning is cosmetic: direct runs still match the facade."""
        config = make_quick_config(iterations=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            direct = SequentialTrainer(config).run()
        facade = Experiment(config).backend("sequential").run()
        for (a, _), (b, _) in zip(direct.center_genomes, facade.center_genomes):
            assert np.array_equal(a.parameters, b.parameters)


class TestDistributedRunnerShim:
    def test_direct_use_warns_once(self, cache_dir):
        config = make_quick_config(iterations=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DistributedRunner(config, backend="threaded")
            DistributedRunner(config, backend="threaded")
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "Experiment" in str(deprecations[0].message)

    def test_behavior_unchanged(self, cache_dir):
        config = make_quick_config(iterations=1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            direct = DistributedRunner(config, backend="threaded").run()
        facade = Experiment(config).backend("threaded").run()
        for (a, _), (b, _) in zip(direct.training.center_genomes,
                                  facade.center_genomes):
            assert np.array_equal(a.parameters, b.parameters)


class TestFacadeStaysSilent:
    def test_facade_never_warns(self, cache_dir):
        config = make_quick_config(iterations=1)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            Experiment(config).backend("sequential").run()
            Experiment(config).backend("threaded").run()

    def test_suppression_does_not_eat_the_next_direct_use(self, cache_dir):
        config = make_quick_config(iterations=1)
        Experiment(config).backend("sequential").run()  # suppressed path
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            SequentialTrainer(config)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
