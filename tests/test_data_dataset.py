"""Tests for ArrayDataset / DataLoader / split and the transforms."""

import numpy as np
import pytest

from repro.data.dataset import ArrayDataset, DataLoader, train_test_split
from repro.data.transforms import flatten_images, from_tanh_range, to_tanh_range


@pytest.fixture()
def dataset(rng):
    return ArrayDataset(rng.normal(size=(50, 8)), rng.integers(0, 10, size=50))


class TestArrayDataset:
    def test_len_and_getitem(self, dataset):
        assert len(dataset) == 50
        image, label = dataset[3]
        assert image.shape == (8,)

    def test_without_labels(self, rng):
        ds = ArrayDataset(rng.normal(size=(5, 3)))
        assert ds[2].shape == (3,)

    def test_label_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            ArrayDataset(rng.normal(size=(5, 3)), np.zeros(4))

    def test_subset(self, dataset):
        sub = dataset.subset(np.array([0, 2, 4]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.images[1], dataset.images[2])


class TestDataLoader:
    def test_batch_shapes(self, dataset, rng):
        loader = DataLoader(dataset, 16, rng)
        batches = list(loader)
        assert len(batches) == len(loader) == 3  # 50 // 16, drop_last
        assert all(b.shape == (16, 8) for b in batches)

    def test_drop_last_false_keeps_tail(self, dataset, rng):
        loader = DataLoader(dataset, 16, rng, drop_last=False)
        batches = list(loader)
        assert len(batches) == 4
        assert batches[-1].shape[0] == 2

    def test_shuffle_covers_everything(self, dataset, rng):
        loader = DataLoader(dataset, 10, rng)
        seen = np.concatenate(list(loader))
        assert seen.shape[0] == 50
        # Every original row appears exactly once.
        original = np.sort(dataset.images.sum(axis=1))
        np.testing.assert_allclose(np.sort(seen.sum(axis=1)), original)

    def test_epochs_reshuffle(self, dataset):
        loader = DataLoader(dataset, 25, np.random.default_rng(0))
        first = np.concatenate(list(loader))
        second = np.concatenate(list(loader))
        assert np.abs(first - second).max() > 0

    def test_no_shuffle_preserves_order(self, dataset, rng):
        loader = DataLoader(dataset, 10, rng, shuffle=False)
        first = next(iter(loader))
        np.testing.assert_array_equal(first, dataset.images[:10])

    def test_deterministic_given_rng(self, dataset):
        a = np.concatenate(list(DataLoader(dataset, 10, np.random.default_rng(4))))
        b = np.concatenate(list(DataLoader(dataset, 10, np.random.default_rng(4))))
        np.testing.assert_array_equal(a, b)

    def test_batches_with_labels(self, dataset, rng):
        loader = DataLoader(dataset, 10, rng)
        images, labels = next(loader.batches_with_labels())
        assert images.shape == (10, 8) and labels.shape == (10,)

    def test_batches_with_labels_requires_labels(self, rng):
        ds = ArrayDataset(rng.normal(size=(20, 3)))
        loader = DataLoader(ds, 5, rng)
        with pytest.raises(ValueError):
            next(loader.batches_with_labels())

    def test_batch_larger_than_dataset_rejected(self, dataset, rng):
        with pytest.raises(ValueError):
            DataLoader(dataset, 51, rng)

    def test_bad_batch_size(self, dataset, rng):
        with pytest.raises(ValueError):
            DataLoader(dataset, 0, rng)


class TestSplit:
    def test_sizes(self, dataset, rng):
        train, test = train_test_split(dataset, 1 / 7, rng)
        assert len(test) == round(50 / 7)
        assert len(train) + len(test) == 50

    def test_disjoint(self, dataset, rng):
        train, test = train_test_split(dataset, 0.2, rng)
        train_keys = {row.tobytes() for row in train.images}
        test_keys = {row.tobytes() for row in test.images}
        assert not train_keys & test_keys

    def test_bad_fraction(self, dataset, rng):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                train_test_split(dataset, bad, rng)


class TestTransforms:
    def test_tanh_range_bounds(self, rng):
        x = rng.uniform(0, 1, size=(10, 4))
        y = to_tanh_range(x)
        assert y.min() >= -1 and y.max() <= 1

    def test_inverse(self, rng):
        x = rng.uniform(0, 1, size=(10, 4))
        np.testing.assert_allclose(from_tanh_range(to_tanh_range(x)), x, atol=1e-12)

    def test_flatten(self, rng):
        x = rng.normal(size=(5, 28, 28))
        assert flatten_images(x).shape == (5, 784)

    def test_flatten_noop_on_flat(self, rng):
        x = rng.normal(size=(5, 784))
        assert flatten_images(x) is x

    def test_flatten_rejects_4d(self, rng):
        with pytest.raises(ValueError):
            flatten_images(rng.normal(size=(2, 3, 4, 5)))
