"""Regression tests for the Fig. 3 trace clock discipline.

Events carry monotonic stamps plus one wall anchor per actor; merging must
order by the aligned monotonic axis, so a wall-clock step (NTP adjustment)
mid-run cannot reorder a trace.
"""

from repro.parallel.tracing import EventTrace, TraceEvent


def _skewed_actor(actor, anchor_wall, anchor_mono, steps, wall_times):
    """An actor whose wall clock reads ``wall_times`` (possibly stepped) but
    whose monotonic clock ticked ``steps`` after the anchor."""
    trace = EventTrace(actor=actor)
    trace.anchor_wall, trace.anchor_mono = anchor_wall, anchor_mono
    for step, wall in zip(steps, wall_times):
        trace.events.append(
            TraceEvent(wall, actor, f"e@{step}", mono=anchor_mono + step))
    return trace


class TestTwoSkewedActors:
    def test_merge_follows_monotonic_time_not_raw_wall_stamps(self):
        # Both actors anchor at wall=1000.  The master records at mono
        # offsets 0/2/4; the slave at 1/3/5.  Midway through, the slave's
        # wall clock is stepped back 100s by NTP — its raw stamps would
        # interleave its own events out of order and far in the past.
        master = _skewed_actor("master", 1000.0, 50.0,
                               steps=[0.0, 2.0, 4.0],
                               wall_times=[1000.0, 1002.0, 1004.0])
        slave = _skewed_actor("slave", 1000.0, 9000.0,
                              steps=[1.0, 3.0, 5.0],
                              wall_times=[1001.0, 903.0, 905.0])
        merged = EventTrace.merged([master, slave])
        assert [e.actor for e in merged] == [
            "master", "slave", "master", "slave", "master", "slave"]

    def test_constant_skew_between_monotonic_clocks_is_invisible(self):
        # Two hosts whose monotonic clocks differ by hours (different boot
        # times) but which anchored at the same wall instant: alignment
        # must land their events on one shared axis.
        a = _skewed_actor("a", 500.0, 10.0, steps=[0.0, 0.2], wall_times=[500.0, 500.2])
        b = _skewed_actor("b", 500.0, 70000.0, steps=[0.1, 0.3], wall_times=[500.1, 500.3])
        merged = EventTrace.merged([a, b])
        assert [e.actor for e in merged] == ["a", "b", "a", "b"]

    def test_format_merged_uses_aligned_times(self):
        slave = _skewed_actor("slave", 1000.0, 9000.0,
                              steps=[0.0, 1.0], wall_times=[1000.0, 901.0])
        report = EventTrace.format_merged([slave])
        first, second = report.splitlines()
        assert first.startswith("[   0.0000s]")
        assert second.startswith("[   1.0000s]")  # not -99s


class TestAnchorDiscipline:
    def test_record_captures_anchor_on_first_event(self):
        trace = EventTrace(actor="x")
        assert trace.anchor_mono == 0.0
        trace.record("first")
        assert trace.anchor_mono > 0.0
        assert trace.anchor_wall == trace.events[0].at
        assert trace.anchor_mono == trace.events[0].mono

    def test_anchor_recovered_from_shipped_event_list(self):
        # SlaveResult ships bare event lists; the rebuilt trace loses its
        # anchor fields, but the first event's wall/mono pair *is* the
        # anchor, so __post_init__ recovers it.
        original = EventTrace(actor="slave")
        original.record("a")
        original.record("b")
        rebuilt = EventTrace(actor="slave", events=list(original.events))
        assert rebuilt.anchor_wall == original.anchor_wall
        assert rebuilt.anchor_mono == original.anchor_mono

    def test_legacy_wall_only_events_fall_back_to_raw_stamp(self):
        trace = EventTrace(actor="old",
                           events=[TraceEvent(123.0, "old", "legacy")])
        assert trace.anchor_mono == 0.0  # nothing to recover
        assert trace.aligned_at(trace.events[0]) == 123.0

    def test_disabled_trace_records_nothing(self):
        trace = EventTrace(actor="x", enabled=False)
        trace.record("ignored")
        assert trace.events == []
        assert trace.anchor_mono == 0.0

    def test_events_are_picklable_with_mono_field(self):
        import pickle

        trace = EventTrace(actor="x")
        trace.record("a", "detail")
        clone = pickle.loads(pickle.dumps(trace.events))
        rebuilt = EventTrace(actor="x", events=clone)
        assert rebuilt.anchor_mono == trace.anchor_mono
        assert rebuilt.events[0].detail == "detail"
