"""Tests for the training-dynamics diagnostics."""

import numpy as np
import pytest

from repro.coevolution.cell import CellReport
from repro.coevolution.genome import Genome
from repro.metrics import (
    fitness_curves,
    genome_diversity_matrix,
    learning_rate_trajectories,
    mean_pairwise_distance,
    summarize_convergence,
)


def make_report(iteration, g_fit, d_fit=0.5, lr=2e-4):
    return CellReport(
        iteration=iteration,
        best_generator_fitness=g_fit,
        best_discriminator_fitness=d_fit,
        selected_generator=0,
        selected_discriminator=0,
        learning_rate=lr,
        mixture_weights=np.full(5, 0.2),
    )


@pytest.fixture()
def reports():
    return [
        [make_report(1, 1.0, lr=1e-4), make_report(2, 0.5, lr=2e-4)],
        [make_report(1, 2.0, lr=3e-4), make_report(2, 1.0, lr=3e-4)],
    ]


class TestCurves:
    def test_fitness_curves_shape(self, reports):
        curves = fitness_curves(reports)
        assert curves["generator"].shape == (2, 2)
        np.testing.assert_allclose(curves["generator"], [[1.0, 0.5], [2.0, 1.0]])
        assert curves["discriminator"].shape == (2, 2)

    def test_ragged_reports_nan_padded(self):
        ragged = [[make_report(1, 1.0)], [make_report(1, 2.0), make_report(2, 1.5)]]
        curves = fitness_curves(ragged)["generator"]
        assert np.isnan(curves[0, 1])
        assert curves[1, 1] == 1.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fitness_curves([])

    def test_learning_rate_trajectories(self, reports):
        rates = learning_rate_trajectories(reports)
        np.testing.assert_allclose(rates, [[1e-4, 2e-4], [3e-4, 3e-4]])


class TestDiversity:
    def test_matrix_symmetry(self):
        genomes = [Genome(np.array([0.0, 0.0]), 1e-3, "bce"),
                   Genome(np.array([3.0, 4.0]), 1e-3, "bce"),
                   Genome(np.array([0.0, 1.0]), 1e-3, "bce")]
        matrix = genome_diversity_matrix(genomes)
        np.testing.assert_allclose(matrix, matrix.T)
        assert matrix[0, 1] == pytest.approx(5.0)
        assert np.all(np.diag(matrix) == 0)

    def test_mean_pairwise(self):
        genomes = [Genome(np.array([0.0]), 1e-3, "bce"),
                   Genome(np.array([2.0]), 1e-3, "bce")]
        assert mean_pairwise_distance(genomes) == pytest.approx(2.0)

    def test_single_genome_zero(self):
        assert mean_pairwise_distance([Genome(np.zeros(3), 1e-3, "bce")]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            genome_diversity_matrix([])


class TestConvergenceSummary:
    def test_summary_fields(self, reports):
        genomes = [Genome(np.array([0.0, 0.0]), 1e-4, "bce"),
                   Genome(np.array([1.0, 0.0]), 3e-4, "bce")]
        summary = summarize_convergence(reports, genomes)
        assert summary.final_generator_fitness_mean == pytest.approx(0.75)
        assert summary.final_generator_fitness_best == pytest.approx(0.5)
        assert summary.generator_fitness_improved
        assert summary.genome_diversity == pytest.approx(1.0)
        assert summary.learning_rate_spread == pytest.approx(1e-4)
        assert summary.healthy()

    def test_collapsed_population_unhealthy(self, reports):
        genomes = [Genome(np.zeros(2), 1e-4, "bce"),
                   Genome(np.zeros(2), 1e-4, "bce")]
        summary = summarize_convergence(reports, genomes)
        assert summary.genome_diversity == 0.0
        assert not summary.healthy()

    def test_on_real_training_output(self, small_dataset):
        from repro.coevolution import SequentialTrainer
        from tests.conftest import make_quick_config

        result = SequentialTrainer(make_quick_config(2, 2, iterations=2),
                                   small_dataset).run()
        genomes = [g for g, _ in result.center_genomes]
        summary = summarize_convergence(result.cell_reports, genomes)
        assert summary.healthy()
        assert summary.genome_diversity > 0
