"""Shared fixtures.

BLAS is pinned to one thread before anything imports heavy NumPy paths so
test timings stay stable and distributed tests are not poisoned by thread
oversubscription (see :mod:`repro.runtime`).
"""

import os

os.environ.setdefault("OMP_NUM_THREADS", "1")
os.environ.setdefault("OPENBLAS_NUM_THREADS", "1")

import numpy as np
import pytest

from repro.config import paper_table1_config
from repro.data.dataset import ArrayDataset
from repro.data.synthetic import load_synthetic_mnist
from repro.data.transforms import to_tanh_range
from repro.runtime import pin_blas_threads

pin_blas_threads(1)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture(autouse=True)
def _lockcheck_gate():
    """Fail any test that leaves new lockcheck violations behind.

    A no-op unless the suite runs with ``REPRO_LOCKCHECK=1`` (CI's fast
    lane does): with the checker installed, a silent lock-order inversion
    or alias crossing inside a test becomes that test's failure instead of
    a stderr line nobody reads.  Tests that *seed* violations on purpose
    drain them with ``clear_violations()`` before returning.
    """
    from repro.analysis import lockcheck

    if not lockcheck.installed():
        yield
        return
    before = lockcheck.violation_count()
    yield
    new = lockcheck.violations()[before:]
    if new:
        lockcheck.clear_violations()
        pytest.fail("lockcheck violations during test:\n"
                    + "\n".join(str(v) for v in new))


@pytest.fixture()
def telemetry_bus():
    """The telemetry bus with guaranteed clean-up.

    The bus is module-global state (level flag + per-rank buffers + the
    ``REPRO_TELEMETRY`` env mirror), so every test touching it must restore
    the off/empty default or it would leak spans into unrelated tests.
    """
    from repro.telemetry import bus

    prior_env = os.environ.get("REPRO_TELEMETRY")
    bus.reset()
    try:
        yield bus
    finally:
        bus.set_level("off")
        bus.reset()
        bus.unbind_rank()
        if prior_env is None:
            os.environ.pop("REPRO_TELEMETRY", None)
        else:
            os.environ["REPRO_TELEMETRY"] = prior_env


@pytest.fixture(scope="session")
def cache_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("repro-cache")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    return path


def make_quick_config(rows=2, cols=2, *, iterations=2, seed=42,
                      dataset_size=400, batch_size=20, batches=2):
    """A seconds-scale configuration preserving Table I structure."""
    import dataclasses

    scaled = paper_table1_config(rows, cols).scaled(
        iterations=iterations,
        dataset_size=dataset_size,
        batch_size=batch_size,
        batches_per_iteration=batches,
    )
    return dataclasses.replace(scaled, seed=seed)


@pytest.fixture()
def quick_config():
    return make_quick_config()


@pytest.fixture(scope="session")
def small_raw_dataset(cache_dir):
    """400 rendered synthetic digits, session-cached."""
    return load_synthetic_mnist(400, seed=42)


@pytest.fixture(scope="session")
def small_dataset(small_raw_dataset):
    """The same digits in the tanh range, wrapped for training."""
    return ArrayDataset(to_tanh_range(small_raw_dataset.images),
                        small_raw_dataset.labels)


@pytest.fixture(scope="session")
def metric_classifier(small_raw_dataset):
    """A classifier trained once per session for metric tests."""
    from repro.metrics import train_digit_classifier

    rng = np.random.default_rng(7)
    images = to_tanh_range(small_raw_dataset.images)
    return train_digit_classifier(images, small_raw_dataset.labels, rng, epochs=8)


def make_random_checkpoint(config=None, *, seed=0, iteration=0):
    """An untrained checkpoint with random center genomes — servable in
    milliseconds, for serving-layer tests that don't need a real run."""
    import numpy as np

    from repro.coevolution.checkpoint import TrainingCheckpoint
    from repro.coevolution.genome import Genome
    from repro.gan.networks import Discriminator, Generator
    from repro.nn.serialize import parameters_to_vector

    if config is None:
        config = make_quick_config()
    rng = np.random.default_rng(seed)
    g_size = parameters_to_vector(Generator(config.network, rng)).size
    d_size = parameters_to_vector(Discriminator(config.network, rng)).size
    cells = config.coevolution.cells
    genomes = [
        (Genome(rng.standard_normal(g_size) * 0.05, 2e-4, "bce"),
         Genome(rng.standard_normal(d_size) * 0.05, 2e-4, "bce"))
        for _ in range(cells)
    ]
    mixtures = [rng.dirichlet(np.ones(5)) for _ in range(cells)]
    return TrainingCheckpoint(config=config, iteration=iteration,
                              center_genomes=genomes, mixture_weights=mixtures)
