"""Tests for the simulated platform, scheduler, and placement."""

import numpy as np
import pytest

from repro.cluster import (
    BestEffortScheduler,
    ComputeNode,
    ResourceRequest,
    cluster_uy,
    place_tasks,
    table2_resources,
)
from repro.cluster.scheduler import JobState


class TestComputeNode:
    def test_occupancy_accounting(self):
        node = ComputeNode("n", cores=4, memory_mb=1000, storage_gb=10)
        node.occupy(2, 500)
        assert node.free_cores == 2 and node.free_memory_mb == 500
        node.release(2, 500)
        assert node.free_cores == 4

    def test_over_occupancy_rejected(self):
        node = ComputeNode("n", cores=2, memory_mb=100, storage_gb=10)
        with pytest.raises(ValueError):
            node.occupy(3, 10)
        with pytest.raises(ValueError):
            node.occupy(1, 200)

    def test_over_release_rejected(self):
        node = ComputeNode("n", cores=2, memory_mb=100, storage_gb=10)
        with pytest.raises(ValueError):
            node.release(1, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeNode("n", cores=0, memory_mb=100, storage_gb=1)


class TestClusterUy:
    def test_paper_specs(self):
        platform = cluster_uy()
        assert len(platform.nodes) == 30
        assert all(n.cores == 40 for n in platform.nodes)
        assert all(n.memory_mb == 128 * 1024 for n in platform.nodes)
        assert all(n.storage_gb == 300 for n in platform.nodes)
        assert platform.total_cores == 1200

    def test_busy_fraction(self):
        platform = cluster_uy(busy_fraction=0.5)
        assert all(n.busy_cores == 20 for n in platform.nodes)

    def test_busy_fraction_randomized(self):
        platform = cluster_uy(busy_fraction=0.5, rng=np.random.default_rng(0))
        busies = {n.busy_cores for n in platform.nodes}
        assert len(busies) > 1  # not all identical

    def test_unique_names_enforced(self):
        platform = cluster_uy(servers=3)
        names = [n.name for n in platform.nodes]
        assert len(set(names)) == 3

    def test_node_lookup(self):
        platform = cluster_uy(servers=2)
        assert platform.node("node01").name == "node01"
        with pytest.raises(KeyError):
            platform.node("nodeXX")


class TestScheduler:
    def test_job_starts_when_resources_free(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1))
        job = scheduler.submit(
            ResourceRequest(tasks=5, memory_mb_per_task=1844, time_limit_hours=96),
            runtime_hours=2.0,
        )
        assert job.state is JobState.RUNNING
        assert job.allocation is not None
        assert len(job.allocation.task_nodes) == 5

    def test_job_queues_when_full(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1, busy_fraction=0.975))
        # 1 free core; ask for 5.
        job = scheduler.submit(
            ResourceRequest(tasks=5, memory_mb_per_task=100, time_limit_hours=1),
            runtime_hours=1.0,
        )
        assert job.state is JobState.PENDING

    def test_fifo_no_backfill(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1))
        big = scheduler.submit(
            ResourceRequest(tasks=40, memory_mb_per_task=100, time_limit_hours=10),
            runtime_hours=5.0,
        )
        blocked = scheduler.submit(
            ResourceRequest(tasks=40, memory_mb_per_task=100, time_limit_hours=10),
            runtime_hours=1.0,
        )
        small = scheduler.submit(
            ResourceRequest(tasks=1, memory_mb_per_task=100, time_limit_hours=10),
            runtime_hours=1.0,
        )
        assert big.state is JobState.RUNNING
        assert blocked.state is JobState.PENDING
        assert small.state is JobState.PENDING  # strict FIFO: no jumping ahead

    def test_completion_releases_and_starts_next(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1))
        first = scheduler.submit(
            ResourceRequest(tasks=40, memory_mb_per_task=100, time_limit_hours=10),
            runtime_hours=2.0,
        )
        second = scheduler.submit(
            ResourceRequest(tasks=40, memory_mb_per_task=100, time_limit_hours=10),
            runtime_hours=1.0,
        )
        finished = scheduler.advance(2.0)
        assert first in finished and first.state is JobState.COMPLETED
        assert second.state is JobState.RUNNING
        scheduler.advance(1.0)
        assert second.state is JobState.COMPLETED
        assert scheduler.platform.free_cores == 40

    def test_time_limit_kills_job(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1))
        job = scheduler.submit(
            ResourceRequest(tasks=1, memory_mb_per_task=100, time_limit_hours=1.0),
            runtime_hours=50.0,
        )
        scheduler.advance(1.5)
        assert job.state is JobState.TIMEOUT
        assert scheduler.platform.free_cores == 40

    def test_advance_accumulates_clock(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1))
        scheduler.advance(3.0)
        assert scheduler.clock_hours == pytest.approx(3.0)

    def test_cancel_pending(self):
        scheduler = BestEffortScheduler(cluster_uy(servers=1, busy_fraction=0.975))
        job = scheduler.submit(
            ResourceRequest(tasks=10, memory_mb_per_task=100, time_limit_hours=1),
            runtime_hours=1.0,
        )
        scheduler.cancel(job)
        assert job.state is JobState.CANCELLED

    def test_request_validation(self):
        with pytest.raises(ValueError):
            ResourceRequest(tasks=0, memory_mb_per_task=1, time_limit_hours=1)
        with pytest.raises(ValueError):
            ResourceRequest(tasks=1, memory_mb_per_task=1, time_limit_hours=0)


class TestPlacement:
    def test_balanced_round_robin(self):
        platform = cluster_uy(servers=5)
        plan = place_tasks(platform, tasks=10)
        # Emptiest-first round robin over 5 equal nodes -> 2 tasks each.
        assert plan.max_load() == 2
        assert len(plan.tasks_per_node()) == 5

    def test_prefers_empty_nodes(self):
        platform = cluster_uy(servers=3)
        platform.nodes[0].occupy(39, 0)
        platform.nodes[1].occupy(20, 0)
        plan = place_tasks(platform, tasks=3)
        counts = plan.tasks_per_node()
        # node2 (empty) must get at least as many as the others.
        assert counts.get("node02", 0) >= counts.get("node00", 0)

    def test_respects_memory_capacity(self):
        platform = cluster_uy(servers=1)
        # Each task wants 64 GB -> node fits only 2.
        with pytest.raises(ValueError):
            place_tasks(platform, tasks=3, memory_mb_per_task=64 * 1024)

    def test_insufficient_capacity_raises(self):
        platform = cluster_uy(servers=1)
        with pytest.raises(ValueError):
            place_tasks(platform, tasks=41)

    def test_table2_paper_cores(self):
        assert table2_resources(2, 2)["cores"] == 5
        assert table2_resources(3, 3)["cores"] == 10
        assert table2_resources(4, 4)["cores"] == 17

    def test_table2_paper_memory(self):
        assert table2_resources(2, 2)["memory_mb"] == 9216
        assert table2_resources(3, 3)["memory_mb"] == 18432
        # The paper rounds the 4x4 request up to 32 GB; the formula gives
        # the exact ceil-to-GB figure just below it.
        assert abs(table2_resources(4, 4)["memory_mb"] - 32768) <= 1024
