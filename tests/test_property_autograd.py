"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn.autograd import Tensor

SETTINGS = dict(max_examples=50, deadline=None)


def finite_floats(min_value=-10.0, max_value=10.0):
    return st.floats(min_value=min_value, max_value=max_value,
                     allow_nan=False, allow_infinity=False, width=64)


def small_arrays(min_value=-10.0, max_value=10.0):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=6),
        elements=finite_floats(min_value, max_value),
    )


class TestAlgebraicIdentities:
    @given(small_arrays())
    @settings(**SETTINGS)
    def test_add_neg_is_zero(self, x):
        t = Tensor(x, requires_grad=True)
        out = (t + (-t)).sum()
        np.testing.assert_allclose(out.item(), 0.0, atol=1e-9)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_mul_one_identity(self, x):
        t = Tensor(x)
        np.testing.assert_array_equal((t * 1.0).numpy(), x)

    @given(small_arrays(0.1, 10.0))
    @settings(**SETTINGS)
    def test_log_exp_roundtrip(self, x):
        t = Tensor(x)
        np.testing.assert_allclose(t.log().exp().numpy(), x, rtol=1e-9)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_tanh_bounded(self, x):
        y = Tensor(x).tanh().numpy()
        assert np.all(np.abs(y) <= 1.0)

    @given(small_arrays(-50, 50))
    @settings(**SETTINGS)
    def test_sigmoid_in_unit_interval(self, x):
        y = Tensor(x).sigmoid().numpy()
        assert np.all((y >= 0) & (y <= 1))

    @given(small_arrays(-30, 30))
    @settings(**SETTINGS)
    def test_softplus_nonnegative_and_above_x(self, x):
        y = Tensor(x).softplus().numpy()
        assert np.all(y >= 0)
        assert np.all(y >= x - 1e-12)


class TestGradientProperties:
    @given(small_arrays())
    @settings(**SETTINGS)
    def test_sum_gradient_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(x))

    @given(small_arrays(), finite_floats(-5, 5))
    @settings(**SETTINGS)
    def test_linearity_of_gradient(self, x, scale):
        t1 = Tensor(x.copy(), requires_grad=True)
        (t1 * scale).sum().backward()
        np.testing.assert_allclose(t1.grad, np.full_like(x, scale), rtol=1e-12)

    @given(small_arrays(0.5, 5.0))
    @settings(**SETTINGS)
    def test_chain_rule_log(self, x):
        t = Tensor(x, requires_grad=True)
        t.log().sum().backward()
        np.testing.assert_allclose(t.grad, 1.0 / x, rtol=1e-10)

    @given(small_arrays(-3, 3))
    @settings(**SETTINGS)
    def test_tanh_gradient_formula(self, x):
        t = Tensor(x, requires_grad=True)
        t.tanh().sum().backward()
        np.testing.assert_allclose(t.grad, 1 - np.tanh(x) ** 2, rtol=1e-10, atol=1e-12)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_gradient_accumulation_is_additive(self, x):
        t = Tensor(x, requires_grad=True)
        (t * 2.0).sum().backward()
        first = t.grad.copy()
        (t * 3.0).sum().backward()
        np.testing.assert_allclose(t.grad, first + 3.0, rtol=1e-12)


class TestReshapeTranspose:
    @given(small_arrays())
    @settings(**SETTINGS)
    def test_reshape_preserves_sum_gradient(self, x):
        t = Tensor(x, requires_grad=True)
        t.reshape(-1).sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(x))

    @given(arrays(np.float64, (3, 4), elements=finite_floats()))
    @settings(**SETTINGS)
    def test_double_transpose_identity(self, x):
        t = Tensor(x)
        np.testing.assert_array_equal(t.T.T.numpy(), x)
