"""LRU cache and sample pool: hit/miss accounting, eviction, ring buffer."""

import time

import numpy as np
import pytest

from repro.serving import LRUSampleCache, SamplePool, ServableEnsemble

from tests.conftest import make_random_checkpoint


@pytest.fixture(scope="module")
def ensemble():
    return ServableEnsemble.from_checkpoint(make_random_checkpoint(), cell=0)


class _CountingSource:
    """Stand-in ensemble emitting predictable rows, to verify FIFO order."""

    output_neurons = 4

    def __init__(self):
        self.next_value = 0

    def sample(self, n, rng):
        values = np.arange(self.next_value, self.next_value + n, dtype=np.float64)
        self.next_value += n
        return np.repeat(values[:, None], self.output_neurons, axis=1)


class TestLRUSampleCache:
    def test_hit_miss_accounting(self):
        cache = LRUSampleCache(capacity=4)
        key = ("v1", 7, 16)
        assert cache.get(key) is None
        cache.put(key, np.ones((16, 4)))
        assert cache.get(key) is not None
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction_order(self):
        cache = LRUSampleCache(capacity=2)
        a, b, c = ("v", 1, 1), ("v", 2, 1), ("v", 3, 1)
        cache.put(a, np.zeros((1, 1)))
        cache.put(b, np.zeros((1, 1)))
        cache.get(a)  # refresh a; b becomes least recent
        cache.put(c, np.zeros((1, 1)))
        assert cache.get(b) is None
        assert cache.get(a) is not None
        assert cache.get(c) is not None
        assert cache.stats().evictions == 1

    def test_cached_arrays_are_frozen(self):
        cache = LRUSampleCache(capacity=2)
        cache.put(("v", 1, 2), np.zeros((2, 2)))
        images = cache.get(("v", 1, 2))
        with pytest.raises(ValueError):
            images[0, 0] = 1.0

    def test_byte_budget_evicts_and_skips_giants(self):
        row = np.zeros((1, 128))  # 1 KiB per entry
        cache = LRUSampleCache(capacity=100, max_bytes=3 * row.nbytes)
        for seed in range(4):
            cache.put(("v", seed, 1), row)
        assert len(cache) == 3  # byte budget, not entry count, evicted
        assert cache.get(("v", 0, 1)) is None
        assert cache.stats().evictions == 1
        # An entry larger than the whole budget is skipped, not inserted.
        cache.put(("v", 99, 1), np.zeros((8, 128)))
        assert cache.get(("v", 99, 1)) is None
        assert len(cache) == 3

    def test_invalidate_by_version(self):
        cache = LRUSampleCache(capacity=8)
        cache.put(("v1", 1, 1), np.zeros((1, 1)))
        cache.put(("v1", 2, 1), np.zeros((1, 1)))
        cache.put(("v2", 1, 1), np.zeros((1, 1)))
        assert cache.invalidate("v1") == 2
        assert len(cache) == 1
        assert cache.invalidate() == 1
        assert len(cache) == 0


class TestSamplePool:
    def test_miss_then_refill_then_hit(self):
        pool = SamplePool(_CountingSource(), capacity=64, refill_batch=32,
                          autostart=False)
        assert pool.take(8) is None  # empty: miss
        assert pool.refill() == 32
        taken = pool.take(8)
        assert taken.shape == (8, 4)
        stats = pool.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        assert stats.generated == 32
        assert stats.served == 8
        assert stats.level == 24

    def test_fifo_order_across_wraparound(self):
        source = _CountingSource()
        pool = SamplePool(source, capacity=16, refill_batch=16, autostart=False)
        pool.refill()                       # rows 0..15
        assert pool.take(12)[:, 0].tolist() == list(range(12))
        pool.refill()                       # 12 free slots -> rows 16..27
        assert pool.stats().level == 16
        taken = pool.take(10)[:, 0].tolist()
        assert taken == list(range(12, 22))  # FIFO across the wrap point

    def test_miss_above_watermark_wakes_refill(self, ensemble):
        """A miss must trigger refill even when level >= low_watermark."""
        with SamplePool(ensemble, capacity=64, refill_batch=32,
                        low_watermark=0.25) as pool:
            deadline = time.time() + 10.0
            while pool.level < 64 and time.time() < deadline:
                time.sleep(0.01)
            assert pool.take(40) is not None  # level 24, above watermark 16
            assert pool.take(40) is None      # miss: must wake the refiller
            deadline = time.time() + 10.0
            while pool.level < 40 and time.time() < deadline:
                time.sleep(0.01)
            assert pool.take(40) is not None  # refilled past demand

    def test_refill_respects_capacity(self):
        pool = SamplePool(_CountingSource(), capacity=8, refill_batch=32,
                          autostart=False)
        assert pool.refill() == 8
        assert pool.refill() == 0  # full
        assert pool.take(20) is None  # larger than capacity: always a miss

    def test_background_refill_serves_hits(self, ensemble):
        with SamplePool(ensemble, capacity=64, refill_batch=32) as pool:
            deadline = time.time() + 10.0
            while pool.level < 16 and time.time() < deadline:
                time.sleep(0.01)
            taken = pool.take(16)
            assert taken is not None and taken.shape == (16, 784)
            # The refill thread tops the buffer back up after consumption.
            deadline = time.time() + 10.0
            while pool.stats().refills < 2 and time.time() < deadline:
                time.sleep(0.01)
            assert pool.stats().refills >= 2

    def test_validation(self, ensemble):
        with pytest.raises(ValueError):
            SamplePool(ensemble, capacity=0, autostart=False)
        pool = SamplePool(ensemble, capacity=4, autostart=False)
        with pytest.raises(ValueError):
            pool.take(-1)
