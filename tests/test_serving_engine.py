"""BatchingEngine: coalescing determinism, backpressure, lifecycle."""

import numpy as np
import pytest

from repro.serving import (
    BatchingEngine,
    SampleRequest,
    ServableEnsemble,
    ServerClosedError,
    ServerOverloadedError,
)

from tests.conftest import make_random_checkpoint


@pytest.fixture(scope="module")
def ensemble():
    return ServableEnsemble.from_checkpoint(make_random_checkpoint(), cell=0)


def submit_all(engine, ensemble, specs):
    """Queue (n, seed) requests and return their futures."""
    return [
        engine.submit(SampleRequest(n=n, seed=seed), ensemble, "v1", seed)
        for n, seed in specs
    ]


class TestCoalescingDeterminism:
    def test_coalesced_equals_unbatched_bitwise(self, ensemble):
        """Same seed => same images, no matter who shared the batch."""
        specs = [(n, 100 + i) for i, n in enumerate([7, 1, 13, 4, 32, 2, 9, 21])]
        # autostart=False queues everything first, so one worker drains the
        # whole set as a single coalesced batch.
        engine = BatchingEngine(workers=1, autostart=False)
        futures = submit_all(engine, ensemble, specs)
        engine.start()
        coalesced = [future.result(timeout=30) for future in futures]
        engine.close()
        for (n, seed), images in zip(specs, coalesced):
            assert images.shape == (n, 784)
            assert np.array_equal(images, ensemble.sample(n, seed=seed))

    def test_batch_split_does_not_matter(self, ensemble):
        """Tiny max_batch_samples forces different groupings — same bits."""
        specs = [(5, 200 + i) for i in range(6)]
        results = {}
        for max_batch in (1, 8, 4096):
            engine = BatchingEngine(workers=1, max_batch_samples=max_batch,
                                    autostart=False)
            futures = submit_all(engine, ensemble, specs)
            engine.start()
            results[max_batch] = [f.result(timeout=30) for f in futures]
            engine.close()
        for images_a, images_b in zip(results[1], results[4096]):
            assert np.array_equal(images_a, images_b)
        for images_a, images_b in zip(results[8], results[4096]):
            assert np.array_equal(images_a, images_b)

    def test_zero_count_shards(self, ensemble):
        """n=0 requests and zero-sample mixture components must not crash."""
        engine = BatchingEngine(workers=1, autostart=False)
        futures = submit_all(engine, ensemble, [(0, 1), (3, 2), (0, 3)])
        engine.start()
        results = [f.result(timeout=30) for f in futures]
        engine.close()
        assert results[0].shape == (0, 784)
        assert results[1].shape == (3, 784)
        assert results[2].shape == (0, 784)

    def test_weights_override(self, ensemble):
        request = SampleRequest(n=10, seed=7, weights=np.array([1.0, 0, 0, 0, 0]))
        with BatchingEngine(workers=1) as engine:
            images = engine.submit(request, ensemble, "v1", 7).result(timeout=30)
        expected = ensemble.sample(10, seed=7, weights=[1, 0, 0, 0, 0])
        assert np.array_equal(images, expected)

    def test_mixed_ensembles_in_one_batch(self, ensemble):
        """Requests against different ensembles coalesce safely."""
        other = ensemble.with_weights([0, 0, 0, 0, 1])
        engine = BatchingEngine(workers=1, autostart=False)
        f1 = engine.submit(SampleRequest(n=6, seed=11), ensemble, "v1", 11)
        f2 = engine.submit(SampleRequest(n=6, seed=11), other, "v2", 11)
        engine.start()
        a, b = f1.result(timeout=30), f2.result(timeout=30)
        engine.close()
        assert np.array_equal(a, ensemble.sample(6, seed=11))
        assert np.array_equal(b, other.sample(6, seed=11))
        assert not np.array_equal(a, b)


class TestBackpressureAndLifecycle:
    def test_reject_when_full(self, ensemble):
        engine = BatchingEngine(max_pending=3, autostart=False)
        submit_all(engine, ensemble, [(2, i) for i in range(3)])
        with pytest.raises(ServerOverloadedError):
            engine.submit(SampleRequest(n=2, seed=9), ensemble, "v1", 9)
        stats = engine.stats()
        assert stats.submitted == 3  # the rejected one is not counted
        # Draining the queue frees capacity again.
        engine.start()
        futures = submit_all(engine, ensemble, [(2, 50)])
        assert futures[0].result(timeout=30).shape == (2, 784)
        engine.close()

    def test_closed_engine_rejects(self, ensemble):
        engine = BatchingEngine()
        engine.close()
        with pytest.raises(ServerClosedError):
            engine.submit(SampleRequest(n=1, seed=0), ensemble, "v1", 0)
        engine.close()  # idempotent

    def test_close_unstarted_engine_fails_queued_jobs(self, ensemble):
        """Futures must not hang forever when no worker will ever run."""
        engine = BatchingEngine(autostart=False)
        futures = submit_all(engine, ensemble, [(2, 1), (2, 2)])
        engine.close()
        for future in futures:
            with pytest.raises(ServerClosedError):
                future.result(timeout=5)

    def test_bad_weights_job_does_not_poison_batch(self, ensemble):
        """An invalid per-request override fails only its own request."""
        engine = BatchingEngine(workers=1, autostart=False)
        good_a = engine.submit(SampleRequest(n=4, seed=1), ensemble, "v1", 1)
        bad = engine.submit(
            SampleRequest(n=4, seed=2, weights=np.array([1.0, 1.0])),
            ensemble, "v1", 2,
        )
        good_b = engine.submit(SampleRequest(n=4, seed=3), ensemble, "v1", 3)
        engine.start()
        assert np.array_equal(good_a.result(timeout=30),
                              ensemble.sample(4, seed=1))
        assert np.array_equal(good_b.result(timeout=30),
                              ensemble.sample(4, seed=3))
        with pytest.raises(ValueError, match="5 entries"):
            bad.result(timeout=30)
        assert engine.stats().failed == 1
        engine.close()

    def test_request_weights_are_copied_and_frozen(self, ensemble):
        """Mutating the caller's array must not change what is served."""
        mine = np.array([1.0, 0, 0, 0, 0])
        request = SampleRequest(n=6, seed=4, weights=mine)
        mine[0] = -5.0  # client mutates its own array afterwards
        with pytest.raises(ValueError):
            request.weights[0] = -5.0  # the stored copy is frozen
        with BatchingEngine(workers=1) as engine:
            images = engine.submit(request, ensemble, "v1", 4).result(timeout=30)
        expected = ensemble.sample(6, seed=4, weights=[1, 0, 0, 0, 0])
        assert np.array_equal(images, expected)

    def test_cancelled_request_does_not_poison_batch(self, ensemble):
        """One client giving up must not fail its coalesced neighbors."""
        engine = BatchingEngine(workers=1, autostart=False)
        futures = submit_all(engine, ensemble, [(4, i) for i in range(3)])
        assert futures[1].cancel()
        engine.start()
        for i in (0, 2):
            images = futures[i].result(timeout=30)
            assert np.array_equal(images, ensemble.sample(4, seed=i))
        assert futures[1].cancelled()
        engine.close()

    def test_stats_accounting(self, ensemble):
        engine = BatchingEngine(workers=1, autostart=False)
        futures = submit_all(engine, ensemble, [(4, i) for i in range(5)])
        engine.start()
        for future in futures:
            future.result(timeout=30)
        engine.close()
        stats = engine.stats()
        assert stats.submitted == 5
        assert stats.completed == 5
        assert stats.failed == 0
        assert stats.batches >= 1
        assert stats.coalesced_requests == 5
        assert stats.mean_requests_per_batch >= 1.0
        # 5 mixture components forwarded per coalesced batch.
        assert stats.forward_calls == 5 * stats.batches
