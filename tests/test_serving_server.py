"""GeneratorServer end-to-end: routing, hot-swap, backpressure, stats."""

import time

import numpy as np
import pytest

from repro.serving import (
    GeneratorServer,
    ModelRegistry,
    ServableEnsemble,
    ServerClosedError,
    ServerOverloadedError,
    UnknownVersionError,
)

from tests.conftest import make_random_checkpoint


@pytest.fixture(scope="module")
def ensemble():
    return ServableEnsemble.from_checkpoint(make_random_checkpoint(), cell=0)


@pytest.fixture()
def server(ensemble):
    with GeneratorServer(ensemble, lru_capacity=16) as srv:
        yield srv


class TestRouting:
    def test_seeded_request_matches_direct_sampling(self, server, ensemble):
        response = server.request(11, seed=3)
        assert response.version == "v1"
        assert response.cached is None
        assert np.array_equal(response.images, ensemble.sample(11, seed=3))

    def test_second_seeded_request_hits_lru(self, server):
        first = server.request(9, seed=42)
        second = server.request(9, seed=42)
        assert second.cached == "lru"
        assert np.array_equal(first.images, second.images)
        stats = server.stats()
        assert stats.lru_hits == 1

    def test_seedless_requests_differ(self, server):
        a = server.request(6)
        b = server.request(6)
        assert a.images.shape == (6, 784)
        assert not np.array_equal(a.images, b.images)

    def test_weight_override_arity_validated(self, server):
        with pytest.raises(ValueError, match="5 entries"):
            server.request(4, seed=1, weights=[0.5, 0.5])

    def test_oversized_request_rejected(self, ensemble):
        with GeneratorServer(ensemble, max_request_samples=100) as srv:
            assert srv.request(100, seed=1).n == 100
            with pytest.raises(ValueError, match="max_request_samples"):
                srv.request(101)

    def test_computed_response_stays_writable(self, server):
        """lru.put must not freeze the computing client's own array."""
        response = server.request(4, seed=77)
        assert response.cached is None
        response.images[0, 0] = 0.0  # in-place post-processing must work

    def test_weight_override_not_cached(self, server):
        first = server.request(5, seed=1, weights=[1, 0, 0, 0, 0])
        second = server.request(5, seed=1, weights=[1, 0, 0, 0, 0])
        assert first.cached is None and second.cached is None
        assert np.array_equal(first.images, second.images)

    def test_pool_serves_anonymous_traffic(self, ensemble):
        with GeneratorServer(ensemble, pool_capacity=64,
                             pool_refill_batch=32) as srv:
            deadline = time.time() + 10.0
            while (srv.pool is None or srv.pool.level < 8) \
                    and time.time() < deadline:
                time.sleep(0.01)
            response = srv.request(8)
            assert response.cached == "pool"
            assert srv.stats().pool_hits == 1

    def test_zero_sample_request(self, server):
        assert server.request(0, seed=1).images.shape == (0, 784)

    def test_pool_created_lazily_for_late_first_model(self, ensemble):
        """pool_capacity must work even when the registry starts empty."""
        registry = ModelRegistry()
        with GeneratorServer(registry, pool_capacity=64,
                             pool_refill_batch=32) as srv:
            assert srv.pool is None
            registry.register("v1", ensemble, promote=True)
            srv.request(4)  # first seedless request builds the pool
            assert srv.pool is not None
            deadline = time.time() + 10.0
            while srv.pool.level < 8 and time.time() < deadline:
                time.sleep(0.01)
            assert srv.request(8).cached == "pool"


class TestVersioning:
    def test_promote_hot_swap(self, ensemble):
        registry = ModelRegistry()
        registry.register("v1", ensemble)
        registry.register("v2", ensemble.with_weights([1, 0, 0, 0, 0]))
        with GeneratorServer(registry) as srv:
            assert srv.request(4, seed=1).version == "v1"
            srv.promote("v2")
            assert srv.request(4, seed=1).version == "v2"
            # Pinned versions remain reachable after the swap.
            assert srv.request(4, seed=1, version="v1").version == "v1"

    def test_unknown_version_raises(self, server):
        with pytest.raises(UnknownVersionError) as exc_info:
            server.request(4, version="ghost")
        assert not str(exc_info.value).startswith('"')  # readable, not repred

    def test_idempotent_promote_keeps_pool(self, ensemble):
        with GeneratorServer(ensemble, pool_capacity=64,
                             pool_refill_batch=32) as srv:
            srv.request(1)  # lazily builds the pool
            pool = srv.pool
            assert pool is not None
            srv.promote("v1")  # already active: pool must survive
            assert srv.pool is pool

    def test_reregister_does_not_serve_stale_cache(self, ensemble):
        """Replacing a version's ensemble must invalidate cached bits."""
        registry = ModelRegistry()
        registry.register("v1", ensemble)
        with GeneratorServer(registry) as srv:
            a = srv.request(6, seed=9)
            registry.register("v1", ensemble.with_weights([1, 0, 0, 0, 0]))
            assert len(srv.lru) == 0  # replacement invalidated v1's entries
            b = srv.request(6, seed=9)
            assert b.cached is None  # uid-keyed LRU: no stale hit
            assert not np.array_equal(a.images, b.images)

    def test_lru_keys_include_version(self, ensemble):
        registry = ModelRegistry()
        registry.register("v1", ensemble)
        registry.register("v2", ensemble.with_weights([1, 0, 0, 0, 0]))
        with GeneratorServer(registry) as srv:
            a = srv.request(7, seed=5, version="v1")
            b = srv.request(7, seed=5, version="v2")
            assert b.cached is None  # not a cross-version cache hit
            assert not np.array_equal(a.images, b.images)


class TestBackpressureAndShutdown:
    def test_reject_when_queue_full(self, ensemble):
        server = GeneratorServer(ensemble, max_pending=2, lru_capacity=0,
                                 autostart=False)
        pending = [server.submit(2, seed=i) for i in range(2)]
        with pytest.raises(ServerOverloadedError):
            server.submit(2, seed=99)
        assert server.stats().rejected == 1
        server.engine.start()  # drain; queued work still completes
        for future in pending:
            assert future.result(timeout=30).images.shape == (2, 784)
        server.close()

    def test_closed_server_raises(self, ensemble):
        server = GeneratorServer(ensemble)
        server.close()
        with pytest.raises(ServerClosedError):
            server.request(1)
        server.close()  # idempotent

    def test_graceful_shutdown_completes_queued_work(self, ensemble):
        server = GeneratorServer(ensemble, autostart=False)
        futures = [server.submit(3, seed=i) for i in range(4)]
        server.engine.start()
        server.close()  # close() drains before joining workers
        for future in futures:
            assert future.result(timeout=30).images.shape == (3, 784)


class TestStats:
    def test_snapshot_fields(self, server):
        for i in range(4):
            server.request(5, seed=i)
        server.request(5, seed=0)  # LRU hit
        stats = server.stats()
        assert stats.requests == 5
        assert stats.samples == 25
        assert stats.uptime_s > 0
        assert stats.throughput_rps > 0
        assert stats.samples_per_s > 0
        assert stats.p95_latency_s >= stats.p50_latency_s >= 0
        assert stats.lru_hits == 1
        assert 0 < stats.cache_hit_rate < 1
        assert stats.active_version == "v1"
        assert stats.versions == ["v1"]

    def test_profile_splits_serve_time_by_path(self, server):
        server.request(5, seed=10)   # engine
        server.request(5, seed=10)   # lru hit
        profile = server.profile()
        assert profile.calls("engine") == 1
        assert profile.calls("lru") == 1
        assert profile.seconds("engine") >= profile.seconds("lru") >= 0

    def test_report_is_printable(self, server):
        server.request(3, seed=1)
        report = server.stats().report()
        assert "ServerStats" in report
        assert "throughput" in report
        assert "p50" in report
        assert "cache hit rate" in report
