"""The TCP transport end to end: rendezvous, routing, collectives, host
specs, failure synthesis and the transport registry.

Per-rank programs live at module level — the socket transport pickles them
to worker subprocesses, which re-import this module via the inherited
``sys.path``.
"""

import numpy as np
import pytest

from repro.mpi import (
    MpiError,
    available_transports,
    make_transport,
    register_transport,
    run_mpi,
)
from repro.mpi.socket_transport import parse_address, parse_host_spec
from repro.mpi.transport import ThreadTransport


# -- per-rank programs (must be importable from worker processes) -------------

def ring_program(world, payload_size):
    """Each rank passes a genome-sized array around the ring once."""
    rank, size = world.Get_rank(), world.Get_size()
    own = np.full(payload_size, float(rank))
    world.send(own, dest=(rank + 1) % size, tag=7)
    incoming = world.recv(source=(rank - 1) % size, tag=7, timeout=30)
    world.barrier(timeout=30)
    return float(incoming[0])


def collective_program(world, offset):
    rank = world.Get_rank()
    gathered = world.allgather(np.arange(3.0) + rank + offset)
    reduced = world.allreduce(rank, op=lambda a, b: a + b)
    return float(sum(g.sum() for g in gathered)) + reduced


def crash_program(world, victim):
    if world.Get_rank() == victim:
        raise RuntimeError("deliberate crash for the failure test")
    return world.Get_rank()


class _CreatesFileOnUnpickle:
    """Pickles cleanly; unpickling it creates ``path`` (an exploit proxy)."""

    def __init__(self, path):
        self.path = path

    def __reduce__(self):
        return (open, (self.path, "w"))


def split_program(world, _unused):
    """LOCAL/GLOBAL context derivation, as the comm-manager performs it."""
    color = 1 if world.Get_rank() > 0 else None
    local = world.Split(color=color, key=world.Get_rank())
    dup = world.Dup()
    dup.barrier(timeout=30)
    return local.Get_size() if local is not None else 0


class TestHostSpecs:
    def test_parse_variants(self):
        assert parse_host_spec(None, 4) == [("127.0.0.1", 4)]
        assert parse_host_spec("a:3,b:2", 5) == [("a", 3), ("b", 2)]
        assert parse_host_spec(["a", "b"], 2) == [("a", 1), ("b", 1)]
        assert parse_host_spec([("a", 2)], 2) == [("a", 2)]

    def test_slots_must_sum_to_size(self):
        with pytest.raises(ValueError, match="sum"):
            parse_host_spec("a:2,b:2", 5)

    def test_bad_entries_rejected(self):
        with pytest.raises(ValueError):
            parse_host_spec("a:0", 1)
        with pytest.raises(ValueError):
            parse_host_spec(":3", 3)

    def test_typoed_slot_suffix_rejected(self):
        """'nodeB:5x' must fail at parse time, not 60s later as a
        rendezvous timeout on a host that never existed."""
        with pytest.raises(ValueError, match="must be a number"):
            parse_host_spec("nodeA:1,nodeB:5x", 2)
        with pytest.raises(ValueError, match="must be a number"):
            parse_address("coord:555o")
        with pytest.raises(ValueError, match="must be a number"):
            parse_address("[::1]:5o55")

    def test_garbage_hello_rejected_not_fatal(self):
        """A stranger's malformed hello must reject that connection only,
        never crash the coordinator's rendezvous."""
        import socket as socket_module
        import threading
        import time

        from repro.mpi import wire
        from repro.mpi.socket_transport import SocketTransport

        transport = SocketTransport(2, hosts="127.0.0.1:2", token="tok",
                                    start_timeout=30)
        launched = threading.Thread(
            target=transport.launch, args=(ring_program, (4,)), daemon=True)
        launched.start()
        try:
            deadline = time.monotonic() + 20
            while transport._listener is None:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            port = transport._listener.getsockname()[1]
            with socket_module.create_connection(("127.0.0.1", port),
                                                 timeout=10) as intruder:
                # Valid magic, HELLO kind, but the payload is not a dict.
                intruder.sendall(wire.pack_frame(wire.HELLO, 0, ["not", "a",
                                                                 "dict"]))
            launched.join(timeout=60)
            assert not launched.is_alive(), "rendezvous crashed or hung"
            outcomes = transport.collect(timeout=60)
            # Ring of 2: each rank returns the other's value.
            assert [o.value for o in outcomes] == [1.0, 0.0]
        finally:
            transport.shutdown()

    def test_pickled_hello_rejected_before_unpickle(self, tmp_path):
        """SECURITY: the hello arrives before the peer has presented the
        rendezvous token, so the coordinator must never unpickle it — a
        crafted pickle in a HELLO frame is arbitrary code execution for
        anyone who can reach a routable bind.  The payload here creates a
        sentinel file when (and only when) it is unpickled."""
        import socket as socket_module
        import threading
        import time

        from repro.mpi import wire
        from repro.mpi.socket_transport import SocketTransport

        sentinel = tmp_path / "unpickled-pre-auth"
        transport = SocketTransport(2, hosts="127.0.0.1:2", token="tok",
                                    start_timeout=30)
        launched = threading.Thread(
            target=transport.launch, args=(ring_program, (4,)), daemon=True)
        launched.start()
        try:
            deadline = time.monotonic() + 20
            while transport._listener is None:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            port = transport._listener.getsockname()[1]
            with socket_module.create_connection(("127.0.0.1", port),
                                                 timeout=10) as intruder:
                evil = _CreatesFileOnUnpickle(str(sentinel))
                intruder.sendall(wire.pack_frame(wire.HELLO, 0, evil))
            launched.join(timeout=60)
            assert not launched.is_alive(), "rendezvous crashed or hung"
            outcomes = transport.collect(timeout=60)
            assert [o.value for o in outcomes] == [1.0, 0.0]
            assert not sentinel.exists(), \
                "coordinator unpickled a pre-auth hello payload"
        finally:
            transport.shutdown()

    def test_worker_connect_requires_port(self, capsys):
        """`repro worker --connect host` (port forgotten) must fail with a
        usage error, not a confusing connect-to-port-0 OS error."""
        from repro.mpi.socket_transport import worker_main

        assert worker_main("somehost") == 2
        assert "expected host:port" in capsys.readouterr().err

    def test_ipv6_literals(self):
        assert parse_host_spec("[::1]:5", 5) == [("::1", 5)]
        assert parse_host_spec("::1", 1) == [("::1", 1)]  # bare = 1 slot
        with pytest.raises(ValueError, match="unterminated"):
            parse_host_spec("[::1:5", 5)

    def test_parse_address(self):
        assert parse_address("host:123") == ("host", 123)
        assert parse_address("host", default_port=9) == ("host", 9)
        assert parse_address("[::1]:123") == ("::1", 123)
        assert parse_address("::1", default_port=9) == ("::1", 9)

    def test_dataset_cache_key_handles_unhashable_options(self):
        """Registered dataset factories may take dict/list options; the
        per-node cache key must not choke on them."""
        from repro.config import default_config
        from repro.parallel.runner import _materialize_dataset
        from repro.registry import DATASETS

        seen = []

        def factory(config, noise=None):
            seen.append(noise)
            from repro.data.dataset import ArrayDataset
            import numpy as np

            return ArrayDataset(np.zeros((4, 4)), np.zeros(4, dtype=np.int64))

        DATASETS.register("test-dict-options", factory)
        try:
            config = default_config()
            payload = ("registry", "test-dict-options", {"noise": {"sigma": 1}})
            first = _materialize_dataset(config, payload)
            second = _materialize_dataset(config, payload)
            assert first is second  # cached per node, built once
            assert seen == [{"sigma": 1}]
        finally:
            DATASETS.unregister("test-dict-options")

    def test_empty_token_hardens_instead_of_disabling_auth(self):
        """token=\"\" (e.g. a config template rendering an empty string)
        must auto-generate a secret, never run an open rendezvous."""
        from repro.mpi.socket_transport import SocketTransport

        assert SocketTransport(1, token="").token
        assert SocketTransport(1, token=None).token
        assert SocketTransport(1, token="s3cret").token == "s3cret"

    def test_spawned_workers_follow_specific_bind(self):
        from repro.mpi.socket_transport import SocketTransport

        loopback = SocketTransport(1, bind="0.0.0.0:0")
        assert loopback._local_connect_host == "127.0.0.1"
        routable = SocketTransport(1, bind="192.0.2.7:5555")
        assert routable._local_connect_host == "192.0.2.7"


class TestRegistry:
    def test_builtins_present(self):
        assert {"threaded", "process", "socket"} <= available_transports()

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_transport("telepathy", 2)

    def test_register_and_duplicate(self):
        register_transport("test-dummy", ThreadTransport)
        try:
            transport = make_transport("test-dummy", 2)
            assert isinstance(transport, ThreadTransport)
            with pytest.raises(ValueError, match="already registered"):
                register_transport("threaded", ThreadTransport)
        finally:
            from repro.mpi import transport as transport_module

            del transport_module._TRANSPORTS["test-dummy"]


class TestSocketJobs:
    def test_single_worker_ring(self):
        results = run_mpi(3, ring_program, args=(64,), backend="socket",
                          timeout=120)
        assert list(results) == [2.0, 0.0, 1.0]

    def test_ipv6_loopback_coordinator(self):
        """Binding [::1] opens an AF_INET6 listener and the spawned local
        worker connects over the same family."""
        results = run_mpi(2, ring_program, args=(8,), backend="socket",
                          timeout=120,
                          transport_options={"bind": "[::1]:0"})
        assert list(results) == [1.0, 0.0]

    def test_multi_worker_collectives_match_threaded(self):
        threaded = run_mpi(4, collective_program, args=(1,),
                           backend="threaded", timeout=120)
        socketed = run_mpi(
            4, collective_program, args=(1,), backend="socket", timeout=120,
            transport_options={"hosts": "127.0.0.1:2,127.0.0.1:2"})
        assert list(threaded) == list(socketed)

    def test_context_split_across_workers(self):
        results = run_mpi(
            3, split_program, args=(None,), backend="socket", timeout=120,
            transport_options={"hosts": "127.0.0.1:1,127.0.0.1:2"})
        assert list(results) == [0, 2, 2]

    def test_transport_stats_attached(self):
        results = run_mpi(3, ring_program, args=(128,), backend="socket",
                          timeout=120)
        stats = results.transport_stats
        assert [s.rank for s in stats] == [0, 1, 2]
        for record in stats:
            assert record.messages_sent >= 2  # ring send + barrier traffic
            assert record.bytes_sent >= 128 * 8

    def test_rank_failure_surfaces_with_traceback(self):
        results = run_mpi(3, crash_program, args=(1,), backend="socket",
                          timeout=120, allow_failures=True)
        assert results[1] is None
        assert "deliberate crash" in results.failures[1]
        assert results[0] == 0 and results[2] == 2

    def test_unpicklable_program_rejected_early(self):
        captured = []

        def closure_program(world):  # pragma: no cover - never runs
            return captured

        with pytest.raises(MpiError, match="picklable"):
            run_mpi(2, closure_program, backend="socket", timeout=30)

    def test_rendezvous_timeout(self):
        # A remote host nobody will ever start: the coordinator must give
        # up cleanly instead of hanging.
        with pytest.raises(MpiError, match="rendezvous"):
            run_mpi(2, ring_program, args=(8,), backend="socket", timeout=30,
                    transport_options={"hosts": "unreachable-host:2",
                                       "start_timeout": 1.0})

    def test_worker_process_death_synthesized(self):
        """SIGKILL one worker mid-run: its ranks become failed outcomes and
        the survivors' outcomes still arrive (no hang)."""
        import threading
        import time

        transport = make_transport("socket", 3, hosts="127.0.0.1:2,127.0.0.1:1")
        transport.launch(sleepy_program, (3.0,))

        def assassin():
            time.sleep(0.7)
            transport.kill_rank(2)

        killer = threading.Thread(target=assassin)
        killer.start()
        try:
            outcomes = transport.collect(timeout=60)
        finally:
            killer.join()
            transport.shutdown()
        assert not outcomes[0].failed and not outcomes[1].failed
        assert outcomes[2].failed
        assert "lost" in outcomes[2].error


def sleepy_program(world, seconds):
    """Ranks idle long enough for the assassin thread to strike rank 2."""
    import time

    time.sleep(seconds)
    return world.Get_rank()


def blocked_program(world):
    """Blocks in a receive that nothing will ever satisfy."""
    return world.recv(source=0, tag=5)


class TestExternalWorkerShutdown:
    def test_early_shutdown_unblocks_external_worker(self):
        """Coordinator shutdown mid-run (timeout, launch failure) must
        release a still-working *external* worker — its blocked receives
        fail fast and the process exits instead of hanging until someone
        kills it by hand."""
        import os
        import subprocess
        import sys
        import threading
        import time

        transport = make_transport("socket", 1, hosts="some-remote-host:1",
                                   bind="127.0.0.1:0", token="tok",
                                   start_timeout=60)
        launched = threading.Thread(
            target=transport.launch, args=(blocked_program, ()), daemon=True)
        launched.start()
        deadline = time.monotonic() + 30
        while transport._listener is None:
            assert time.monotonic() < deadline, "listener never bound"
            time.sleep(0.05)
        port = transport._listener.getsockname()[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
        worker = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker",
             "--connect", f"127.0.0.1:{port}", "--slots", "1",
             "--index", "0", "--token", "tok", "--quiet"], env=env)
        try:
            launched.join(timeout=60)
            assert not launched.is_alive(), "rendezvous never completed"
            time.sleep(0.5)  # the worker's rank is now blocked in recv
            transport.shutdown()
            assert worker.wait(timeout=30) == 1  # rank failed, but exited
        finally:
            if worker.poll() is None:
                worker.kill()
                worker.wait(timeout=10)
