"""Unit tests for the parallel package's components: Grid, states, messages,
profiling report."""

import pickle

import numpy as np
import pytest

from repro.coevolution.genome import Genome
from repro.parallel.grid import Grid
from repro.parallel.messages import ExchangePayload, NodeInfo, RunTask, SlaveResult, StatusReply
from repro.parallel.states import IllegalTransition, SlaveState, SlaveStateMachine
from repro.parallel.tracing import EventTrace
from repro.profiling import ProfileRow, RoutineTimer, merge_snapshots, profile_rows


class TestGrid:
    @pytest.fixture()
    def grid(self):
        return Grid(3, 3, first_slave_rank=1)

    def test_rank_mapping(self, grid):
        assert grid.rank_of_cell(0) == 1
        assert grid.rank_of_cell(8) == 9
        assert grid.cell_of_rank(5) == 4
        assert grid.slave_ranks() == list(range(1, 10))

    def test_rank_mapping_bounds(self, grid):
        with pytest.raises(ValueError):
            grid.rank_of_cell(9)
        with pytest.raises(ValueError):
            grid.cell_of_rank(0)  # the master maps to no cell

    def test_default_neighbors_match_torus(self, grid):
        # cell 4 = (1,1) on 3x3: W=3, N=1, E=5, S=7
        assert grid.neighbor_cells(4) == [3, 1, 5, 7]
        assert grid.neighbor_ranks(4) == [4, 2, 6, 8]

    def test_neighborhood_size(self, grid):
        assert grid.neighborhood_size(4) == 5

    def test_rewire(self, grid):
        grid.rewire(4, [0, 8])
        assert grid.neighbor_cells(4) == [0, 8]
        assert grid.neighborhood_size(4) == 3
        # Other cells unaffected.
        assert grid.neighbor_cells(0) == [2, 6, 1, 3]

    def test_rewire_validation(self, grid):
        with pytest.raises(ValueError):
            grid.rewire(4, [9])
        with pytest.raises(ValueError):
            grid.rewire(4, [4])  # self
        with pytest.raises(ValueError):
            grid.rewire(9, [0])

    def test_reset_neighborhoods(self, grid):
        grid.rewire(4, [0])
        grid.reset_neighborhoods()
        assert grid.neighbor_cells(4) == [3, 1, 5, 7]

    def test_incoming_matches_outgoing_when_symmetric(self, grid):
        for cell in range(9):
            assert sorted(grid.incoming_neighbors(cell)) == sorted(grid.neighbor_cells(cell))

    def test_incoming_for_asymmetric_rewire(self, grid):
        grid.rewire(0, [4])      # 0 listens to 4
        grid.rewire(4, [])        # 4 listens to nobody
        # 4's update must reach 0 -> 0 is an incoming neighbor of 4.
        assert 0 in grid.incoming_neighbors(4)
        # nothing must be sent to 4 from 0 since 4 doesn't list 0... but 0's
        # neighbors are only 4, so 0 appears exactly once.
        assert grid.incoming_neighbors(0) == [c for c in range(9)
                                              if 0 in grid.neighbor_cells(c)]

    def test_payload_roundtrip(self, grid):
        grid.rewire(2, [0, 1])
        clone = Grid.from_payload(grid.to_payload())
        assert clone.neighbor_cells(2) == [0, 1]
        assert clone.neighbor_cells(4) == [3, 1, 5, 7]
        assert clone.first_slave_rank == 1

    def test_2x2_duplicate_neighbors(self):
        grid = Grid(2, 2)
        # W and E are the same cell; N and S likewise.
        assert grid.neighbor_cells(0) == [1, 2, 1, 2]
        assert sorted(grid.incoming_neighbors(0)) == [1, 1, 2, 2]


class TestStateMachine:
    def test_happy_path(self):
        machine = SlaveStateMachine()
        assert machine.state is SlaveState.INACTIVE
        machine.start_processing()
        assert machine.state is SlaveState.PROCESSING
        machine.finish()
        assert machine.state is SlaveState.FINISHED

    def test_history_records_events(self):
        machine = SlaveStateMachine()
        machine.start_processing()
        machine.finish()
        events = [t.event for t in machine.history]
        assert events == ["run task message", "last iteration performed"]

    @pytest.mark.parametrize("walk", [
        ["finish"],                      # inactive -> finished
        ["start_processing", "start_processing"],
        ["start_processing", "finish", "finish"],
        ["start_processing", "finish", "start_processing"],
    ])
    def test_illegal_walks(self, walk):
        machine = SlaveStateMachine()
        with pytest.raises(IllegalTransition):
            for step in walk:
                getattr(machine, step)()


class TestMessages:
    def test_all_messages_pickle(self, rng):
        genome = Genome(rng.normal(size=16), 2e-4, "bce")
        messages = [
            NodeInfo(1, "host", 1234),
            RunTask("{}", 0, {"rows": 2, "cols": 2, "first_slave_rank": 1,
                              "overrides": {}}, "node00"),
            StatusReply(1, "processing", 3, 0.0),
            ExchangePayload(0, 2, genome, genome.copy()),
            SlaveResult(1, 0, genome, genome.copy(), np.full(5, 0.2)),
        ]
        for message in messages:
            clone = pickle.loads(pickle.dumps(message))
            assert type(clone) is type(message)

    def test_exchange_payload_carries_genomes(self, rng):
        g = Genome(rng.normal(size=8), 1e-3, "mse")
        payload = ExchangePayload(3, 7, g, g.copy())
        assert payload.cell_index == 3 and payload.iteration == 7
        np.testing.assert_array_equal(payload.generator_genome.parameters, g.parameters)


class TestProfilingReport:
    def test_timer_sections(self):
        import time

        timer = RoutineTimer()
        with timer.section("train"):
            time.sleep(0.01)
        with timer.section("train"):
            pass
        snap = timer.snapshot()
        assert snap.seconds("train") >= 0.01
        assert snap.calls("train") == 2

    def test_null_timer_is_free(self):
        from repro.profiling import NULL_TIMER

        with NULL_TIMER.section("anything"):
            pass
        assert NULL_TIMER.snapshot().overall == 0

    def test_merge_serial_sums(self):
        timers = []
        for seconds in (1.0, 2.0):
            t = RoutineTimer()
            t.add("train", seconds)
            timers.append(t.snapshot())
        merged = merge_snapshots(timers, parallel=False)
        assert merged.seconds("train") == pytest.approx(3.0)

    def test_merge_parallel_takes_max(self):
        timers = []
        for seconds in (1.0, 2.0):
            t = RoutineTimer()
            t.add("train", seconds)
            timers.append(t.snapshot())
        merged = merge_snapshots(timers, parallel=True)
        assert merged.seconds("train") == pytest.approx(2.0)

    def test_profile_rows_layout(self):
        single = RoutineTimer()
        dist = RoutineTimer()
        for name, s_time, d_time in (
            ("gather", 1.0, 1.0), ("train", 10.0, 2.0),
            ("update_genomes", 5.0, 0.5), ("mutate", 1.0, 0.7),
        ):
            single.add(name, s_time)
            dist.add(name, d_time)
        rows = profile_rows(single.snapshot(), dist.snapshot())
        assert [r.routine for r in rows] == [
            "gather", "train", "update genomes", "mutate", "overall",
        ]
        overall = rows[-1]
        assert overall.single_core_s == pytest.approx(17.0)
        assert overall.distributed_s == pytest.approx(4.2)

    def test_profile_row_metrics(self):
        row = ProfileRow("train", single_core_s=10.0, distributed_s=2.0)
        assert row.speedup == pytest.approx(5.0)
        assert row.acceleration == pytest.approx(0.8)

    def test_timer_add_validation(self):
        with pytest.raises(ValueError):
            RoutineTimer().add("x", -1.0)


class TestEventTrace:
    def test_record_and_merge(self):
        a = EventTrace(actor="master")
        b = EventTrace(actor="slave-1")
        a.record("first")
        b.record("second")
        merged = EventTrace.merged([a, b])
        assert [e.event for e in merged] == ["first", "second"]

    def test_disabled_trace_records_nothing(self):
        trace = EventTrace(actor="x", enabled=False)
        trace.record("ignored")
        assert trace.events == []

    def test_format_empty(self):
        assert "empty" in EventTrace.format_merged([])
