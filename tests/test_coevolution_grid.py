"""Tests for the toroidal grid geometry (paper Fig. 1 structure)."""

import pytest

from repro.coevolution.grid import ToroidalGrid, moore_neighborhood, von_neumann_neighborhood


class TestMooreNeighborhood:
    def test_paper_example_interior(self):
        # N(1,1) on the 4x4 grid of Fig. 1.
        hood = moore_neighborhood(1, 1, 4, 4)
        assert hood == [(1, 1), (1, 0), (0, 1), (1, 2), (2, 1)]

    def test_paper_example_wrapping(self):
        # N(1,3) wraps east to column 0.
        hood = moore_neighborhood(1, 3, 4, 4)
        assert hood == [(1, 3), (1, 2), (0, 3), (1, 0), (2, 3)]

    def test_center_first(self):
        assert moore_neighborhood(2, 2, 5, 5)[0] == (2, 2)

    def test_size_is_five(self):
        assert len(moore_neighborhood(0, 0, 4, 4)) == 5

    def test_corner_wraps_both_axes(self):
        hood = moore_neighborhood(0, 0, 3, 3)
        assert (0, 2) in hood  # west wrap
        assert (2, 0) in hood  # north wrap

    def test_2x2_duplicates(self):
        # On 2x2 the W and E neighbors coincide, as do N and S.
        hood = moore_neighborhood(0, 0, 2, 2)
        assert hood == [(0, 0), (0, 1), (1, 0), (0, 1), (1, 0)]

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            moore_neighborhood(4, 0, 4, 4)

    def test_bad_dims_rejected(self):
        with pytest.raises(ValueError):
            moore_neighborhood(0, 0, 0, 4)


class TestVonNeumann:
    def test_radius_1_matches_moore5(self):
        assert set(von_neumann_neighborhood(1, 1, 4, 4, radius=1)) == set(
            moore_neighborhood(1, 1, 4, 4)
        )

    def test_radius_0_is_center_only(self):
        assert von_neumann_neighborhood(2, 2, 5, 5, radius=0) == [(2, 2)]

    def test_radius_2_size(self):
        # Manhattan ball of radius 2 on a big torus: 1 + 4 + 8 = 13 cells.
        assert len(von_neumann_neighborhood(3, 3, 9, 9, radius=2)) == 13

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            von_neumann_neighborhood(0, 0, 3, 3, radius=-1)


class TestToroidalGrid:
    @pytest.fixture()
    def grid(self):
        return ToroidalGrid(4, 4)

    def test_cell_count(self, grid):
        assert grid.cell_count == 16

    def test_index_coord_roundtrip(self, grid):
        for index in range(grid.cell_count):
            row, col = grid.coords_of(index)
            assert grid.index_of(row, col) == index

    def test_row_major_layout(self, grid):
        assert grid.coords_of(0) == (0, 0)
        assert grid.coords_of(5) == (1, 1)
        assert grid.index_of(1, 1) == 5

    def test_bounds_checks(self, grid):
        with pytest.raises(ValueError):
            grid.coords_of(16)
        with pytest.raises(ValueError):
            grid.index_of(4, 0)

    def test_neighbors_of_excludes_center(self, grid):
        assert 5 not in grid.neighbors_of(5)
        assert len(grid.neighbors_of(5)) == 4

    def test_neighborhood_indices_order(self, grid):
        # center, W, N, E, S for cell (1,1)=5 on 4x4
        assert grid.neighborhood_indices(5) == [5, 4, 1, 6, 9]

    def test_overlap_reciprocity(self):
        """j in N(i) iff i in N(j) — the torus symmetry the exchange uses."""
        for rows, cols in ((3, 3), (4, 4), (3, 5)):
            grid = ToroidalGrid(rows, cols)
            for i in range(grid.cell_count):
                for j in grid.neighborhood_indices(i):
                    assert i in grid.neighborhood_indices(j)

    def test_overlapping_neighborhoods_equals_own(self):
        grid = ToroidalGrid(4, 4)
        for i in range(grid.cell_count):
            assert sorted(grid.overlapping_neighborhoods(i)) == sorted(
                set(grid.neighborhood_indices(i))
            )

    def test_every_cell_in_five_neighborhoods(self):
        grid = ToroidalGrid(4, 4)
        appearance = [0] * grid.cell_count
        for i in range(grid.cell_count):
            for j in set(grid.neighborhood_indices(i)):
                appearance[j] += 1
        assert all(count == 5 for count in appearance)

    def test_degenerate_overlap_flag(self):
        assert ToroidalGrid(2, 2).degenerate_overlap()
        assert not ToroidalGrid(3, 3).degenerate_overlap()

    def test_all_coords(self, grid):
        coords = grid.all_coords()
        assert len(coords) == 16 and coords[0] == (0, 0) and coords[-1] == (3, 3)

    def test_rectangular_grid(self):
        grid = ToroidalGrid(2, 5)
        assert grid.cell_count == 10
        assert grid.coords_of(7) == (1, 2)
