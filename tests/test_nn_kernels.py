"""Fused train-step kernels: bit-identity, fallback, and machinery tests.

The contract under test (see :mod:`repro.nn.kernels`): with the same seed,
the graph-free fused path produces **bitwise identical** results to the
autograd tape — forward outputs, per-layer gradients, loss values, the
s x s fitness table, and whole training trajectories — and falls back to
the tape automatically whenever a network or loss is not kernel-eligible.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.config import NetworkSettings
from repro.coevolution.cell import Cell
from repro.coevolution.fitness import (
    _evaluate_subpopulations_loop,
    evaluate_subpopulations,
)
from repro.data.dataset import ArrayDataset
from repro.gan.networks import Discriminator, Generator
from repro.gan.pair import GANPair
from repro.gan.sampling import generate_images
from repro.nn import (
    Linear,
    Sequential,
    Tanh,
    Tensor,
    arena_of,
    kernel_for,
    kernels_disabled,
    loss_by_name,
    optimizer_by_name,
    parameters_to_vector,
    set_kernels_enabled,
)
from repro.nn.kernels import (
    fused_fitness_table,
    kernels_enabled,
    loss_kernel_for,
    sequential_recipe,
)

#: Small but representative topology: every hidden/output width is >= 4
#: (the row-block-stable GEMM regime); only the discriminator head is the
#: width-1 GEMV case the kernel handles per branch.
SETTINGS = NetworkSettings(latent_size=16, hidden_layers=2, hidden_neurons=32,
                           output_neurons=36)
BATCH = 20
LOSSES = ["bce", "heuristic", "mse"]


def build_pair(loss_name: str, seed: int = 0) -> GANPair:
    rng = np.random.default_rng(seed)
    return GANPair(Generator(SETTINGS, rng), Discriminator(SETTINGS, rng),
                   loss_by_name(loss_name), "adam", 2e-4)


def genome_bytes(pair: GANPair) -> bytes:
    return (parameters_to_vector(pair.generator).tobytes()
            + parameters_to_vector(pair.discriminator).tobytes())


# ---------------------------------------------------------------------------
# Eligibility and fallback
# ---------------------------------------------------------------------------


class TestEligibility:
    def test_networks_are_kernel_eligible(self):
        rng = np.random.default_rng(0)
        assert kernel_for(Generator(SETTINGS, rng)) is not None
        assert kernel_for(Discriminator(SETTINGS, rng)) is not None

    def test_pickled_network_falls_back(self):
        """Pickling drops the arena; the kernel must decline, not break."""
        rng = np.random.default_rng(0)
        generator = pickle.loads(pickle.dumps(Generator(SETTINGS, rng)))
        assert arena_of(generator) is None
        assert kernel_for(generator) is None
        # and the verdict is cached (same object -> same answer)
        assert kernel_for(generator) is None

    def test_unrecognized_stack_falls_back(self):
        class Odd(Sequential):
            def forward(self, x):
                return super().forward(x).relu()

        rng = np.random.default_rng(0)
        odd = Odd(Linear(4, 3, rng), Tanh())
        assert sequential_recipe(odd) is not None  # the stack itself is fine
        assert kernel_for(odd) is None             # ...but it has no arena

    def test_recipe_rejects_unsupported_layers(self):
        rng = np.random.default_rng(0)
        assert sequential_recipe(Sequential(Tanh())) is None          # leading act
        assert sequential_recipe(Sequential()) is None                # empty
        assert sequential_recipe(
            Sequential(Linear(4, 3, rng, bias=False))) is None        # no bias
        assert sequential_recipe(
            Sequential(Linear(4, 3, rng), Tanh(), Tanh())) is None    # double act
        assert sequential_recipe("not a module") is None

    def test_custom_loss_falls_back(self):
        from repro.nn.losses import BCELoss

        class TweakedBCE(BCELoss):
            name = "tweaked"

        assert loss_kernel_for(TweakedBCE()) is None
        assert loss_kernel_for(BCELoss()) is not None

    def test_kill_switch(self):
        assert kernels_enabled()
        with kernels_disabled():
            assert not kernels_enabled()
            with kernels_disabled():
                assert not kernels_enabled()
            assert not kernels_enabled()
        assert kernels_enabled()
        previous = set_kernels_enabled(False)
        assert previous is True
        assert set_kernels_enabled(True) is False


# ---------------------------------------------------------------------------
# Forward bit-identity
# ---------------------------------------------------------------------------


class TestForwardIdentity:
    @pytest.mark.parametrize("activation", ["tanh", "relu", "leaky_relu", "sigmoid"])
    def test_kernel_forward_matches_module(self, activation):
        settings = NetworkSettings(latent_size=16, hidden_layers=2,
                                   hidden_neurons=32, output_neurons=36,
                                   activation=activation)
        rng = np.random.default_rng(1)
        for net in (Generator(settings, rng), Discriminator(settings, rng)):
            kernel = kernel_for(net)
            assert kernel is not None
            x = rng.standard_normal((BATCH, kernel.in_dim))
            with kernels_disabled():
                expected = net(Tensor(x)).numpy()
            np.testing.assert_array_equal(kernel.forward(x), expected)

    def test_stacked_forward_matches_separate_calls(self):
        """Row blocks of one stacked forward == per-block autograd calls."""
        rng = np.random.default_rng(2)
        disc = Discriminator(SETTINGS, rng)
        kernel = kernel_for(disc)
        a = rng.standard_normal((BATCH, SETTINGS.output_neurons))
        b = rng.standard_normal((2 * BATCH, SETTINGS.output_neurons))
        stack = np.concatenate([a, b], axis=0)
        blocks = (slice(0, BATCH), slice(BATCH, 3 * BATCH))
        out = kernel.forward(stack, branches=blocks)
        with kernels_disabled():
            np.testing.assert_array_equal(out[:BATCH], disc(Tensor(a)).numpy())
            np.testing.assert_array_equal(out[BATCH:], disc(Tensor(b)).numpy())

    def test_generate_images_matches_autograd(self):
        rng = np.random.default_rng(3)
        generator = Generator(SETTINGS, rng)
        fused = generate_images(generator, 700, np.random.default_rng(7), batch=256)
        with kernels_disabled():
            tape = generate_images(generator, 700, np.random.default_rng(7), batch=256)
        np.testing.assert_array_equal(fused, tape)


# ---------------------------------------------------------------------------
# Gradient and training-step bit-identity
# ---------------------------------------------------------------------------


def _layer_grads(network) -> list[np.ndarray]:
    return [p.grad.copy() for p in network.parameters()]


class TestStepIdentity:
    @pytest.mark.parametrize("loss_name", LOSSES)
    def test_discriminator_step_grads_and_params(self, loss_name):
        real = np.random.default_rng(5).standard_normal((BATCH, SETTINGS.output_neurons))
        results = {}
        for mode in ("tape", "fused"):
            pair = build_pair(loss_name)
            rng = np.random.default_rng(9)
            if mode == "tape":
                with kernels_disabled():
                    loss = pair.train_discriminator_step(real, rng)
            else:
                loss = pair.train_discriminator_step(real, rng)
            results[mode] = (loss, _layer_grads(pair.discriminator),
                             parameters_to_vector(pair.discriminator))
        assert results["tape"][0] == results["fused"][0]
        for tape_g, fused_g in zip(results["tape"][1], results["fused"][1]):
            np.testing.assert_array_equal(tape_g, fused_g)
        np.testing.assert_array_equal(results["tape"][2], results["fused"][2])

    @pytest.mark.parametrize("loss_name", LOSSES)
    def test_generator_step_grads_and_params(self, loss_name):
        results = {}
        for mode in ("tape", "fused"):
            pair = build_pair(loss_name)
            rng = np.random.default_rng(11)
            if mode == "tape":
                with kernels_disabled():
                    loss = pair.train_generator_step(BATCH, rng)
            else:
                loss = pair.train_generator_step(BATCH, rng)
            results[mode] = (loss, _layer_grads(pair.generator),
                             parameters_to_vector(pair.generator))
        assert results["tape"][0] == results["fused"][0]
        for tape_g, fused_g in zip(results["tape"][1], results["fused"][1]):
            np.testing.assert_array_equal(tape_g, fused_g)
        np.testing.assert_array_equal(results["tape"][2], results["fused"][2])

    @pytest.mark.parametrize("loss_name", LOSSES)
    def test_50_iteration_trajectory_hash(self, loss_name):
        """The satellite contract: 50 training iterations, identical genome."""
        real_rng = np.random.default_rng(17)
        batches = [real_rng.standard_normal((BATCH, SETTINGS.output_neurons))
                   for _ in range(5)]
        genomes = {}
        losses = {}
        for mode in ("tape", "fused"):
            pair = build_pair(loss_name)
            rng = np.random.default_rng(23)
            seen = []
            for it in range(50):
                seen.append(pair.train_discriminator_step(batches[it % 5], rng)
                            if mode == "fused" else _tape(
                                pair.train_discriminator_step, batches[it % 5], rng))
                seen.append(pair.train_generator_step(BATCH, rng)
                            if mode == "fused" else _tape(
                                pair.train_generator_step, BATCH, rng))
            genomes[mode] = genome_bytes(pair)
            losses[mode] = seen
        assert losses["tape"] == losses["fused"]
        assert genomes["tape"] == genomes["fused"]

    def test_cross_adversary_steps_identical(self):
        """Neighbor opponents (the cellular algorithm's case) stay bit-equal."""
        real = np.random.default_rng(5).standard_normal((BATCH, SETTINGS.output_neurons))
        results = {}
        for mode in ("tape", "fused"):
            pair = build_pair("bce")
            rng_nets = np.random.default_rng(31)
            opponent_g = Generator(SETTINGS, rng_nets)
            opponent_d = Discriminator(SETTINGS, rng_nets)
            rng = np.random.default_rng(37)
            if mode == "tape":
                with kernels_disabled():
                    d = pair.train_discriminator_step(real, rng, generator=opponent_g)
                    g = pair.train_generator_step(BATCH, rng, discriminator=opponent_d)
            else:
                d = pair.train_discriminator_step(real, rng, generator=opponent_g)
                g = pair.train_generator_step(BATCH, rng, discriminator=opponent_d)
            results[mode] = (d, g, genome_bytes(pair))
        assert results["tape"] == results["fused"]


def _tape(fn, *args):
    with kernels_disabled():
        return fn(*args)


# ---------------------------------------------------------------------------
# Batched fitness table
# ---------------------------------------------------------------------------


class TestBatchedFitness:
    @pytest.mark.parametrize("loss_name", LOSSES)
    def test_batched_equals_loop_exactly(self, loss_name):
        rng = np.random.default_rng(41)
        gens = [Generator(SETTINGS, rng) for _ in range(5)]
        discs = [Discriminator(SETTINGS, rng) for _ in range(4)]
        loss = loss_by_name(loss_name)
        real = rng.standard_normal((BATCH, SETTINGS.output_neurons))

        rng_a, rng_b = np.random.default_rng(43), np.random.default_rng(43)
        batched = fused_fitness_table(gens, discs, loss, real, rng_a)
        loop = _evaluate_subpopulations_loop(gens, discs, loss, real, rng_b)
        assert batched is not None
        np.testing.assert_array_equal(batched.g_losses, loop.g_losses)
        np.testing.assert_array_equal(batched.d_losses, loop.d_losses)
        # identical RNG consumption: the paths stay interchangeable mid-run
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_dispatch_prefers_batched_and_falls_back(self):
        rng = np.random.default_rng(47)
        gens = [Generator(SETTINGS, rng) for _ in range(3)]
        discs = [Discriminator(SETTINGS, rng) for _ in range(3)]
        loss = loss_by_name("bce")
        real = rng.standard_normal((BATCH, SETTINGS.output_neurons))

        fused = evaluate_subpopulations(gens, discs, loss, real,
                                        np.random.default_rng(3))
        # one pickled (arena-less) member forces the loop for the whole table
        mixed = [pickle.loads(pickle.dumps(gens[0]))] + gens[1:]
        assert kernel_for(mixed[0]) is None
        loop = evaluate_subpopulations(mixed, discs, loss, real,
                                       np.random.default_rng(3))
        # pickling round-trips the exact parameter bytes, so the loop table
        # over the pickled member equals the batched table over the original
        np.testing.assert_array_equal(fused.g_losses, loop.g_losses)
        np.testing.assert_array_equal(fused.d_losses, loop.d_losses)

    def test_fitness_caching(self):
        table = fused_fitness_table(
            [Generator(SETTINGS, np.random.default_rng(0)) for _ in range(2)],
            [Discriminator(SETTINGS, np.random.default_rng(1)) for _ in range(2)],
            loss_by_name("bce"),
            np.random.default_rng(2).standard_normal((BATCH, SETTINGS.output_neurons)),
            np.random.default_rng(3))
        first = table.generator_fitness
        assert table.generator_fitness is first          # cached, not recomputed
        assert table.discriminator_fitness is table.discriminator_fitness
        np.testing.assert_array_equal(first, table.g_losses.mean(axis=1))


# ---------------------------------------------------------------------------
# Fallback training path (pickled, arena-less networks)
# ---------------------------------------------------------------------------


class TestFallbackTraining:
    def test_pickled_pair_trains_identically(self):
        """An unpickled (kernel-ineligible) pair must train — on the tape —
        to the exact same genome as the fused pair."""
        real = np.random.default_rng(5).standard_normal((BATCH, SETTINGS.output_neurons))
        fused_pair = build_pair("bce", seed=3)
        loose = build_pair("bce", seed=3)
        generator = pickle.loads(pickle.dumps(loose.generator))
        discriminator = pickle.loads(pickle.dumps(loose.discriminator))
        fallback_pair = GANPair(generator, discriminator, loss_by_name("bce"),
                                "adam", 2e-4)
        assert kernel_for(generator) is None and kernel_for(discriminator) is None

        rng_a, rng_b = np.random.default_rng(53), np.random.default_rng(53)
        for _ in range(3):
            assert (fused_pair.train_discriminator_step(real, rng_a)
                    == fallback_pair.train_discriminator_step(real, rng_b))
            assert (fused_pair.train_generator_step(BATCH, rng_a)
                    == fallback_pair.train_generator_step(BATCH, rng_b))
        assert genome_bytes(fused_pair) == genome_bytes(fallback_pair)


# ---------------------------------------------------------------------------
# Blocked optimizer sweep
# ---------------------------------------------------------------------------


class TestStepBlocked:
    @pytest.mark.parametrize("name", ["adam", "sgd", "rmsprop"])
    def test_blocked_equals_plain(self, name):
        rng = np.random.default_rng(59)
        plain_net = Generator(SETTINGS, rng)
        blocked_net = Generator(SETTINGS, np.random.default_rng(59))
        np.testing.assert_array_equal(parameters_to_vector(plain_net),
                                      parameters_to_vector(blocked_net))
        grads = np.random.default_rng(61).standard_normal(arena_of(plain_net).size)
        opts = []
        for net in (plain_net, blocked_net):
            arena = arena_of(net)
            opt = optimizer_by_name(name, net.parameters(), 1e-3, arena=arena)
            arena.grad[...] = grads
            opts.append(opt)
        for _ in range(3):
            opts[0].step()
            opts[1].step_blocked(block=1000)   # odd block, exercises the tail
        np.testing.assert_array_equal(parameters_to_vector(plain_net),
                                      parameters_to_vector(blocked_net))

    def test_blocked_without_arena_delegates(self):
        rng = np.random.default_rng(67)
        net = pickle.loads(pickle.dumps(Generator(SETTINGS, rng)))
        opt = optimizer_by_name("adam", net.parameters(), 1e-3)
        for p in net.parameters():
            p.grad = np.ones_like(p.data)
        before = parameters_to_vector(net)
        opt.step_blocked()
        assert opt.t == 1
        assert not np.array_equal(before, parameters_to_vector(net))


# ---------------------------------------------------------------------------
# Cell-level trajectory (the integration the PR rides on)
# ---------------------------------------------------------------------------


class TestCellTrajectory:
    def test_cell_iterations_bit_identical(self):
        from repro.config import ExperimentConfig
        import dataclasses

        config = ExperimentConfig()
        config = dataclasses.replace(
            config,
            network=SETTINGS,
            coevolution=dataclasses.replace(config.coevolution, iterations=8,
                                            grid_rows=1, grid_cols=1),
            execution=dataclasses.replace(config.execution, number_of_tasks=2),
            training=dataclasses.replace(config.training, batch_size=BATCH,
                                         batches_per_iteration=2),
            dataset_size=BATCH * 4,
        )
        images = np.random.default_rng(71).standard_normal(
            (config.dataset_size, SETTINGS.output_neurons))
        dataset = ArrayDataset(images)
        genomes = {}
        for mode in ("tape", "fused"):
            cell = Cell(config, 0, dataset)
            if mode == "tape":
                with kernels_disabled():
                    for _ in range(8):
                        cell.step([])
            else:
                for _ in range(8):
                    cell.step([])
            g, d = cell.center_genomes()
            genomes[mode] = g.parameters.tobytes() + d.parameters.tobytes()
        assert genomes["tape"] == genomes["fused"]


# ---------------------------------------------------------------------------
# Resource discipline: no immortal networks, bounded workspace cache
# ---------------------------------------------------------------------------


class TestResourceDiscipline:
    def test_kernelized_networks_are_collectable(self):
        """The kernel registry is weak-keyed; a kernel must not reference
        its own module, or every kernelized network (and its multi-MB arena
        slab) would be pinned forever in long-lived processes."""
        import gc
        import weakref

        refs = []
        for i in range(8):
            net = Generator(SETTINGS, np.random.default_rng(i))
            assert kernel_for(net) is not None
            refs.append(weakref.ref(net))
            del net
        gc.collect()
        assert all(ref() is None for ref in refs)

    def test_workspace_cache_is_bounded(self):
        """Data-dependent batch sizes (mixture multinomial counts, serving
        requests) must not grow the workspace cache without bound."""
        from repro.nn.kernels import _WORKSPACE_CACHE_LIMIT, _WORKSPACES

        net = Generator(SETTINGS, np.random.default_rng(0))
        kernel = kernel_for(net)
        for n in range(1, 3 * _WORKSPACE_CACHE_LIMIT):
            kernel.forward(np.zeros((n, SETTINGS.latent_size)))
        assert len(_WORKSPACES.pools) <= _WORKSPACE_CACHE_LIMIT


# ---------------------------------------------------------------------------
# Satellite: Tensor.__matmul__ diagnostics
# ---------------------------------------------------------------------------


def test_matmul_error_names_both_shapes():
    a = Tensor(np.zeros((2, 3, 4)))
    b = Tensor(np.zeros((4, 5)))
    with pytest.raises(ValueError, match=r"\(2, 3, 4\) @ \(4, 5\)"):
        a @ b
