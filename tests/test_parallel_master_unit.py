"""Unit tests for MasterProcess against a scripted fake comm manager."""

import threading
import time

import numpy as np
import pytest

from repro.coevolution.genome import Genome
from repro.parallel.comm_manager import CommManager
from repro.parallel.master import MasterProcess
from repro.parallel.messages import NodeInfo, SlaveResult, StatusReply
from tests.conftest import make_quick_config


class ScriptedMasterComm(CommManager):
    """Plays all slaves for a master under test."""

    def __init__(self, config, *, silent_ranks=frozenset(), result_delay_s=0.0):
        self.config = config
        self.cells = config.coevolution.cells
        self.silent_ranks = set(silent_ranks)
        self.result_delay_s = result_delay_s
        self.sent_tasks = {}
        self.aborts_sent = []
        self.contexts_built = False
        self._result_queue: list[SlaveResult] = []
        self._status_outbox: list[StatusReply] = []
        self._lock = threading.Lock()
        self._started_at = time.monotonic()

    @property
    def rank(self):
        return 0

    @property
    def size(self):
        return self.cells + 1

    # setup ------------------------------------------------------------------
    def collect_node_info(self):
        return [NodeInfo(rank, f"host{rank}", 100 + rank)
                for rank in range(1, self.size)]

    def send_run_task(self, slave_rank, task):
        self.sent_tasks[slave_rank] = task
        if slave_rank in self.silent_ranks:
            return  # this slave will never respond
        genome = Genome(np.zeros(4), 1e-3, "bce")
        result = SlaveResult(
            rank=slave_rank,
            cell_index=task.cell_index,
            generator_genome=genome,
            discriminator_genome=genome.copy(),
            mixture_weights=np.full(5, 0.2),
        )
        with self._lock:
            self._result_queue.append(result)

    def build_contexts(self, is_active_slave):
        self.contexts_built = True

    # heartbeat -------------------------------------------------------------------
    def request_status(self, slave_rank):
        if slave_rank in self.silent_ranks:
            return
        with self._lock:
            self._status_outbox.append(
                StatusReply(slave_rank, "processing", 1, time.time())
            )

    def drain_status_replies(self):
        with self._lock:
            replies, self._status_outbox = self._status_outbox, []
            return replies

    def send_abort(self, slave_rank):
        self.aborts_sent.append(slave_rank)

    # results -----------------------------------------------------------------------
    def try_collect_result(self, timeout):
        if time.monotonic() - self._started_at < self.result_delay_s:
            time.sleep(min(timeout, 0.01))
            return None
        with self._lock:
            if self._result_queue:
                return self._result_queue.pop(0)
        time.sleep(min(timeout, 0.01))
        return None


@pytest.fixture()
def config():
    return make_quick_config(2, 2, iterations=1)


class TestMasterHappyPath:
    def test_collects_all_results(self, config):
        comm = ScriptedMasterComm(config)
        outcome = MasterProcess(comm, config, heartbeat_interval_s=0.02).run()
        assert outcome.complete
        assert sorted(outcome.results) == [0, 1, 2, 3]
        assert comm.contexts_built
        assert len(comm.sent_tasks) == 4

    def test_run_tasks_carry_configuration(self, config):
        comm = ScriptedMasterComm(config)
        MasterProcess(comm, config, heartbeat_interval_s=0.02).run()
        task = comm.sent_tasks[1]
        assert task.cell_index == 0
        from repro.config import ExperimentConfig

        assert ExperimentConfig.from_json(task.config_json) == config
        assert task.assigned_node.startswith("node")

    def test_placement_covers_master_and_slaves(self, config):
        comm = ScriptedMasterComm(config)
        outcome = MasterProcess(comm, config, heartbeat_interval_s=0.02).run()
        assert set(outcome.placement) == {0, 1, 2, 3, 4}

    def test_node_info_gathered(self, config):
        comm = ScriptedMasterComm(config)
        outcome = MasterProcess(comm, config, heartbeat_interval_s=0.02).run()
        assert [i.rank for i in outcome.node_info] == [1, 2, 3, 4]

    def test_fault_at_forwarded_to_task(self, config):
        comm = ScriptedMasterComm(config)
        MasterProcess(comm, config, heartbeat_interval_s=0.02,
                      fault_at={2: 5}).run()
        assert comm.sent_tasks[3].fault_at_iteration == 5  # cell 2 -> rank 3
        assert comm.sent_tasks[1].fault_at_iteration is None

    def test_trace_records_protocol(self, config):
        comm = ScriptedMasterComm(config)
        outcome = MasterProcess(comm, config, heartbeat_interval_s=0.02,
                                trace=True).run()
        events = [e.event for e in outcome.trace.events]
        for expected in ("node info gathered", "placement decided",
                         "run tasks sent", "create heartbeat thread",
                         "final results gathered"):
            assert expected in events


class TestMasterFailureHandling:
    def test_silent_slave_declared_dead_and_survivors_aborted(self, config):
        comm = ScriptedMasterComm(config, silent_ranks={2},
                                  result_delay_s=0.4)
        outcome = MasterProcess(comm, config, heartbeat_interval_s=0.02,
                                miss_limit=3).run()
        assert outcome.dead_ranks == [2]
        assert not outcome.complete
        # Abort went to the three survivors only.
        assert sorted(comm.aborts_sent) == [1, 3, 4]
        # The survivors' results still arrived.
        assert sorted(outcome.results) == [0, 2, 3]
