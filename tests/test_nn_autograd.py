"""Unit tests for the autograd engine: op semantics and gradient math."""

import numpy as np
import pytest

from repro.nn.autograd import Tensor, concatenate, is_grad_enabled, no_grad, stack, tensor


def finite_difference(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar function of an array."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn()
        flat[i] = orig - eps
        down = fn()
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build_loss, params: Tensor, atol=1e-7):
    params.grad = None  # isolate from accumulation by earlier checks
    loss = build_loss()
    loss.backward()
    auto = params.grad.copy()
    numeric = finite_difference(lambda: build_loss().item(), params.data)
    np.testing.assert_allclose(auto, numeric, atol=atol, rtol=1e-5)


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_tensor_helper(self):
        t = tensor([1.0, 2.0], requires_grad=True)
        assert t.requires_grad

    def test_zeros_ones(self):
        assert np.all(Tensor.zeros((2, 3)).numpy() == 0)
        assert np.all(Tensor.ones(4).numpy() == 1)

    def test_item_requires_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_detach_shares_data(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        d.data[0] = 9.0
        assert t.data[0] == 9.0

    def test_copy_is_independent(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        c = t.copy()
        c.data[0] = 9.0
        assert t.data[0] == 1.0
        assert c.requires_grad

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3


class TestGradMode:
    def test_no_grad_disables_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._vjps is None

    def test_no_grad_restores(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_after_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()


class TestBackwardProtocol:
    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_needs_scalar_without_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_with_wrong_seed_shape_raises(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        y = t * 2
        with pytest.raises(ValueError):
            y.backward(np.ones(3))

    def test_gradients_accumulate_across_backwards(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 2.0).sum().backward()
        assert t.grad[0] == pytest.approx(4.0)

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad[0] == 0.0

    def test_shared_subexpression_gradient(self):
        # y = x*x + x*x uses the same node twice
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        z = (y + y).sum()
        z.backward()
        assert x.grad[0] == pytest.approx(12.0)

    def test_self_addition(self):
        x = Tensor([2.0], requires_grad=True)
        (x + x).sum().backward()
        assert x.grad[0] == pytest.approx(2.0)

    def test_deep_chain_does_not_recurse(self):
        # 5000-op chain would overflow a recursive topological sort.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 1.0
        y.sum().backward()
        assert x.grad[0] == pytest.approx(1.0)


class TestArithmeticGradients:
    def test_add(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradient(lambda: (x + 2.0).sum(), x)

    def test_radd(self):
        x = Tensor([1.0], requires_grad=True)
        (2.0 + x).sum().backward()
        assert x.grad[0] == 1.0

    def test_sub(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradient(lambda: (x - 5.0).sum(), x)

    def test_rsub(self):
        x = Tensor([1.0], requires_grad=True)
        (3.0 - x).sum().backward()
        assert x.grad[0] == -1.0

    def test_mul(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        other = rng.normal(size=(2, 3))
        check_gradient(lambda: (x * other).sum(), x)

    def test_div(self, rng):
        x = Tensor(rng.normal(size=(4,)) + 3.0, requires_grad=True)
        check_gradient(lambda: (x / 2.5).sum(), x)

    def test_div_denominator_gradient(self, rng):
        x = Tensor(rng.uniform(1.0, 2.0, size=(4,)), requires_grad=True)
        check_gradient(lambda: (7.0 / x).sum(), x, atol=1e-5)

    def test_neg(self):
        x = Tensor([1.0, -2.0], requires_grad=True)
        (-x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_pow(self, rng):
        x = Tensor(rng.uniform(0.5, 2.0, size=(5,)), requires_grad=True)
        check_gradient(lambda: (x ** 3).sum(), x, atol=1e-5)

    def test_pow_tensor_exponent_rejected(self):
        x = Tensor([1.0], requires_grad=True)
        with pytest.raises(TypeError):
            x ** Tensor([2.0])

    def test_matmul(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        check_gradient(lambda: (a @ b).sum(), a)
        check_gradient(lambda: (a @ b).sum(), b)

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            Tensor(np.ones(3)) @ Tensor(np.ones(3))

    def test_broadcast_add_bias(self, rng):
        x = Tensor(rng.normal(size=(5, 3)))
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradient(lambda: ((x + b) * (x + b)).sum(), b, atol=1e-5)

    def test_broadcast_scalar(self, rng):
        s = Tensor(np.array(2.0), requires_grad=True)
        x = Tensor(rng.normal(size=(4, 4)))
        check_gradient(lambda: (x * s).sum(), s, atol=1e-5)


class TestElementwiseGradients:
    @pytest.mark.parametrize("op,domain", [
        ("exp", (-2, 2)),
        ("log", (0.5, 3.0)),
        ("sqrt", (0.5, 4.0)),
        ("tanh", (-3, 3)),
        ("sigmoid", (-5, 5)),
        ("softplus", (-5, 5)),
        ("abs", (0.5, 3.0)),
    ])
    def test_unary_gradient(self, rng, op, domain):
        x = Tensor(rng.uniform(*domain, size=(6,)), requires_grad=True)
        check_gradient(lambda: getattr(x, op)().sum(), x, atol=1e-5)

    def test_relu_gradient_masks_negatives(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_leaky_relu_gradient(self):
        x = Tensor([-1.0, 2.0], requires_grad=True)
        x.leaky_relu(0.1).sum().backward()
        np.testing.assert_allclose(x.grad, [0.1, 1.0])

    def test_sigmoid_extreme_values_stable(self):
        x = Tensor([-1000.0, 1000.0])
        y = x.sigmoid().numpy()
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[1] == pytest.approx(1.0, abs=1e-12)
        assert np.all(np.isfinite(y))

    def test_softplus_extreme_values_stable(self):
        x = Tensor([-1000.0, 1000.0])
        y = x.softplus().numpy()
        assert y[0] == pytest.approx(0.0, abs=1e-12)
        assert y[1] == pytest.approx(1000.0)

    def test_clip_gradient(self):
        x = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_sum_all(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradient(lambda: x.sum(), x)

    def test_sum_axis(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradient(lambda: (x.sum(axis=0) ** 2).sum(), x, atol=1e-5)

    def test_sum_keepdims(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        y = x.sum(axis=1, keepdims=True)
        assert y.shape == (3, 1)

    def test_mean_value(self):
        x = Tensor([[1.0, 3.0], [5.0, 7.0]])
        assert x.mean().item() == pytest.approx(4.0)

    def test_mean_gradient_scales(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_mean_axis(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        check_gradient(lambda: (x.mean(axis=1) ** 2).sum(), x, atol=1e-5)

    def test_reshape_roundtrip_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        check_gradient(lambda: (x.reshape(3, 4) ** 2).sum(), x, atol=1e-5)

    def test_transpose_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        other = Tensor(rng.normal(size=(2, 2)))  # fixed across finite-diff evals
        check_gradient(lambda: (x.T @ other).sum(), x, atol=1e-5)

    def test_getitem_gradient_scatter(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        x[np.array([0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0])

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        x[np.array([0, 0])].sum().backward()
        assert x.grad[0] == pytest.approx(2.0)

    def test_concatenate_gradient(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        loss = (concatenate([a, b], axis=0) ** 2).sum()
        loss.backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)
        np.testing.assert_allclose(b.grad, 2 * b.data)

    def test_stack_gradient(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (stack([a, b]) ** 2).sum().backward()
        np.testing.assert_allclose(a.grad, 2 * a.data)
        np.testing.assert_allclose(b.grad, 2 * b.data)


class TestMlpGradient:
    def test_two_layer_network_against_finite_difference(self, rng):
        w1 = Tensor(rng.normal(size=(4, 8)) * 0.5, requires_grad=True)
        b1 = Tensor(np.zeros(8), requires_grad=True)
        w2 = Tensor(rng.normal(size=(8, 1)) * 0.5, requires_grad=True)
        x = Tensor(rng.normal(size=(10, 4)))

        def loss():
            hidden = (x @ w1 + b1).tanh()
            return ((hidden @ w2).sigmoid() ** 2).mean()

        for param in (w1, b1, w2):
            param.grad = None
        check_gradient(loss, w1, atol=1e-6)
        check_gradient(loss, b1, atol=1e-6)
        check_gradient(loss, w2, atol=1e-6)
