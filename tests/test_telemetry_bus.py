"""Unit tests for the :mod:`repro.telemetry.bus` span/counter bus."""

import pickle
import threading
import time

import pytest

from repro.mpi.stats import TransportStats, transport_stats_from_telemetry
from repro.profiling.timer import snapshot_from_telemetry
from repro.telemetry.bus import MergedTelemetry, SpanEvent, TelemetrySnapshot, merge_telemetry


class TestLevels:
    def test_off_by_default_records_nothing(self, telemetry_bus):
        telemetry_bus.set_level("off")
        with telemetry_bus.span("cell.train"):
            pass
        telemetry_bus.count("optim.steps")
        telemetry_bus.gauge("serving.queue_depth", 3)
        assert telemetry_bus.snapshot().empty

    def test_off_span_is_the_shared_null_singleton(self, telemetry_bus):
        telemetry_bus.set_level("off")
        first = telemetry_bus.span("a")
        second = telemetry_bus.span("b", attrs={"cell": 1})
        assert first is second  # no per-call allocation on the off path

    def test_level_predicates(self, telemetry_bus):
        telemetry_bus.set_level("off")
        assert not telemetry_bus.enabled() and not telemetry_bus.tracing()
        telemetry_bus.set_level("basic")
        assert telemetry_bus.enabled() and not telemetry_bus.tracing()
        telemetry_bus.set_level("trace")
        assert telemetry_bus.enabled() and telemetry_bus.tracing()

    def test_set_level_mirrors_environment(self, telemetry_bus):
        import os

        telemetry_bus.set_level("basic")
        assert os.environ["REPRO_TELEMETRY"] == "basic"
        assert telemetry_bus.level_name() == "basic"

    def test_unknown_level_rejected(self, telemetry_bus):
        with pytest.raises(ValueError, match="REPRO_TELEMETRY"):
            telemetry_bus.set_level("verbose")


class TestRecording:
    def test_basic_accumulates_totals_without_events(self, telemetry_bus):
        telemetry_bus.set_level("basic")
        for _ in range(3):
            with telemetry_bus.span("cell.train"):
                time.sleep(0.001)
        snap = telemetry_bus.snapshot()
        assert snap.span_counts["cell.train"] == 3
        assert snap.span_totals["cell.train"] > 0.0
        assert snap.events == []  # timeline only at trace level

    def test_trace_records_events_with_attrs(self, telemetry_bus):
        telemetry_bus.set_level("trace")
        with telemetry_bus.span("cell.train", attrs={"cell": 7}):
            pass
        snap = telemetry_bus.snapshot()
        (event,) = snap.events
        assert event.name == "cell.train"
        assert event.attrs == {"cell": 7}
        assert event.duration >= 0.0
        assert event.thread  # the recording thread's name

    def test_counters_and_gauge_peaks(self, telemetry_bus):
        telemetry_bus.set_level("basic")
        telemetry_bus.count("exchange.genomes_sent", 4)
        telemetry_bus.count("exchange.genomes_sent", 2)
        telemetry_bus.gauge("serving.queue_depth", 5)
        telemetry_bus.gauge("serving.queue_depth", 2)
        snap = telemetry_bus.snapshot()
        assert snap.counters["exchange.genomes_sent"] == 6
        assert snap.gauges["serving.queue_depth"] == 2  # last value
        assert snap.gauge_peaks["serving.queue_depth"] == 5  # peak kept

    def test_bind_rank_routes_thread_records(self, telemetry_bus):
        telemetry_bus.set_level("basic")

        def rank_program(rank):
            telemetry_bus.bind_rank(rank)
            telemetry_bus.count("mpi.messages_sent", rank + 1)

        threads = [threading.Thread(target=rank_program, args=(r,))
                   for r in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert telemetry_bus.snapshot(0).counters["mpi.messages_sent"] == 1
        assert telemetry_bus.snapshot(1).counters["mpi.messages_sent"] == 2
        assert telemetry_bus.snapshot(None).empty  # main thread recorded nothing

    def test_explicit_rank_beats_binding(self, telemetry_bus):
        telemetry_bus.set_level("basic")
        telemetry_bus.bind_rank(3)
        try:
            telemetry_bus.count("mpi.bytes_sent", 10, rank=1)
        finally:
            telemetry_bus.unbind_rank()
        assert telemetry_bus.snapshot(1).counters["mpi.bytes_sent"] == 10

    def test_reset_drops_buffers(self, telemetry_bus):
        telemetry_bus.set_level("basic")
        telemetry_bus.count("x")
        telemetry_bus.reset()
        assert telemetry_bus.snapshot().empty

    def test_snapshot_is_picklable(self, telemetry_bus):
        telemetry_bus.set_level("trace")
        with telemetry_bus.span("exchange.gather", rank=2):
            pass
        snap = telemetry_bus.snapshot(2)
        clone = pickle.loads(pickle.dumps(snap))
        assert clone.rank == 2
        assert clone.span_counts == snap.span_counts
        assert clone.events[0].name == "exchange.gather"


class TestClockAlignment:
    def test_wall_time_uses_the_anchor_pair(self):
        snap = TelemetrySnapshot(rank=0, anchor_wall=1000.0, anchor_mono=50.0)
        assert snap.wall_time(52.5) == pytest.approx(1002.5)

    def test_skewed_ranks_align_on_the_shared_axis(self):
        # Two ranks whose monotonic clocks differ wildly but whose wall
        # anchors agree: the same physical instant maps to the same wall
        # time through either snapshot.
        a = TelemetrySnapshot(rank=0, anchor_wall=500.0, anchor_mono=10.0)
        b = TelemetrySnapshot(rank=1, anchor_wall=500.0, anchor_mono=9000.0)
        assert a.wall_time(11.0) == pytest.approx(b.wall_time(9001.0))


class TestMerge:
    def _snap(self, rank, *, events=0, counters=None, spans=None):
        snap = TelemetrySnapshot(rank=rank)
        snap.counters = dict(counters or {})
        snap.span_totals = dict(spans or {})
        snap.span_counts = {name: 1 for name in snap.span_totals}
        snap.events = [SpanEvent("cell.train", 0.0, 0.1, "t")] * events
        return snap

    def test_sums_counters_and_span_totals(self):
        merged = merge_telemetry([
            self._snap(1, counters={"optim.steps": 4}, spans={"cell.train": 1.0}),
            self._snap(2, counters={"optim.steps": 6}, spans={"cell.train": 2.5}),
        ])
        assert merged.counter("optim.steps") == 10
        assert merged.span_seconds("cell.train") == pytest.approx(3.5)
        assert merged.span_counts["cell.train"] == 2
        assert merged.ranks == [1, 2]

    def test_same_rank_collapses_to_the_richer_snapshot(self):
        poor = self._snap(1, counters={"mpi.messages_sent": 5})
        rich = self._snap(1, events=3, counters={"mpi.messages_sent": 9},
                          spans={"cell.train": 1.0})
        merged = merge_telemetry([poor, rich])
        assert merged.ranks == [1]
        assert merged.counter("mpi.messages_sent") == 9  # not 14

    def test_none_holes_and_empty_snapshots_skipped(self):
        merged = merge_telemetry([None, TelemetrySnapshot(rank=3),
                                  self._snap(1, counters={"x": 1})])
        assert merged.ranks == [1]

    def test_launcher_buffer_sorts_last(self):
        merged = merge_telemetry([
            self._snap(None, counters={"socket.workers_admitted": 2}),
            self._snap(0, counters={"x": 1}),
        ])
        assert merged.ranks == [0, None]

    def test_per_rank_lookup(self):
        merged = merge_telemetry([self._snap(2, counters={"x": 1})])
        assert merged.per_rank(2) is not None
        assert merged.per_rank(7) is None

    def test_gauge_peaks_take_the_max(self):
        a = TelemetrySnapshot(rank=0, gauges={"q": 1.0}, gauge_peaks={"q": 4.0})
        b = TelemetrySnapshot(rank=1, gauges={"q": 2.0}, gauge_peaks={"q": 9.0})
        merged = merge_telemetry([a, b])
        assert merged.gauge_peaks["q"] == 9.0


class TestAdapters:
    def test_timer_snapshot_from_telemetry(self, telemetry_bus):
        telemetry_bus.set_level("basic")
        with telemetry_bus.span("cell.train", rank=1):
            time.sleep(0.001)
        with telemetry_bus.span("exchange.gather", rank=1):
            pass
        timer = snapshot_from_telemetry(telemetry_bus.snapshot(1))
        assert timer.calls("train") == 1
        assert timer.calls("gather") == 1
        assert timer.seconds("train") > 0.0

    def test_transport_stats_round_trip_through_the_bus(self, telemetry_bus):
        telemetry_bus.set_level("basic")
        stats = TransportStats(rank=2)
        stats.count_sent(b"x" * 100)
        stats.count_sent(b"y" * 50)
        stats.count_received(b"z" * 25)
        rebuilt = transport_stats_from_telemetry(telemetry_bus.snapshot(2))
        assert rebuilt.rank == 2
        assert rebuilt.messages_sent == stats.messages_sent == 2
        assert rebuilt.bytes_sent == stats.bytes_sent == 150
        assert rebuilt.messages_received == 1
        assert rebuilt.bytes_received == 25


class TestMergedTelemetryShape:
    def test_events_property_counts_all_ranks(self):
        a = TelemetrySnapshot(rank=0, events=[SpanEvent("s", 0, 1, "t")],
                              span_totals={"s": 1.0}, span_counts={"s": 1})
        merged = MergedTelemetry(snapshots=[a])
        assert merged.events == 1
