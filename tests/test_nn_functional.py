"""Tests for the numerically stable composite ops."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.autograd import Tensor


class TestSigmoidFamily:
    def test_sigmoid_matches_reference(self, rng):
        x = rng.normal(size=100)
        expected = 1.0 / (1.0 + np.exp(-x))
        np.testing.assert_allclose(F.sigmoid(x).numpy(), expected, rtol=1e-12)

    def test_log_sigmoid_stable_large_negative(self):
        y = F.log_sigmoid(Tensor([-500.0])).numpy()
        assert y[0] == pytest.approx(-500.0)

    def test_log_sigmoid_stable_large_positive(self):
        y = F.log_sigmoid(Tensor([500.0])).numpy()
        assert y[0] == pytest.approx(0.0, abs=1e-12)

    def test_softplus_identity(self, rng):
        x = rng.normal(size=50) * 3
        np.testing.assert_allclose(
            F.softplus(x).numpy(), np.log1p(np.exp(x)), rtol=1e-10
        )


class TestBceWithLogits:
    def test_matches_naive_formula_in_safe_range(self, rng):
        logits = rng.normal(size=(20, 1))
        targets = rng.integers(0, 2, size=(20, 1)).astype(float)
        p = 1.0 / (1.0 + np.exp(-logits))
        naive = -(targets * np.log(p) + (1 - targets) * np.log(1 - p)).mean()
        ours = F.binary_cross_entropy_with_logits(Tensor(logits), Tensor(targets))
        assert ours.item() == pytest.approx(naive, rel=1e-9)

    def test_scalar_target_broadcast(self, rng):
        logits = Tensor(rng.normal(size=(8, 1)))
        all_ones = F.binary_cross_entropy_with_logits(logits, 1.0).item()
        explicit = F.binary_cross_entropy_with_logits(
            logits, Tensor(np.ones((8, 1)))
        ).item()
        assert all_ones == pytest.approx(explicit)

    def test_extreme_logits_finite(self):
        loss = F.binary_cross_entropy_with_logits(Tensor([[-1e4], [1e4]]), 1.0)
        assert np.isfinite(loss.item())

    def test_perfect_prediction_near_zero(self):
        loss = F.binary_cross_entropy_with_logits(Tensor([[30.0]]), 1.0)
        assert loss.item() == pytest.approx(0.0, abs=1e-12)

    def test_gradient_direction(self):
        logits = Tensor([[0.0]], requires_grad=True)
        F.binary_cross_entropy_with_logits(logits, 1.0).backward()
        # d/dx [softplus(x) - x] = sigmoid(x) - 1 = -0.5 at 0
        assert logits.grad[0, 0] == pytest.approx(-0.5)


class TestMse:
    def test_value(self):
        loss = F.mse_loss(Tensor([[1.0, 2.0]]), Tensor([[3.0, 2.0]]))
        assert loss.item() == pytest.approx(2.0)

    def test_zero_at_match(self, rng):
        x = rng.normal(size=(4, 4))
        assert F.mse_loss(Tensor(x), Tensor(x.copy())).item() == 0.0


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(6, 10)) * 5
        probs = F.softmax(Tensor(logits)).numpy()
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(6), rtol=1e-12)
        assert np.all(probs >= 0)

    def test_softmax_shift_invariance(self, rng):
        logits = rng.normal(size=(3, 4))
        a = F.softmax(Tensor(logits)).numpy()
        b = F.softmax(Tensor(logits + 100.0)).numpy()
        np.testing.assert_allclose(a, b, rtol=1e-9)

    def test_softmax_extreme_logits_stable(self):
        probs = F.softmax(Tensor([[1000.0, 0.0, -1000.0]])).numpy()
        assert np.all(np.isfinite(probs))
        assert probs[0, 0] == pytest.approx(1.0)

    def test_log_softmax_consistent(self, rng):
        logits = rng.normal(size=(5, 7))
        logp = F.log_softmax(Tensor(logits)).numpy()
        np.testing.assert_allclose(np.exp(logp), F.softmax(Tensor(logits)).numpy(),
                                   rtol=1e-10)

    def test_cross_entropy_value(self):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1]])))
        labels = np.array([0])
        assert F.cross_entropy_with_logits(logits, labels).item() == pytest.approx(
            -np.log(0.7), rel=1e-9
        )

    def test_cross_entropy_rejects_2d_labels(self):
        with pytest.raises(ValueError):
            F.cross_entropy_with_logits(Tensor(np.zeros((2, 3))), np.zeros((2, 1), dtype=int))

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        labels = np.array([0, 1, 2, 1])
        F.cross_entropy_with_logits(logits, labels).backward()
        probs = F.softmax(Tensor(logits.data)).numpy()
        onehot = np.eye(3)[labels]
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 4, atol=1e-10)
