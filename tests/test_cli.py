"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main

from tests.conftest import make_random_checkpoint


@pytest.fixture()
def checkpoint_file(tmp_path):
    from repro.coevolution.checkpoint import save_checkpoint

    path = tmp_path / "model.npz"
    save_checkpoint(path, make_random_checkpoint())
    return str(path)


class TestParser:
    def test_grid_parsing(self):
        args = build_parser().parse_args(["run", "--grid", "3x4"])
        assert args.grid == (3, 4)

    def test_grid_parsing_rejects_garbage(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--grid", "three-by-three"])

    def test_grid_parsing_rejects_zero(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--grid", "0x3"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.backend == "process"
        assert args.loss == "bce"
        assert args.exchange == "neighbors"

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "5"])

    def test_socket_backend_accepted(self):
        args = build_parser().parse_args(
            ["run", "--backend", "socket", "--hosts", "a:3,b:2",
             "--bind", "0.0.0.0:5555"])
        assert args.backend == "socket"
        assert args.hosts == "a:3,b:2"
        assert args.bind == "0.0.0.0:5555"

    def test_hosts_requires_socket_backend(self):
        args = build_parser().parse_args(
            ["run", "--backend", "process", "--hosts", "a:5"])
        from repro.cli import _build_experiment

        with pytest.raises(SystemExit, match="socket"):
            _build_experiment(args)

    def test_worker_parser(self):
        args = build_parser().parse_args(
            ["worker", "--connect", "coord:5555", "--slots", "4",
             "--token", "abc"])
        assert args.connect == "coord:5555"
        assert args.slots == 4
        assert args.token == "abc"
        assert args.quiet is False

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "Cluster-UY" in out

    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        assert "TABLE I" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "TABLE II" in capsys.readouterr().out

    def test_fig1(self, capsys):
        assert main(["fig", "1"]) == 0
        assert "FIG. 1" in capsys.readouterr().out

    def test_fig2(self, capsys):
        assert main(["fig", "2"]) == 0
        assert "FIG. 2" in capsys.readouterr().out

    def test_run_sequential_tiny(self, capsys, cache_dir):
        code = main([
            "run", "--grid", "2x2", "--backend", "sequential",
            "--iterations", "1", "--dataset-size", "200",
            "--batch-size", "20", "--batches-per-iteration", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best cell:" in out

    def test_run_threaded_tiny(self, capsys, cache_dir):
        code = main([
            "run", "--grid", "2x2", "--backend", "threaded",
            "--iterations", "1", "--dataset-size", "200",
            "--batch-size", "20", "--batches-per-iteration", "1",
        ])
        assert code == 0

    def test_run_socket_tiny(self, capsys, cache_dir):
        """The CI smoke path: a 2x2 grid over two localhost workers —
        rendezvous, exchange, transport counters, shutdown."""
        code = main(["run", "--grid", "2x2", "--backend", "socket",
                     "--hosts", "127.0.0.1:3,127.0.0.1:2",
                     "--iterations", "1", "--dataset-size", "200",
                     "--batch-size", "10", "--batches-per-iteration", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "backend=socket" in out
        assert "transport traffic:" in out
        assert "rank 4:" in out  # per-rank counters printed in rank order

    def test_worker_unreachable_coordinator(self, capsys):
        code = main(["worker", "--connect", "127.0.0.1:1",
                     "--timeout", "0.5", "--quiet"])
        assert code == 2
        assert "cannot reach coordinator" in capsys.readouterr().err

    def test_run_with_checkpoint_then_resume(self, capsys, cache_dir, tmp_path):
        ckpt = str(tmp_path / "cli.ckpt.npz")
        code = main([
            "run", "--grid", "2x2", "--backend", "sequential",
            "--iterations", "2", "--dataset-size", "200",
            "--batch-size", "20", "--batches-per-iteration", "1",
            "--checkpoint", ckpt,
        ])
        assert code == 0
        assert "checkpoint written" in capsys.readouterr().out
        # A finished run resumes with zero remaining iterations.
        code = main(["resume", ckpt])
        assert code == 0
        assert "0 remaining" in capsys.readouterr().out

    def test_sample_writes_npz(self, capsys, tmp_path, checkpoint_file):
        out = str(tmp_path / "images.npz")
        code = main(["sample", "--checkpoint", checkpoint_file,
                     "--n", "12", "--seed", "5", "--out", out])
        assert code == 0
        printed = capsys.readouterr().out
        assert "checkpoint v1" in printed  # the summary() satellite
        with np.load(out) as archive:
            assert archive["images"].shape == (12, 784)
            assert int(archive["image_side"]) == 28

    def test_serve_load_test_prints_report(self, capsys, checkpoint_file):
        code = main(["serve", "--checkpoint", checkpoint_file,
                     "--requests", "40", "--concurrency", "4",
                     "--pool-capacity", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "checkpoint v1" in out
        assert "ServerStats" in out
        assert "throughput" in out

    def test_run_mustangs_loss(self, capsys, cache_dir):
        code = main([
            "run", "--grid", "2x2", "--backend", "sequential",
            "--iterations", "1", "--dataset-size", "200",
            "--batch-size", "20", "--batches-per-iteration", "1",
            "--loss", "mustangs",
        ])
        assert code == 0
