"""Tests for the synthetic-MNIST renderer and dataset cache."""

import numpy as np
import pytest

from repro.data.synthetic import (
    IMAGE_PIXELS,
    SyntheticMNIST,
    load_synthetic_mnist,
    render_digits,
)


class TestRenderDigits:
    def test_output_shape_and_range(self, rng):
        labels = np.array([0, 1, 2, 3])
        images = render_digits(labels, rng)
        assert images.shape == (4, IMAGE_PIXELS)
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_images_have_ink(self, rng):
        images = render_digits(np.arange(10), rng)
        # Every digit should paint a substantial number of pixels.
        ink = (images > 0.5).sum(axis=1)
        assert np.all(ink > 30)
        # ...but not flood the canvas.
        assert np.all(ink < IMAGE_PIXELS / 3)

    def test_jitter_makes_samples_differ(self, rng):
        images = render_digits(np.array([7, 7, 7, 7]), rng)
        diffs = [np.abs(images[0] - images[i]).max() for i in range(1, 4)]
        assert all(d > 0.1 for d in diffs)

    def test_same_rng_is_deterministic(self):
        a = render_digits(np.array([1, 2, 3]), np.random.default_rng(5))
        b = render_digits(np.array([1, 2, 3]), np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_chunking_invariant(self):
        labels = np.arange(20) % 10
        a = render_digits(labels, np.random.default_rng(1), chunk=4)
        b = render_digits(labels, np.random.default_rng(1), chunk=256)
        np.testing.assert_array_equal(a, b)

    def test_bad_labels_rejected(self, rng):
        with pytest.raises(ValueError):
            render_digits(np.array([10]), rng)
        with pytest.raises(ValueError):
            render_digits(np.array([[1, 2]]), rng)

    def test_classes_are_visually_distinct(self, rng):
        """Mean images of different digits differ far more than samples
        within one digit — the property the metric classifier depends on."""
        per_class = 20
        labels = np.repeat(np.arange(10), per_class)
        images = render_digits(labels, rng)
        means = images.reshape(10, per_class, -1).mean(axis=1)
        within = np.linalg.norm(
            images.reshape(10, per_class, -1) - means[:, None, :], axis=2
        ).mean()
        between = np.mean([
            np.linalg.norm(means[i] - means[j])
            for i in range(10) for j in range(i + 1, 10)
        ])
        # Within-class scatter includes the speckle noise floor, so the
        # margin is modest — but class means must still be farther apart.
        assert between > within


class TestLoadSyntheticMnist:
    def test_balanced_classes(self, cache_dir):
        ds = load_synthetic_mnist(200, seed=9)
        counts = np.bincount(ds.labels, minlength=10)
        assert np.all(counts == 20)

    def test_deterministic_per_seed(self, cache_dir):
        a = load_synthetic_mnist(50, seed=3, cache=False)
        b = load_synthetic_mnist(50, seed=3, cache=False)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self, cache_dir):
        a = load_synthetic_mnist(50, seed=3, cache=False)
        b = load_synthetic_mnist(50, seed=4, cache=False)
        assert np.abs(a.images - b.images).max() > 0.1

    def test_cache_roundtrip(self, cache_dir):
        fresh = load_synthetic_mnist(64, seed=11)       # renders + writes
        cached = load_synthetic_mnist(64, seed=11)      # loads from disk
        np.testing.assert_array_equal(fresh.images, cached.images)
        np.testing.assert_array_equal(fresh.labels, cached.labels)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            load_synthetic_mnist(0)

    def test_as_grid(self, cache_dir):
        ds = load_synthetic_mnist(10, seed=1)
        assert ds.as_grid(0).shape == (28, 28)

    def test_container_validation(self):
        with pytest.raises(ValueError):
            SyntheticMNIST(np.zeros((3, 10)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            SyntheticMNIST(np.zeros((3, IMAGE_PIXELS)), np.zeros(2, dtype=int))
