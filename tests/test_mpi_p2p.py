"""Point-to-point semantics of the message-passing runtime."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiWorkerError, Status, run_mpi
from repro.mpi.errors import MpiTimeoutError

BACKEND = "threaded"  # p2p semantics are identical across transports


def _pingpong(comm):
    rank = comm.Get_rank()
    if rank == 0:
        comm.send({"x": 1}, dest=1, tag=5)
        return comm.recv(source=1, tag=6)
    payload = comm.recv(source=0, tag=5)
    comm.send(payload["x"] + 1, dest=0, tag=6)
    return None


def _tag_filtering(comm):
    rank = comm.Get_rank()
    if rank == 0:
        comm.send("b", dest=1, tag=2)
        comm.send("a", dest=1, tag=1)
        return None
    # Receive out of send order using tags.
    first = comm.recv(source=0, tag=1)
    second = comm.recv(source=0, tag=2)
    return (first, second)


def _wildcard_status(comm):
    rank = comm.Get_rank()
    if rank == 0:
        received = []
        for _ in range(2):
            status = Status()
            value = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=status)
            received.append((value, status.Get_source(), status.Get_tag()))
        return sorted(received, key=lambda t: t[1])
    comm.send(f"from-{rank}", dest=0, tag=10 + rank)
    return None


def _fifo_per_pair(comm):
    rank = comm.Get_rank()
    if rank == 0:
        for i in range(50):
            comm.send(i, dest=1, tag=3)
        return None
    return [comm.recv(source=0, tag=3) for _ in range(50)]


def _isend_irecv(comm):
    rank = comm.Get_rank()
    if rank == 0:
        request = comm.isend(np.arange(5), dest=1, tag=9)
        request.wait()
        return None
    request = comm.irecv(source=0, tag=9)
    value = request.wait(timeout=10.0)
    return value.sum()


def _iprobe(comm):
    rank = comm.Get_rank()
    if rank == 0:
        assert not comm.iprobe(source=1, tag=4)
        comm.send("go", dest=1, tag=4)
        comm.recv(source=1, tag=4)
        return True
    comm.recv(source=0, tag=4)
    comm.send("back", dest=0, tag=4)
    return True


class TestPointToPoint:
    def test_pingpong(self):
        results = run_mpi(2, _pingpong, backend=BACKEND, timeout=30)
        assert results[0] == 2

    def test_tag_filtering_out_of_order(self):
        results = run_mpi(2, _tag_filtering, backend=BACKEND, timeout=30)
        assert results[1] == ("a", "b")

    def test_wildcards_and_status(self):
        results = run_mpi(3, _wildcard_status, backend=BACKEND, timeout=30)
        assert results[0] == [("from-1", 1, 11), ("from-2", 2, 12)]

    def test_fifo_per_sender(self):
        results = run_mpi(2, _fifo_per_pair, backend=BACKEND, timeout=30)
        assert results[1] == list(range(50))

    def test_isend_irecv(self):
        results = run_mpi(2, _isend_irecv, backend=BACKEND, timeout=30)
        assert results[1] == 10

    def test_iprobe(self):
        results = run_mpi(2, _iprobe, backend=BACKEND, timeout=30)
        assert all(results)


def _recv_timeout(comm):
    if comm.Get_rank() == 0:
        with pytest.raises(MpiTimeoutError):
            comm.recv(source=1, tag=1, timeout=0.05)
    return True


def _bad_dest(comm):
    if comm.Get_rank() == 0:
        with pytest.raises(ValueError):
            comm.send("x", dest=5)
    return True


def _bad_tag(comm):
    if comm.Get_rank() == 0:
        with pytest.raises(ValueError):
            comm.send("x", dest=1, tag=-3)
    return True


class TestErrors:
    def test_recv_timeout(self):
        run_mpi(2, _recv_timeout, backend=BACKEND, timeout=30)

    def test_bad_destination(self):
        run_mpi(2, _bad_dest, backend=BACKEND, timeout=30)

    def test_negative_user_tag_rejected(self):
        run_mpi(2, _bad_tag, backend=BACKEND, timeout=30)

    def test_worker_exception_propagates(self):
        def boom(comm):
            if comm.Get_rank() == 1:
                raise RuntimeError("deliberate")
            return "ok"

        with pytest.raises(MpiWorkerError, match="deliberate"):
            run_mpi(2, boom, backend=BACKEND, timeout=30)

    def test_allow_failures_returns_partial(self):
        def boom(comm):
            if comm.Get_rank() == 1:
                raise RuntimeError("deliberate")
            return "ok"

        results = run_mpi(2, boom, backend=BACKEND, timeout=30, allow_failures=True)
        assert results[0] == "ok"
        assert results[1] is None
        assert 1 in results.failures

    def test_job_timeout(self):
        def hang(comm):
            if comm.Get_rank() == 0:
                comm.recv(source=1, tag=1)  # never sent
            return None

        with pytest.raises(MpiTimeoutError):
            run_mpi(2, hang, backend=BACKEND, timeout=0.5)


def _numpy_payload(comm):
    rank = comm.Get_rank()
    if rank == 0:
        comm.send(np.full((100, 100), 7.0), dest=1)
        return None
    array = comm.recv(source=0)
    return float(array.mean())


class TestProcessBackend:
    """Spot checks that the process transport behaves identically."""

    def test_pingpong_process(self):
        results = run_mpi(2, _pingpong, backend="process", timeout=60)
        assert results[0] == 2

    def test_numpy_payload_crosses_processes(self):
        results = run_mpi(2, _numpy_payload, backend="process", timeout=60)
        assert results[1] == pytest.approx(7.0)

    def test_dead_process_detected(self):
        def die(comm):
            if comm.Get_rank() == 1:
                import os

                os._exit(13)  # no outcome posted
            return "alive"

        results = run_mpi(2, die, backend="process", timeout=60, allow_failures=True)
        assert results[0] == "alive"
        assert "exit" in results.failures[1] or "13" in results.failures[1]
