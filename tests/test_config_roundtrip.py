"""ExperimentConfig JSON round-trip coverage (ISSUE 2 satellite).

`to_json -> from_json` must reconstruct the exact configuration — including
the `with_grid` / `scaled` derived variants — and unknown keys must be
rejected at every level.
"""

import dataclasses

import pytest

from repro.config import (
    ConfigError,
    ExperimentConfig,
    default_config,
    paper_table1_config,
)


def roundtrip(config: ExperimentConfig) -> ExperimentConfig:
    return ExperimentConfig.from_json(config.to_json())


class TestRoundTrip:
    def test_paper_config(self):
        config = paper_table1_config()
        assert roundtrip(config) == config

    def test_default_config(self):
        config = default_config()
        assert roundtrip(config) == config

    @pytest.mark.parametrize("grid", [(1, 1), (2, 3), (4, 4)])
    def test_with_grid_variants(self, grid):
        config = paper_table1_config().with_grid(*grid)
        restored = roundtrip(config)
        assert restored == config
        assert restored.coevolution.grid_size == grid
        assert restored.execution.number_of_tasks == grid[0] * grid[1] + 1

    def test_scaled_variant(self):
        config = paper_table1_config(3, 3).scaled(
            iterations=7, dataset_size=1234, batch_size=37,
            batches_per_iteration=5)
        restored = roundtrip(config)
        assert restored == config
        assert restored.coevolution.iterations == 7
        assert restored.dataset_size == 1234
        assert restored.training.batch_size == 37
        assert restored.training.batches_per_iteration == 5

    def test_every_section_field_survives(self):
        config = default_config(3, 3, seed=99)
        mutation = dataclasses.replace(config.mutation, optimizer="sgd",
                                       mutation_probability=0.25)
        network = dataclasses.replace(config.network, activation="relu")
        config = dataclasses.replace(config, mutation=mutation, network=network)
        restored = roundtrip(config)
        assert restored.mutation.optimizer == "sgd"
        assert restored.mutation.mutation_probability == 0.25
        assert restored.network.activation == "relu"
        assert restored == config

    def test_double_roundtrip_is_stable(self):
        config = default_config(2, 2, seed=11)
        assert roundtrip(roundtrip(config)) == config

    def test_dict_roundtrip(self):
        config = default_config()
        assert ExperimentConfig.from_dict(config.to_dict()) == config


class TestUnknownKeyRejection:
    def test_unknown_top_level_key(self):
        payload = default_config().to_dict()
        payload["gpu_count"] = 8
        with pytest.raises(ConfigError, match="gpu_count"):
            ExperimentConfig.from_dict(payload)

    @pytest.mark.parametrize("section", [
        "network", "coevolution", "mutation", "training", "execution"])
    def test_unknown_section_key(self, section):
        payload = default_config().to_dict()
        payload[section]["surprise"] = 1
        with pytest.raises(ConfigError, match="surprise"):
            ExperimentConfig.from_dict(payload)

    def test_section_must_be_mapping(self):
        payload = default_config().to_dict()
        payload["training"] = [1, 2, 3]
        with pytest.raises(ConfigError, match="training"):
            ExperimentConfig.from_dict(payload)

    def test_invalid_value_rejected_after_parse(self):
        payload = default_config().to_dict()
        payload["training"]["batch_size"] = 0
        with pytest.raises(ConfigError, match="batch_size"):
            ExperimentConfig.from_dict(payload)
