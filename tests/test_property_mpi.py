"""Property-based tests for the message-passing runtime: collectives must
behave like their sequential specifications for arbitrary payloads."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import run_mpi

SETTINGS = dict(max_examples=15, deadline=None)

payloads = st.recursive(
    st.one_of(
        st.integers(-1000, 1000),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=8),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=4), children, max_size=3),
    ),
    max_leaves=8,
)


class TestCollectiveSpecs:
    @given(st.lists(payloads, min_size=2, max_size=5))
    @settings(**SETTINGS)
    def test_allgather_returns_rank_ordered_inputs(self, values):
        size = len(values)

        def program(comm):
            return comm.allgather(values[comm.Get_rank()])

        results = run_mpi(size, program, backend="threaded", timeout=60)
        for result in results:
            assert result == values

    @given(payloads, st.integers(2, 5))
    @settings(**SETTINGS)
    def test_bcast_replicates_root_value(self, value, size):
        def program(comm):
            data = value if comm.Get_rank() == 0 else None
            return comm.bcast(data, root=0)

        results = run_mpi(size, program, backend="threaded", timeout=60)
        assert all(r == value for r in results)

    @given(st.lists(st.integers(-100, 100), min_size=2, max_size=6))
    @settings(**SETTINGS)
    def test_reduce_matches_python_fold(self, values):
        size = len(values)

        def program(comm):
            return comm.reduce(values[comm.Get_rank()], op=lambda a, b: a + b, root=0)

        results = run_mpi(size, program, backend="threaded", timeout=60)
        assert results[0] == sum(values)

    @given(st.lists(payloads, min_size=2, max_size=5))
    @settings(**SETTINGS)
    def test_scatter_distributes_in_rank_order(self, values):
        size = len(values)

        def program(comm):
            items = values if comm.Get_rank() == 0 else None
            return comm.scatter(items, root=0)

        results = run_mpi(size, program, backend="threaded", timeout=60)
        assert list(results) == values

    @given(st.integers(2, 5), st.integers(0, 2 ** 16))
    @settings(**SETTINGS)
    def test_gather_numpy_arrays(self, size, seed):
        def program(comm):
            rng = np.random.default_rng(seed + comm.Get_rank())
            return comm.gather(rng.normal(size=4), root=0)

        results = run_mpi(size, program, backend="threaded", timeout=60)
        gathered = results[0]
        assert len(gathered) == size
        for rank, array in enumerate(gathered):
            expected = np.random.default_rng(seed + rank).normal(size=4)
            np.testing.assert_array_equal(array, expected)
