"""Tests for parameter initializers."""

import numpy as np
import pytest

from repro.nn.init import kaiming_normal, normal_init, xavier_normal, xavier_uniform, zeros_init


class TestInitializers:
    def test_normal_std(self, rng):
        w = normal_init((2000, 10), rng, std=0.05)
        assert w.std() == pytest.approx(0.05, rel=0.1)

    def test_xavier_uniform_bounds(self, rng):
        fan_in, fan_out = 30, 50
        w = xavier_uniform((fan_in, fan_out), rng)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        assert np.all(np.abs(w) <= limit)
        assert np.abs(w).max() > 0.8 * limit  # actually fills the range

    def test_xavier_normal_std(self, rng):
        fan_in, fan_out = 100, 100
        w = xavier_normal((fan_in, fan_out), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 200), rel=0.1)

    def test_kaiming_std(self, rng):
        fan_in = 400
        w = kaiming_normal((fan_in, 50), rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / fan_in), rel=0.1)

    def test_kaiming_leaky_slope_shrinks_gain(self, rng):
        a = kaiming_normal((400, 50), rng, negative_slope=0.0).std()
        b = kaiming_normal((400, 50), np.random.default_rng(0), negative_slope=1.0).std()
        assert b < a

    def test_zeros(self):
        assert np.all(zeros_init((3, 3)) == 0)

    def test_determinism_per_seed(self):
        a = xavier_normal((5, 5), np.random.default_rng(3))
        b = xavier_normal((5, 5), np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)

    def test_1d_shape_fans(self, rng):
        w = xavier_normal((64,), rng)
        assert w.shape == (64,)
