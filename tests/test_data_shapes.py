"""Tests for the higher-dimensional shapes dataset (paper future work)."""

import numpy as np
import pytest

from repro.data.shapes import (
    SHAPE_CLASSES,
    SHAPES_PIXELS,
    load_synthetic_shapes,
    render_shapes,
)


class TestRenderShapes:
    def test_shape_and_range(self, rng):
        images = render_shapes(np.arange(10), rng)
        assert images.shape == (10, SHAPES_PIXELS)
        assert images.min() >= 0.0 and images.max() <= 1.0

    def test_dimensionality_is_higher_than_mnist(self):
        assert SHAPES_PIXELS == 3072
        assert SHAPES_PIXELS > 784

    def test_ten_classes(self):
        assert len(SHAPE_CLASSES) == 10
        assert len(set(SHAPE_CLASSES)) == 10

    def test_warm_cool_palettes_differ_in_channels(self, rng):
        warm = render_shapes(np.zeros(8, dtype=int), rng)    # circle/warm
        cool = render_shapes(np.ones(8, dtype=int), rng)     # circle/cool
        warm_rgb = warm.reshape(8, 32, 32, 3).mean(axis=(0, 1, 2))
        cool_rgb = cool.reshape(8, 32, 32, 3).mean(axis=(0, 1, 2))
        assert warm_rgb[0] > cool_rgb[0]  # warm is redder
        assert cool_rgb[2] > warm_rgb[2]  # cool is bluer

    def test_classes_visually_distinct(self, rng):
        per_class = 12
        labels = np.repeat(np.arange(10), per_class)
        images = render_shapes(labels, rng)
        means = images.reshape(10, per_class, -1).mean(axis=1)
        within = np.linalg.norm(
            images.reshape(10, per_class, -1) - means[:, None, :], axis=2
        ).mean()
        between = np.mean([
            np.linalg.norm(means[i] - means[j])
            for i in range(10) for j in range(i + 1, 10)
        ])
        assert between > within

    def test_determinism(self):
        a = render_shapes(np.arange(5), np.random.default_rng(1))
        b = render_shapes(np.arange(5), np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_bad_labels(self, rng):
        with pytest.raises(ValueError):
            render_shapes(np.array([10]), rng)
        with pytest.raises(ValueError):
            render_shapes(np.array([[0]]), rng)


class TestLoadSyntheticShapes:
    def test_balanced(self):
        images, labels = load_synthetic_shapes(100, seed=3)
        counts = np.bincount(labels, minlength=10)
        assert np.all(counts == 10)

    def test_deterministic_per_seed(self):
        a_images, a_labels = load_synthetic_shapes(40, seed=5)
        b_images, b_labels = load_synthetic_shapes(40, seed=5)
        np.testing.assert_array_equal(a_images, b_images)
        np.testing.assert_array_equal(a_labels, b_labels)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            load_synthetic_shapes(0)


class TestHigherDimensionalTraining:
    def test_cellular_training_on_3072_dims(self, cache_dir):
        """The future-work experiment: the identical trainer on 32x32x3."""
        import dataclasses

        from repro.config import paper_table1_config
        from repro.coevolution import SequentialTrainer
        from repro.data.dataset import ArrayDataset
        from repro.data.transforms import to_tanh_range

        base = paper_table1_config(2, 2).scaled(
            iterations=1, dataset_size=100, batch_size=10, batches_per_iteration=1
        )
        network = dataclasses.replace(base.network, output_neurons=SHAPES_PIXELS)
        config = dataclasses.replace(base, network=network, dataset_size=100)
        images, labels = load_synthetic_shapes(100, seed=42)
        dataset = ArrayDataset(to_tanh_range(images), labels)
        result = SequentialTrainer(config, dataset).run()
        assert len(result.center_genomes) == 4
        # Genomes now carry the 3072-output network.
        g, _ = result.center_genomes[0]
        expected = 64 * 256 + 256 + 256 * 256 + 256 + 256 * SHAPES_PIXELS + SHAPES_PIXELS
        assert g.size == expected
