"""Tests for genomes, selection, mutation, mixture, and fitness evaluation."""

import numpy as np
import pytest

from repro.config import paper_table1_config
from repro.coevolution.fitness import evaluate_subpopulations
from repro.coevolution.genome import Genome, genome_from_pair, pair_from_genomes
from repro.coevolution.mixture import MixtureWeights, evolve_mixture, sample_mixture
from repro.coevolution.mutation import MIN_LEARNING_RATE, mutate_learning_rate
from repro.coevolution.selection import rank_by_fitness, tournament_select
from repro.gan import build_gan_pair
from repro.nn.serialize import parameters_to_vector


@pytest.fixture()
def config():
    return paper_table1_config(2, 2)


class TestGenome:
    def test_pair_roundtrip(self, config, rng):
        pair = build_gan_pair(config, rng)
        pair.learning_rate = 0.00042
        g_genome, d_genome = genome_from_pair(pair)
        rebuilt = pair_from_genomes(g_genome, d_genome, config, np.random.default_rng(1))
        np.testing.assert_array_equal(
            parameters_to_vector(pair.generator), parameters_to_vector(rebuilt.generator)
        )
        np.testing.assert_array_equal(
            parameters_to_vector(pair.discriminator),
            parameters_to_vector(rebuilt.discriminator),
        )
        assert rebuilt.learning_rate == pytest.approx(0.00042)
        assert rebuilt.loss.name == pair.loss.name

    def test_copy_is_deep(self):
        genome = Genome(np.ones(4), 0.001, "bce")
        clone = genome.copy()
        clone.parameters[0] = 5.0
        assert genome.parameters[0] == 1.0

    def test_write_into(self, config, rng):
        pair = build_gan_pair(config, rng)
        g_genome, _ = genome_from_pair(pair)
        g_genome.parameters[:] = 0.0
        g_genome.write_into(pair.generator)
        assert np.all(parameters_to_vector(pair.generator) == 0)

    def test_distance(self):
        a = Genome(np.zeros(3), 0.001, "bce")
        b = Genome(np.array([3.0, 4.0, 0.0]), 0.001, "bce")
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_arity_mismatch(self):
        with pytest.raises(ValueError):
            Genome(np.zeros(3), 0.001, "bce").distance_to(Genome(np.zeros(4), 0.001, "bce"))

    def test_validation(self):
        with pytest.raises(ValueError):
            Genome(np.zeros((2, 2)), 0.001, "bce")
        with pytest.raises(ValueError):
            Genome(np.zeros(3), 0.0, "bce")


class TestTournament:
    def test_picks_the_best_of_full_tournament(self, rng):
        fitness = [3.0, 1.0, 2.0]
        winner = tournament_select(fitness, rng, tournament_size=3)
        assert winner == 1

    def test_size_capped_at_population(self, rng):
        assert tournament_select([5.0], rng, tournament_size=10) == 0

    def test_winner_never_dominated_by_both_competitors(self):
        """k=2: the winner is never the strictly worse of the sampled pair."""
        fitness = [4.0, 2.0, 9.0, 1.0, 7.0]
        rng = np.random.default_rng(0)
        for _ in range(200):
            winner = tournament_select(fitness, rng, tournament_size=2)
            worst = max(range(5), key=lambda i: fitness[i])
            assert winner != worst or len(set(fitness)) == 1

    def test_selection_pressure(self):
        """The best individual wins more often than uniform chance."""
        fitness = [1.0, 2.0, 3.0, 4.0, 5.0]
        rng = np.random.default_rng(1)
        wins = sum(tournament_select(fitness, rng, 2) == 0 for _ in range(2000))
        assert wins / 2000 > 1.5 / 5  # uniform would be 0.2; k=2 gives ~0.36

    def test_empty_population_rejected(self, rng):
        with pytest.raises(ValueError):
            tournament_select([], rng)

    def test_bad_size_rejected(self, rng):
        with pytest.raises(ValueError):
            tournament_select([1.0], rng, tournament_size=0)

    def test_rank_by_fitness(self):
        assert rank_by_fitness([3.0, 1.0, 2.0, 1.0]) == [1, 3, 2, 0]


class TestLearningRateMutation:
    def test_probability_zero_never_mutates(self, rng):
        for _ in range(50):
            assert mutate_learning_rate(
                0.001, rng, mutation_rate=0.1, mutation_probability=0.0
            ) == 0.001

    def test_probability_one_always_mutates(self, rng):
        values = {
            mutate_learning_rate(0.001, rng, mutation_rate=1e-4, mutation_probability=1.0)
            for _ in range(20)
        }
        assert len(values) == 20

    def test_stays_positive(self, rng):
        for _ in range(200):
            out = mutate_learning_rate(
                1e-7, rng, mutation_rate=0.1, mutation_probability=1.0
            )
            assert out >= MIN_LEARNING_RATE

    def test_mutation_magnitude(self):
        """Mutations follow N(0, rate): sample std close to the rate."""
        rng = np.random.default_rng(2)
        deltas = [
            mutate_learning_rate(1.0, rng, mutation_rate=1e-4, mutation_probability=1.0) - 1.0
            for _ in range(3000)
        ]
        assert np.std(deltas) == pytest.approx(1e-4, rel=0.1)

    def test_expected_mutation_frequency(self):
        rng = np.random.default_rng(3)
        mutated = sum(
            mutate_learning_rate(1.0, rng, mutation_rate=1e-4, mutation_probability=0.5) != 1.0
            for _ in range(2000)
        )
        assert 0.4 < mutated / 2000 < 0.6

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            mutate_learning_rate(0.0, rng, mutation_rate=1e-4, mutation_probability=0.5)
        with pytest.raises(ValueError):
            mutate_learning_rate(1.0, rng, mutation_rate=-1.0, mutation_probability=0.5)
        with pytest.raises(ValueError):
            mutate_learning_rate(1.0, rng, mutation_rate=1e-4, mutation_probability=1.5)


class TestMixture:
    def test_uniform(self):
        mix = MixtureWeights.uniform(5)
        np.testing.assert_allclose(mix.weights, np.full(5, 0.2))

    def test_normalization_on_construction(self):
        mix = MixtureWeights(np.array([1.0, 3.0]))
        np.testing.assert_allclose(mix.weights, [0.25, 0.75])

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            MixtureWeights(np.array([-0.1, 1.1]))
        with pytest.raises(ValueError):
            MixtureWeights(np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            MixtureWeights(np.array([]))

    def test_mutated_remains_distribution(self, rng):
        mix = MixtureWeights.uniform(5)
        for _ in range(100):
            mix = mix.mutated(rng, scale=0.05)
            assert mix.weights.sum() == pytest.approx(1.0)
            assert np.all(mix.weights >= 0)

    def test_mutation_scale_controls_step(self):
        parent = MixtureWeights.uniform(5)
        small = parent.mutated(np.random.default_rng(0), scale=0.001)
        large = parent.mutated(np.random.default_rng(0), scale=0.3)
        assert np.abs(large.weights - 0.2).max() > np.abs(small.weights - 0.2).max()

    def test_evolve_keeps_better_offspring(self, rng):
        mix = MixtureWeights(np.array([0.9, 0.1]))
        # fitness: distance from the ideal [0.5, 0.5] — offspring closer wins
        fitness = lambda m: float(np.abs(m.weights - 0.5).sum())
        evolved, fit = evolve_mixture(mix, fitness, rng, scale=0.05)
        assert fit <= fitness(mix)

    def test_evolve_converges_toward_target(self):
        rng = np.random.default_rng(4)
        mix = MixtureWeights(np.array([0.99, 0.005, 0.005]))
        fitness = lambda m: float(np.abs(m.weights - 1 / 3).sum())
        for _ in range(300):
            mix, _ = evolve_mixture(mix, fitness, rng, scale=0.02)
        assert np.abs(mix.weights - 1 / 3).max() < 0.1

    def test_sample_mixture_respects_weights(self, config, rng):
        pairs = [build_gan_pair(config, np.random.default_rng(i)) for i in range(2)]
        generators = [p.generator for p in pairs]
        only_first = MixtureWeights(np.array([1.0, 0.0]))
        samples = sample_mixture(generators, only_first, 8, rng)
        assert samples.shape == (8, 784)

    def test_sample_mixture_arity_check(self, config, rng):
        pair = build_gan_pair(config, rng)
        with pytest.raises(ValueError):
            sample_mixture([pair.generator], MixtureWeights.uniform(2), 4, rng)

    def test_sample_mixture_zero_is_empty(self, config, rng):
        # The serving batching engine legitimately asks for zero samples.
        pair = build_gan_pair(config, rng)
        samples = sample_mixture([pair.generator], MixtureWeights.uniform(1), 0, rng)
        assert samples.shape == (0, 784)
        with pytest.raises(ValueError):
            sample_mixture([pair.generator], MixtureWeights.uniform(1), -1, rng)


class TestFitnessTable:
    def test_all_pairs_shape(self, config, rng):
        pairs = [build_gan_pair(config, np.random.default_rng(i)) for i in range(3)]
        generators = [p.generator for p in pairs]
        discriminators = [p.discriminator for p in pairs]
        batch = rng.uniform(-1, 1, size=(10, 784))
        table = evaluate_subpopulations(generators, discriminators,
                                        pairs[0].loss, batch, rng)
        assert table.g_losses.shape == (3, 3)
        assert table.d_losses.shape == (3, 3)
        assert np.all(np.isfinite(table.g_losses))
        assert np.all(np.isfinite(table.d_losses))

    def test_fitness_aggregation(self, config, rng):
        pairs = [build_gan_pair(config, np.random.default_rng(i)) for i in range(2)]
        batch = rng.uniform(-1, 1, size=(6, 784))
        table = evaluate_subpopulations([p.generator for p in pairs],
                                        [p.discriminator for p in pairs],
                                        pairs[0].loss, batch, rng)
        np.testing.assert_allclose(table.generator_fitness, table.g_losses.mean(axis=1))
        np.testing.assert_allclose(table.discriminator_fitness, table.d_losses.mean(axis=0))
        assert 0 <= table.best_generator < 2
        assert 0 <= table.best_discriminator < 2

    def test_empty_population_rejected(self, config, rng):
        with pytest.raises(ValueError):
            evaluate_subpopulations([], [], None, rng.normal(size=(4, 784)), rng)

    def test_evaluation_does_not_mutate_networks(self, config, rng):
        pair = build_gan_pair(config, rng)
        before = parameters_to_vector(pair.generator).copy()
        evaluate_subpopulations([pair.generator], [pair.discriminator],
                                pair.loss, rng.uniform(-1, 1, size=(5, 784)), rng)
        np.testing.assert_array_equal(before, parameters_to_vector(pair.generator))
