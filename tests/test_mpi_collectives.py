"""Collectives, communicator splitting, and Cartesian topologies."""

import operator

import pytest

from repro.mpi import run_mpi

BACKENDS = ("threaded", "process")


def _bcast(comm):
    data = {"cfg": [1, 2, 3]} if comm.Get_rank() == 0 else None
    return comm.bcast(data, root=0)


def _bcast_nonzero_root(comm):
    data = "payload" if comm.Get_rank() == 2 else None
    return comm.bcast(data, root=2)


def _gather(comm):
    return comm.gather(comm.Get_rank() ** 2, root=0)


def _allgather(comm):
    return comm.allgather(chr(ord("a") + comm.Get_rank()))


def _scatter(comm):
    items = [i * 10 for i in range(comm.Get_size())] if comm.Get_rank() == 0 else None
    return comm.scatter(items, root=0)


def _reduce(comm):
    return comm.reduce(comm.Get_rank() + 1, op=operator.add, root=0)


def _allreduce_max(comm):
    return comm.allreduce(comm.Get_rank(), op=max)


def _barrier_ordering(comm):
    """After a barrier, every rank has seen every pre-barrier send."""
    rank = comm.Get_rank()
    comm.send(rank, dest=(rank + 1) % comm.Get_size(), tag=1)
    comm.barrier()
    left = (rank - 1) % comm.Get_size()
    assert comm.iprobe(source=left, tag=1)
    return comm.recv(source=left, tag=1)


def _back_to_back_collectives(comm):
    """Consecutive collectives must not cross-match."""
    first = comm.allgather(("first", comm.Get_rank()))
    second = comm.allgather(("second", comm.Get_rank()))
    assert all(tag == "first" for tag, _ in first)
    assert all(tag == "second" for tag, _ in second)
    return True


@pytest.mark.parametrize("backend", BACKENDS)
class TestCollectives:
    def test_bcast(self, backend):
        results = run_mpi(4, _bcast, backend=backend, timeout=60)
        assert all(r == {"cfg": [1, 2, 3]} for r in results)

    def test_bcast_nonzero_root(self, backend):
        results = run_mpi(4, _bcast_nonzero_root, backend=backend, timeout=60)
        assert all(r == "payload" for r in results)

    def test_gather(self, backend):
        results = run_mpi(4, _gather, backend=backend, timeout=60)
        assert results[0] == [0, 1, 4, 9]
        assert all(r is None for r in results[1:])

    def test_allgather(self, backend):
        results = run_mpi(4, _allgather, backend=backend, timeout=60)
        assert all(r == ["a", "b", "c", "d"] for r in results)

    def test_scatter(self, backend):
        results = run_mpi(4, _scatter, backend=backend, timeout=60)
        assert results == [0, 10, 20, 30]

    def test_reduce(self, backend):
        results = run_mpi(4, _reduce, backend=backend, timeout=60)
        assert results[0] == 10

    def test_allreduce(self, backend):
        results = run_mpi(4, _allreduce_max, backend=backend, timeout=60)
        assert all(r == 3 for r in results)

    def test_barrier_orders_sends(self, backend):
        results = run_mpi(4, _barrier_ordering, backend=backend, timeout=60)
        assert sorted(results) == [0, 1, 2, 3]

    def test_sequenced_collectives(self, backend):
        assert all(run_mpi(3, _back_to_back_collectives, backend=backend, timeout=60))


def _scatter_wrong_arity(comm):
    if comm.Get_rank() == 0:
        with pytest.raises(ValueError):
            comm.scatter([1, 2], root=0)  # size is 3
    return True


class TestCollectiveErrors:
    def test_scatter_arity(self):
        # Only rank 0 validates; others would block, so give them nothing to do.
        def program(comm):
            if comm.Get_rank() == 0:
                with pytest.raises(ValueError):
                    comm.scatter([1, 2], root=0)
            return True

        assert all(run_mpi(3, program, backend="threaded", timeout=30))


def _split_evens_odds(comm):
    rank = comm.Get_rank()
    sub = comm.Split(color=rank % 2, key=rank)
    members = sub.allgather(rank)
    return (sub.Get_rank(), sub.Get_size(), members)


def _split_with_undefined(comm):
    rank = comm.Get_rank()
    sub = comm.Split(color=None if rank == 0 else 1, key=rank)
    if rank == 0:
        assert sub is None
        return "master-out"
    return sub.allgather(rank)


def _split_key_reorders(comm):
    rank = comm.Get_rank()
    # Reverse order via descending keys.
    sub = comm.Split(color=0, key=-rank)
    return (rank, sub.Get_rank())


def _split_traffic_isolated(comm):
    """Messages in a sub-communicator never leak into the parent."""
    rank = comm.Get_rank()
    sub = comm.Split(color=0, key=rank)
    if rank == 0:
        sub.send("sub-message", dest=1, tag=7)
        comm.send("world-message", dest=1, tag=7)
        return True
    world_msg = comm.recv(source=0, tag=7)
    sub_msg = sub.recv(source=0, tag=7)
    return (world_msg, sub_msg)


@pytest.mark.parametrize("backend", BACKENDS)
class TestSplit:
    def test_evens_odds(self, backend):
        results = run_mpi(5, _split_evens_odds, backend=backend, timeout=60)
        assert results[0] == (0, 3, [0, 2, 4])
        assert results[1] == (0, 2, [1, 3])
        assert results[4] == (2, 3, [0, 2, 4])

    def test_undefined_color(self, backend):
        results = run_mpi(3, _split_with_undefined, backend=backend, timeout=60)
        assert results[0] == "master-out"
        assert results[1] == [1, 2]

    def test_key_reorders(self, backend):
        results = run_mpi(3, _split_key_reorders, backend=backend, timeout=60)
        assert dict(results) == {0: 2, 1: 1, 2: 0}

    def test_traffic_isolation(self, backend):
        results = run_mpi(2, _split_traffic_isolated, backend=backend, timeout=60)
        assert results[1] == ("world-message", "sub-message")


def _cartesian(comm):
    cart = comm.Create_cart((3, 3), periods=True)
    rank = comm.Get_rank()
    coords = cart.Get_coords(rank)
    west_src, west_dst = cart.Shift(1, 1)
    north_src, north_dst = cart.Shift(0, 1)
    assert cart.Get_cart_rank(coords) == rank
    return (coords, west_src, west_dst, north_src, north_dst)


def _cartesian_nonperiodic(comm):
    cart = comm.Create_cart((4,), periods=False)
    return cart.Shift(0, 1)


class TestCartesian:
    def test_3x3_torus(self):
        results = run_mpi(9, _cartesian, backend="threaded", timeout=60)
        coords, west_src, west_dst, north_src, north_dst = results[4]  # center (1,1)
        assert coords == (1, 1)
        assert west_src == 3 and west_dst == 5
        assert north_src == 1 and north_dst == 7
        # wraparound at the west edge
        coords0 = results[0][0]
        assert coords0 == (0, 0)
        assert results[0][1] == 2  # west neighbor of column 0 wraps to column 2

    def test_nonperiodic_boundaries(self):
        results = run_mpi(4, _cartesian_nonperiodic, backend="threaded", timeout=60)
        assert results[0][0] is None      # no source left of rank 0
        assert results[3][1] is None      # no dest right of rank 3

    def test_dims_must_match_size(self):
        def program(comm):
            with pytest.raises(ValueError):
                comm.Create_cart((2, 2))
            # Everyone must still participate in the same number of
            # collective rounds -> nothing else to do.
            return True

        # Create_cart validates before any communication, so all 3 ranks
        # raise locally and return.
        assert all(run_mpi(3, program, backend="threaded", timeout=30))
