"""End-to-end telemetry: traced runs through every backend, merged per-rank
snapshots, and the Perfetto trace file a 2x2 socket run writes to disk.

Grids are 2x2 (5 ranks) throughout — matching the rest of the integration
suite's shape for distributed runs.
"""

import json

import pytest

from repro.api import Experiment
from repro.telemetry import summarize, to_perfetto, write_trace
from tests.conftest import make_quick_config


@pytest.fixture(scope="module")
def module_dataset():
    import os

    os.environ.setdefault("REPRO_CACHE_DIR", "/tmp/repro-test-cache")
    from repro.data.dataset import ArrayDataset
    from repro.data.synthetic import load_synthetic_mnist
    from repro.data.transforms import to_tanh_range

    raw = load_synthetic_mnist(400, seed=42)
    return ArrayDataset(to_tanh_range(raw.images), raw.labels)


class TestSequentialTraced:
    def test_trace_level_yields_spans_counters_and_events(
            self, telemetry_bus, module_dataset):
        config = make_quick_config(iterations=2)
        result = (Experiment(config).dataset(module_dataset)
                  .backend("sequential").telemetry("trace").run())
        merged = result.telemetry
        assert merged is not None
        # Table IV routines all appear, with paper-consistent call counts
        # (4 cells x 2 iterations; train spans twice per step — selection
        # and the gradient phase; sequential gathers once per iteration).
        assert merged.span_counts["cell.train"] == 16
        assert merged.span_counts["cell.update_genomes"] == 8
        assert merged.span_counts["cell.mutate"] == 8
        assert merged.span_counts["exchange.gather"] == 2
        assert merged.counter("optim.steps") > 0
        assert merged.counter("kernels.forward") > 0
        assert merged.events > 0  # trace level keeps the timeline

    def test_basic_level_keeps_totals_but_drops_the_timeline(
            self, telemetry_bus, module_dataset):
        config = make_quick_config(iterations=1)
        result = (Experiment(config).dataset(module_dataset)
                  .backend("sequential").telemetry("basic").run())
        merged = result.telemetry
        assert merged.span_counts["cell.train"] == 8  # 4 cells x 2 spans/step
        assert merged.events == 0

    def test_off_by_default(self, telemetry_bus, module_dataset):
        config = make_quick_config(iterations=1)
        result = (Experiment(config).dataset(module_dataset)
                  .backend("sequential").run())
        assert result.telemetry is None

    def test_trace_path_writes_perfetto_json(
            self, telemetry_bus, module_dataset, tmp_path):
        path = tmp_path / "seq-trace.json"
        config = make_quick_config(iterations=1)
        (Experiment(config).dataset(module_dataset)
         .backend("sequential").telemetry(trace_path=path).run())
        trace = json.loads(path.read_text())
        assert any(e["ph"] == "X" and e["name"] == "cell.train"
                   for e in trace["traceEvents"])


class TestDistributedTraced:
    def test_threaded_run_merges_per_rank_snapshots(
            self, telemetry_bus, module_dataset):
        config = make_quick_config(2, 2, iterations=2)
        result = (Experiment(config).dataset(module_dataset)
                  .backend("threaded").telemetry("trace").run())
        merged = result.telemetry
        # Master (rank 0) plus four slaves, launcher last if present.
        worker_ranks = [r for r in merged.ranks if r is not None]
        assert worker_ranks == [0, 1, 2, 3, 4]
        # Each slave trained its one cell for two iterations (two train
        # spans per step) and gathered neighbours each iteration.
        for rank in (1, 2, 3, 4):
            snap = merged.per_rank(rank)
            assert snap.span_counts["cell.train"] == 4
            assert snap.span_counts["exchange.gather"] == 2
        # Transport counters flowed through the bus.
        assert merged.counter("mpi.messages_sent") > 0
        assert merged.counter("mpi.bytes_sent") > 0

    def test_telemetry_matches_sequential_counters(
            self, telemetry_bus, module_dataset):
        """Backend equivalence extends to the telemetry: the same algorithm
        does the same work, so compute counters must agree bit for bit
        (exchange counters exist only on the distributed path)."""
        config = make_quick_config(2, 2, iterations=2)
        sequential = (Experiment(config).dataset(module_dataset)
                      .backend("sequential").telemetry("basic").run())
        telemetry_bus.reset()
        threaded = (Experiment(config).dataset(module_dataset)
                    .backend("threaded").telemetry("basic").run())
        for counter in ("optim.steps", "kernels.forward", "kernels.backward"):
            assert (sequential.telemetry.counter(counter)
                    == threaded.telemetry.counter(counter) > 0), counter
        assert threaded.telemetry.counter("exchange.genomes_sent") > 0

    def test_socket_run_writes_one_merged_trace_with_per_rank_tracks(
            self, telemetry_bus, module_dataset, tmp_path):
        """The PR's acceptance bar: a traced 2-worker socket run produces a
        single merged trace.json whose per-rank tracks carry train and
        exchange spans."""
        path = tmp_path / "trace.json"
        config = make_quick_config(2, 2, iterations=2)
        result = (Experiment(config)
                  .dataset("synthetic-mnist")
                  .backend("socket", hosts="127.0.0.1:3,127.0.0.1:2")
                  .telemetry(trace_path=path)
                  .run())
        assert result.complete
        merged = result.telemetry
        worker_ranks = [r for r in merged.ranks if r is not None]
        assert worker_ranks == [0, 1, 2, 3, 4]

        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        # One named track per rank.
        track_names = {e["args"]["name"] for e in events
                       if e["ph"] == "M" and e["name"] == "process_name"}
        assert {"rank 1", "rank 2", "rank 3", "rank 4"} <= track_names
        # Every slave rank's track shows training and exchange spans.
        for rank in (1, 2, 3, 4):
            names = {e["name"] for e in events
                     if e["ph"] == "X" and e["pid"] == rank}
            assert "cell.train" in names
            assert "exchange.gather" in names
        # ts monotone per track — loads cleanly in Perfetto.
        tracks = {}
        for e in events:
            if e["ph"] == "X":
                tracks.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
        for ts in tracks.values():
            assert ts == sorted(ts)
        # The repro-trace summary digests it.
        summary = summarize(trace)
        assert summary["routines"]["train"]["calls"] >= 8
        assert summary["wall_s"] > 0


class TestRunResultExport:
    def test_merged_view_feeds_both_exporters(
            self, telemetry_bus, module_dataset, tmp_path):
        from repro.telemetry import parse_prometheus, to_prometheus

        config = make_quick_config(iterations=1)
        result = (Experiment(config).dataset(module_dataset)
                  .backend("sequential").telemetry("trace").run())
        trace = to_perfetto(result.telemetry)
        assert trace["traceEvents"]
        samples = parse_prometheus(to_prometheus(result.telemetry))
        assert any(name == "repro_cell_train_seconds"
                   for name, _labels in samples)
        written = write_trace(tmp_path / "t.json", result.telemetry)
        assert written == trace
