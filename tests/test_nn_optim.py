"""Tests for SGD/Adam/RMSprop: step math, state handling, lr mutation hook."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, RMSprop, Tensor, optimizer_by_name


def quadratic_param(start=5.0):
    """A single scalar parameter with loss x^2 (gradient 2x)."""
    return Tensor(np.array([start]), requires_grad=True)


def grad_step(param):
    param.grad = 2.0 * param.data  # d(x^2)/dx


class TestSgd:
    def test_plain_step_formula(self):
        p = quadratic_param(1.0)
        opt = SGD([p], learning_rate=0.1)
        grad_step(p)
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 2.0)

    def test_momentum_accumulates(self):
        p = quadratic_param(1.0)
        opt = SGD([p], learning_rate=0.1, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()
        first = p.data[0]
        p.grad = np.array([1.0])
        opt.step()
        # second velocity = 0.9*1 + 1 = 1.9
        assert (first - p.data[0]) == pytest.approx(0.1 * 1.9)

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SGD([quadratic_param()], learning_rate=0.1, momentum=1.0)

    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        opt = SGD([p], learning_rate=0.1)
        for _ in range(100):
            grad_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-6

    def test_skips_parameters_without_grad(self):
        p = quadratic_param(1.0)
        q = quadratic_param(1.0)
        opt = SGD([p, q], learning_rate=0.1)
        grad_step(p)
        opt.step()
        assert q.data[0] == 1.0


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, the very first Adam step is ~lr * sign(grad).
        p = quadratic_param(1.0)
        opt = Adam([p], learning_rate=0.01)
        p.grad = np.array([3.7])
        opt.step()
        assert (1.0 - p.data[0]) == pytest.approx(0.01, rel=1e-6)

    def test_matches_reference_implementation(self, rng):
        data = rng.normal(size=(4,))
        p = Tensor(data.copy(), requires_grad=True)
        opt = Adam([p], learning_rate=0.002, betas=(0.9, 0.999), eps=1e-8)
        # Reference loop
        ref = data.copy()
        m = np.zeros(4)
        v = np.zeros(4)
        for t in range(1, 6):
            g = 2 * ref  # same loss for both: x^2
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g * g
            m_hat = m / (1 - 0.9 ** t)
            v_hat = v / (1 - 0.999 ** t)
            ref = ref - 0.002 * m_hat / (np.sqrt(v_hat) + 1e-8)

            p.grad = 2 * p.data
            opt.step()
        # The folded-scalar formulation differs from the textbook one only
        # in where eps is applied; tolerance covers that.
        np.testing.assert_allclose(p.data, ref, atol=1e-6)

    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        opt = Adam([p], learning_rate=0.5)
        for _ in range(300):
            grad_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-3

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], learning_rate=0.1, betas=(1.0, 0.999))

    def test_state_roundtrip(self):
        p = quadratic_param(1.0)
        opt = Adam([p], learning_rate=0.01)
        for _ in range(3):
            grad_step(p)
            opt.step()
        state = opt.state_arrays()
        p2 = quadratic_param(float(p.data[0]))
        opt2 = Adam([p2], learning_rate=0.5)
        opt2.load_state_arrays(state)
        assert opt2.t == opt.t
        assert opt2.learning_rate == 0.01
        grad_step(p)
        opt.step()
        grad_step(p2)
        opt2.step()
        np.testing.assert_allclose(p.data, p2.data, rtol=1e-12)


class TestRmsprop:
    def test_step_formula(self):
        p = quadratic_param(1.0)
        opt = RMSprop([p], learning_rate=0.01, alpha=0.9)
        p.grad = np.array([2.0])
        opt.step()
        sq = 0.1 * 4.0
        expected = 1.0 - 0.01 * 2.0 / (np.sqrt(sq) + 1e-8)
        assert p.data[0] == pytest.approx(expected, rel=1e-9)

    def test_converges_on_quadratic(self):
        p = quadratic_param(5.0)
        opt = RMSprop([p], learning_rate=0.05)
        for _ in range(500):
            grad_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            RMSprop([quadratic_param()], learning_rate=0.1, alpha=1.5)


class TestCommon:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], learning_rate=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([quadratic_param()], learning_rate=0.0)

    def test_zero_grad_clears(self):
        p = quadratic_param(1.0)
        opt = SGD([p], learning_rate=0.1)
        grad_step(p)
        opt.zero_grad()
        assert np.all(p.grad == 0)

    def test_learning_rate_is_mutable(self):
        """The coevolutionary lr mutation adjusts the attribute directly."""
        p = quadratic_param(1.0)
        opt = Adam([p], learning_rate=0.01)
        opt.learning_rate = 0.123
        p.grad = np.array([1.0])
        opt.step()
        assert (1.0 - p.data[0]) == pytest.approx(0.123, rel=1e-6)

    @pytest.mark.parametrize("name,cls", [
        ("sgd", SGD), ("adam", Adam), ("rmsprop", RMSprop),
    ])
    def test_factory(self, name, cls):
        opt = optimizer_by_name(name, [quadratic_param()], 0.01)
        assert isinstance(opt, cls)

    def test_factory_unknown(self):
        with pytest.raises(ValueError, match="unknown optimizer"):
            optimizer_by_name("lion", [quadratic_param()], 0.01)
