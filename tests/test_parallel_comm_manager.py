"""Unit tests for MpiCommManager over small real worlds (threaded)."""

import threading

import numpy as np
import pytest

from repro.coevolution.genome import Genome
from repro.mpi import run_mpi
from repro.parallel.comm_manager import EXCHANGE_MODES, ExchangeAborted, MpiCommManager
from repro.parallel.grid import Grid
from repro.parallel.messages import ExchangePayload, NodeInfo, RunTask, SlaveResult, StatusReply


def make_payload(cell, iteration=0, size=8):
    genome = Genome(np.full(size, float(cell)), 1e-3, "bce")
    return ExchangePayload(cell, iteration, genome, genome.copy())


class TestSetupPhase:
    def test_node_info_collection(self):
        def program(world):
            comm = MpiCommManager(world)
            if comm.is_master:
                infos = comm.collect_node_info()
                return [(i.rank, i.node_name) for i in infos]
            comm.send_node_info(NodeInfo(comm.rank, f"host{comm.rank}", 0))
            return None

        results = run_mpi(4, program, backend="threaded", timeout=30)
        assert results[0] == [(1, "host1"), (2, "host2"), (3, "host3")]

    def test_run_task_roundtrip(self):
        task = RunTask("{}", 0, Grid(1, 2).to_payload(), "node00")

        def program(world):
            comm = MpiCommManager(world)
            if comm.is_master:
                comm.send_run_task(1, task)
                comm.send_run_task(2, task)
                return "sent"
            return comm.wait_for_run_task().cell_index

        results = run_mpi(3, program, backend="threaded", timeout=30)
        assert results[1] == 0 and results[2] == 0

    def test_build_contexts_local_excludes_master(self):
        def program(world):
            comm = MpiCommManager(world)
            comm.build_contexts(is_active_slave=not comm.is_master)
            if comm.is_master:
                return comm.local is None and comm.global_ is not None
            return (comm.local.Get_size(), comm.global_.Get_size())

        results = run_mpi(3, program, backend="threaded", timeout=30)
        assert results[0] is True
        assert results[1] == (2, 3)
        assert results[2] == (2, 3)


class TestHeartbeatPlumbing:
    def test_status_request_reply_cycle(self):
        def program(world):
            comm = MpiCommManager(world)
            if comm.is_master:
                comm.request_status(1)
                import time

                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    replies = comm.drain_status_replies()
                    if replies:
                        return (replies[0].rank, replies[0].state)
                return None
            # Slave: poll until the request arrives, answer once.
            import time

            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if comm.poll_status_request():
                    comm.reply_status(StatusReply(comm.rank, "processing", 3, 0.0))
                    return "replied"
            return None

        results = run_mpi(2, program, backend="threaded", timeout=30)
        assert results[0] == (1, "processing")
        assert results[1] == "replied"

    def test_abort_flag(self):
        def program(world):
            comm = MpiCommManager(world)
            if comm.is_master:
                comm.send_abort(1)
                return None
            import time

            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if comm.poll_abort():
                    return True
            return False

        results = run_mpi(2, program, backend="threaded", timeout=30)
        assert results[1] is True

    def test_poll_with_nothing_pending(self):
        def program(world):
            comm = MpiCommManager(world)
            if comm.is_master:
                return comm.drain_status_replies() == []
            return (not comm.poll_status_request()) and (not comm.poll_abort())

        assert all(run_mpi(2, program, backend="threaded", timeout=30))


def _exchange_world(mode, grid_rows=2, grid_cols=2, iterations=1):
    """All slaves exchange; returns per-slave dict of neighbor -> payload."""
    grid_payload = Grid(grid_rows, grid_cols).to_payload()

    def program(world):
        comm = MpiCommManager(world)
        comm.build_contexts(is_active_slave=not comm.is_master)
        if comm.is_master:
            return None
        grid = Grid.from_payload(grid_payload)
        cell = comm.rank - 1
        out = None
        for iteration in range(iterations):
            received = comm.exchange_genomes(
                grid, cell, make_payload(cell, iteration), mode
            )
            out = {c: p.generator_genome.parameters[0] for c, p in received.items()}
            if mode == "async" and iteration < iterations - 1:
                # Async never blocks; give in-flight messages the window the
                # real training step provides before the next drain.
                import time

                time.sleep(0.05)
        return out

    size = grid_rows * grid_cols + 1
    return run_mpi(size, program, backend="threaded", timeout=60)


class TestExchangeModes:
    def test_neighbors_mode_delivers_all_neighbors(self):
        results = _exchange_world("neighbors")
        grid = Grid(2, 2)
        for rank in range(1, 5):
            cell = rank - 1
            expected = {c: float(c) for c in grid.neighbor_cells(cell)}
            assert results[rank] == expected

    def test_allgather_mode_equivalent(self):
        assert _exchange_world("allgather") == _exchange_world("neighbors")

    def test_neighbors_mode_3x3(self):
        results = _exchange_world("neighbors", 3, 3)
        grid = Grid(3, 3)
        for rank in range(1, 10):
            cell = rank - 1
            assert set(results[rank]) == set(grid.neighbor_cells(cell))

    def test_async_mode_eventually_delivers(self):
        # After a couple of iterations the async cache holds all neighbors.
        results = _exchange_world("async", iterations=3)
        grid = Grid(2, 2)
        for rank in range(1, 5):
            assert set(results[rank]) == set(grid.neighbor_cells(rank - 1))

    def test_unknown_mode_raises(self):
        def program(world):
            comm = MpiCommManager(world)
            comm.build_contexts(is_active_slave=not comm.is_master)
            if comm.is_master:
                return True
            with pytest.raises(ValueError, match="unknown exchange mode"):
                comm.exchange_genomes(Grid(1, 2), comm.rank - 1,
                                      make_payload(comm.rank - 1), "bogus")
            return True

        assert all(run_mpi(3, program, backend="threaded", timeout=30))

    def test_exchange_abort_raises(self):
        """A set abort event interrupts a blocking neighbor exchange."""
        def program(world):
            comm = MpiCommManager(world)
            comm.build_contexts(is_active_slave=not comm.is_master)
            if comm.is_master:
                return True
            if comm.rank == 1:
                # Cell 0 will wait forever: its neighbor (cell 1) never sends.
                event = threading.Event()
                event.set()
                with pytest.raises(ExchangeAborted):
                    comm.exchange_genomes(Grid(1, 2), 0, make_payload(0),
                                          "neighbors", abort_event=event)
            return True

        assert all(run_mpi(3, program, backend="threaded", timeout=30))

    def test_modes_registry(self):
        assert EXCHANGE_MODES == ("neighbors", "allgather", "async")


class TestResults:
    def test_result_transfer(self, rng):
        genome = Genome(rng.normal(size=8), 1e-3, "bce")
        result = SlaveResult(1, 0, genome, genome.copy(), np.full(5, 0.2))

        def program(world):
            comm = MpiCommManager(world)
            if comm.is_master:
                collected = comm.try_collect_result(timeout=5.0)
                return collected.cell_index
            comm.send_result(result)
            return None

        results = run_mpi(2, program, backend="threaded", timeout=30)
        assert results[0] == 0

    def test_collect_timeout_returns_none(self):
        def program(world):
            comm = MpiCommManager(world)
            if comm.is_master:
                return comm.try_collect_result(timeout=0.05)
            return None

        results = run_mpi(2, program, backend="threaded", timeout=30)
        assert results[0] is None
