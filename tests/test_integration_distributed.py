"""Integration tests: the full master-slave system against the sequential
baseline, exchange-mode variants, tracing, and fault tolerance."""

import numpy as np
import pytest

from repro.coevolution import SequentialTrainer
from repro.parallel import DistributedRunner
from tests.conftest import make_quick_config


@pytest.fixture(scope="module")
def module_dataset():
    import os

    os.environ.setdefault("REPRO_CACHE_DIR", "/tmp/repro-test-cache")
    from repro.data.dataset import ArrayDataset
    from repro.data.synthetic import load_synthetic_mnist
    from repro.data.transforms import to_tanh_range

    raw = load_synthetic_mnist(400, seed=42)
    return ArrayDataset(to_tanh_range(raw.images), raw.labels)


class TestSequentialDistributedEquivalence:
    """The paper's parallelization must not change the algorithm: with the
    same seed, the distributed system reproduces the sequential genomes."""

    @pytest.mark.parametrize("rows,cols", [(2, 2), (3, 3)])
    def test_threaded_backend_equivalence(self, module_dataset, rows, cols):
        config = make_quick_config(rows, cols, iterations=2)
        sequential = SequentialTrainer(config, module_dataset).run()
        distributed = DistributedRunner(
            config, backend="threaded", dataset=module_dataset
        ).run()
        for cell in range(rows * cols):
            sg, sd = sequential.center_genomes[cell]
            dg, dd = distributed.training.center_genomes[cell]
            np.testing.assert_array_equal(sg.parameters, dg.parameters)
            np.testing.assert_array_equal(sd.parameters, dd.parameters)
            assert sg.learning_rate == pytest.approx(dg.learning_rate)

    def test_process_backend_equivalence(self, module_dataset):
        config = make_quick_config(2, 2, iterations=2)
        sequential = SequentialTrainer(config, module_dataset).run()
        distributed = DistributedRunner(
            config, backend="process", dataset=module_dataset
        ).run()
        for cell in range(4):
            sg, _ = sequential.center_genomes[cell]
            dg, _ = distributed.training.center_genomes[cell]
            np.testing.assert_allclose(sg.parameters, dg.parameters, atol=1e-12)

    def test_socket_backend_equivalence(self, module_dataset):
        """The TCP substrate is still the same algorithm: with the same
        seed, two localhost workers reproduce the process-backend genomes
        bit for bit (the acceptance bar of the transport refactor).  The
        facade path is exercised deliberately — registry dataset, so each
        worker renders its corpus per node instead of receiving it."""
        from repro.api import Experiment

        config = make_quick_config(2, 2, iterations=2)
        process = DistributedRunner(
            config, backend="process", dataset=module_dataset
        ).run()
        socketed = (Experiment(config)
                    .dataset("synthetic-mnist")
                    .backend("socket", hosts="127.0.0.1:3,127.0.0.1:2")
                    .run())
        assert socketed.complete
        for cell in range(4):
            pg, pd = process.training.center_genomes[cell]
            sg, sd = socketed.center_genomes[cell]
            np.testing.assert_array_equal(pg.parameters, sg.parameters)
            np.testing.assert_array_equal(pd.parameters, sd.parameters)
        # Real placement: ranks 0-2 on worker A, ranks 3-4 on worker B.
        placement = socketed.distributed.outcome_placement
        assert set(placement) == {0, 1, 2, 3, 4}
        assert all(node == "127.0.0.1" for node in placement.values())
        # Per-rank counters made it back: slaves exchanged genomes.
        stats = socketed.transport_stats
        assert [s.rank for s in stats] == [0, 1, 2, 3, 4]
        assert all(s.messages_sent > 0 and s.bytes_sent > 0 for s in stats)

    def test_allgather_mode_equivalence(self, module_dataset):
        """The paper-style LOCAL allgather delivers the same neighbors."""
        config = make_quick_config(2, 2, iterations=2)
        p2p = DistributedRunner(
            config, backend="threaded", dataset=module_dataset,
            exchange_mode="neighbors",
        ).run()
        allgather = DistributedRunner(
            config, backend="threaded", dataset=module_dataset,
            exchange_mode="allgather",
        ).run()
        for cell in range(4):
            np.testing.assert_array_equal(
                p2p.training.center_genomes[cell][0].parameters,
                allgather.training.center_genomes[cell][0].parameters,
            )

    def test_mixture_weights_travel(self, module_dataset):
        config = make_quick_config(2, 2, iterations=2)
        result = DistributedRunner(config, backend="threaded",
                                   dataset=module_dataset).run()
        for weights in result.training.mixture_weights:
            assert weights.shape == (5,)
            assert weights.sum() == pytest.approx(1.0)


class TestExchangeModes:
    def test_async_mode_completes(self, module_dataset):
        config = make_quick_config(2, 2, iterations=3)
        result = DistributedRunner(
            config, backend="threaded", dataset=module_dataset,
            exchange_mode="async",
        ).run()
        assert result.complete
        assert all(len(r) == 3 for r in result.training.cell_reports)

    def test_unknown_mode_rejected(self, module_dataset):
        config = make_quick_config(2, 2, iterations=1)
        runner = DistributedRunner(config, backend="threaded",
                                   dataset=module_dataset,
                                   exchange_mode="telepathy")
        import pytest as _pytest

        from repro.mpi.errors import MpiWorkerError

        with _pytest.raises(MpiWorkerError, match="telepathy"):
            runner.run()


class TestProfiledRun:
    def test_profile_covers_all_routines(self, module_dataset):
        config = make_quick_config(2, 2, iterations=2)
        result = DistributedRunner(config, backend="threaded",
                                   dataset=module_dataset, profile=True).run()
        assert len(result.slave_timers) == 4
        profile = result.distributed_profile()
        for routine in ("gather", "train", "update_genomes", "mutate"):
            assert profile.seconds(routine) > 0, routine

    def test_total_work_exceeds_wall_profile(self, module_dataset):
        config = make_quick_config(2, 2, iterations=2)
        result = DistributedRunner(config, backend="threaded",
                                   dataset=module_dataset, profile=True).run()
        total = result.total_work_profile()
        wall = result.distributed_profile()
        assert total.seconds("train") >= wall.seconds("train")


class TestTracing:
    def test_traces_present_for_all_actors(self, module_dataset):
        config = make_quick_config(2, 2, iterations=1)
        result = DistributedRunner(config, backend="threaded",
                                   dataset=module_dataset, trace=True).run()
        actors = {t.actor for t in result.traces}
        assert actors == {"master", "slave-1", "slave-2", "slave-3", "slave-4"}


class TestPlacementOutcome:
    def test_placement_covers_all_ranks(self, module_dataset):
        config = make_quick_config(2, 2, iterations=1)
        result = DistributedRunner(config, backend="threaded",
                                   dataset=module_dataset).run()
        assert set(result.outcome_placement) == {0, 1, 2, 3, 4}
        assert all(node.startswith("node") for node in result.outcome_placement.values())


class TestFaultTolerance:
    def test_injected_fault_detected_and_survivors_abort(self, module_dataset):
        """Kill slave of cell 0 at iteration 1; the master must notice the
        missing heartbeats, abort the survivors, and still return."""
        config = make_quick_config(2, 2, iterations=50)  # long enough to abort
        runner = DistributedRunner(
            config,
            backend="threaded",
            dataset=module_dataset,
            fault_at={0: 1},
            heartbeat_interval_s=0.05,
            miss_limit=4,
            timeout_s=120,
        )
        result = runner.run()
        assert result.dead_ranks == [1]
        assert not result.complete
        # Survivors delivered (partial) results for their cells.
        assert len(result.training.center_genomes) == 4

    def test_fault_free_run_is_complete(self, module_dataset):
        config = make_quick_config(2, 2, iterations=1)
        result = DistributedRunner(config, backend="threaded",
                                   dataset=module_dataset).run()
        assert result.complete and result.dead_ranks == []

    def test_killed_socket_worker_detected_and_survivors_abort(self, module_dataset):
        """The socket variant of the fault test, hardened: the worker
        process hosting cell 3 (rank 4, alone on worker B) dies with
        ``os._exit`` mid-run — a real TCP-visible process death.  The
        heartbeat layer must report the dead rank and the run must degrade
        exactly like the process backend: survivors aborted, partial
        results returned, no hang."""
        config = make_quick_config(2, 2, iterations=50)  # long enough to abort
        runner = DistributedRunner(
            config,
            backend="socket",
            hosts="127.0.0.1:4,127.0.0.1:1",
            dataset=module_dataset,
            fault_at={3: 1},
            fault_kill=True,
            allow_failures=True,
            heartbeat_interval_s=0.05,
            miss_limit=4,
            timeout_s=120,
        )
        result = runner.run()
        assert result.dead_ranks == [4]
        assert not result.complete
        assert len(result.training.center_genomes) == 4

    def test_fault_kill_rejected_on_threaded_backend(self, module_dataset):
        """os._exit in a thread would take the launcher down with it."""
        config = make_quick_config(2, 2, iterations=2)
        with pytest.raises(ValueError, match="fault_kill"):
            DistributedRunner(config, backend="threaded",
                              dataset=module_dataset,
                              fault_at={0: 1}, fault_kill=True)

    def test_fault_kill_requires_isolated_victim_worker(self, module_dataset):
        """os._exit kills every co-hosted rank, so the faulted rank must
        ride alone on its socket worker — co-hosting is rejected up front
        instead of collapsing the whole run."""
        config = make_quick_config(2, 2, iterations=2)
        with pytest.raises(ValueError, match="alone on its worker"):
            DistributedRunner(config, backend="socket",
                              dataset=module_dataset,
                              fault_at={3: 1}, fault_kill=True)  # hosts=None
        with pytest.raises(ValueError, match="alone on its worker"):
            DistributedRunner(config, backend="socket",
                              hosts="127.0.0.1:3,127.0.0.1:2",
                              dataset=module_dataset,
                              fault_at={3: 1}, fault_kill=True)


class TestDynamicNeighborhoods:
    def test_rewired_grid_trains(self, module_dataset):
        """The Grid's dynamic-neighborhood feature: run with a ring topology
        instead of Moore-5 (each cell listens to one clockwise neighbor)."""
        from repro.parallel.grid import Grid

        # Build the runner, then monkey-patch the master's grid through a
        # custom entry: simpler — rewire by running the sequential
        # equivalent of a ring via Grid payload check.
        grid = Grid(3, 3)
        for cell in range(9):
            grid.rewire(cell, [(cell + 1) % 9])
        payload = grid.to_payload()
        clone = Grid.from_payload(payload)
        assert all(clone.neighbor_cells(c) == [(c + 1) % 9] for c in range(9))
        assert all(clone.incoming_neighbors(c) == [(c - 1) % 9] for c in range(9))
