"""Engine behavior: baselines, layering resolution, the CLI contract."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Baseline, lint_paths, main
from repro.analysis.engine import _module_name
from repro.analysis.layering import LayeringRule


def test_module_name_anchors_at_repro():
    assert _module_name("src/repro/mpi/wire.py") == "repro.mpi.wire"
    assert _module_name("src/repro/nn/__init__.py") == "repro.nn"
    assert _module_name("/tmp/scratch.py") == "scratch"


# -- baseline ---------------------------------------------------------------

def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return path


BAD_MPI = "import pickle\n\ndef load(b):\n    return pickle.loads(b)\n"


def test_baseline_grandfathers_known_findings(tmp_path):
    repro_dir = tmp_path / "repro" / "mpi"
    repro_dir.mkdir(parents=True)
    path = _write(repro_dir, "frames.py", BAD_MPI)

    fresh = lint_paths([str(path)])
    assert len(fresh.findings) == 1

    baseline = Baseline(fingerprints={fresh.findings[0].fingerprint})
    gated = lint_paths([str(path)], baseline=baseline)
    assert not gated.findings
    assert len(gated.grandfathered) == 1
    assert not gated.stale_baseline


def test_baseline_reports_stale_entries(tmp_path):
    repro_dir = tmp_path / "repro" / "mpi"
    repro_dir.mkdir(parents=True)
    path = _write(repro_dir, "clean.py", "VALUE = 1\n")
    baseline = Baseline(fingerprints={"R1:gone.py:fixed long ago"})
    result = lint_paths([str(path)], baseline=baseline)
    assert result.stale_baseline == {"R1:gone.py:fixed long ago"}


def test_fingerprint_survives_line_moves(tmp_path):
    repro_dir = tmp_path / "repro" / "mpi"
    repro_dir.mkdir(parents=True)
    path = _write(repro_dir, "frames.py", BAD_MPI)
    first = lint_paths([str(path)]).findings[0]
    _write(repro_dir, "frames.py", "# moved down\n\n" + BAD_MPI)
    moved = lint_paths([str(path)]).findings[0]
    assert moved.line != first.line
    assert moved.fingerprint == first.fingerprint


# -- layering: cycles and sibling submodule imports -------------------------

def _cycle_tree(tmp_path, y_imports_x: bool):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "x.py").write_text("import repro.y\n", encoding="utf-8")
    body = "import repro.x\n" if y_imports_x else "VALUE = 1\n"
    (pkg / "y.py").write_text(body, encoding="utf-8")
    return pkg


def test_layering_detects_eager_cycle(tmp_path):
    pkg = _cycle_tree(tmp_path, y_imports_x=True)
    rules = [LayeringRule(layers={"x": 0, "y": 0, "": 8})]
    result = lint_paths([str(pkg)], rules=rules)
    assert any("cycle" in f.message for f in result.findings)


def test_layering_accepts_acyclic_graph(tmp_path):
    pkg = _cycle_tree(tmp_path, y_imports_x=False)
    rules = [LayeringRule(layers={"x": 0, "y": 0, "": 8})]
    result = lint_paths([str(pkg)], rules=rules)
    assert not result.findings


def test_sibling_submodule_import_is_not_a_cycle(tmp_path):
    """``from repro.nn import functional`` inside repro.nn must resolve to
    the sibling module, not to the package __init__ (which would report
    every package as a cycle with its own submodules)."""
    pkg = tmp_path / "repro" / "nn"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("from repro.nn import losses\n",
                                     encoding="utf-8")
    (pkg / "losses.py").write_text("from repro.nn import functional as F\n",
                                   encoding="utf-8")
    (pkg / "functional.py").write_text("VALUE = 1\n", encoding="utf-8")
    rules = [LayeringRule()]
    result = lint_paths([str(tmp_path / "repro")], rules=rules)
    assert not result.findings


def test_lazy_and_type_checking_imports_do_not_count(tmp_path):
    pkg = tmp_path / "repro" / "nn"
    pkg.mkdir(parents=True)
    source = ("from typing import TYPE_CHECKING\n"
              "if TYPE_CHECKING:\n"
              "    from repro.api import Experiment\n"
              "def f():\n"
              "    from repro.serving import GeneratorServer\n"
              "    return GeneratorServer\n")
    (pkg / "views.py").write_text(source, encoding="utf-8")
    result = lint_paths([str(pkg)], rules=[LayeringRule()])
    assert not result.findings


# -- the real tree ----------------------------------------------------------

REPO = Path(__file__).resolve().parent.parent


def test_src_is_clean_under_all_rules():
    """The merge gate: the shipped tree has zero findings (empty baseline)."""
    result = lint_paths([str(REPO / "src")])
    assert not result.findings, "\n".join(f.render() for f in result.findings)
    assert result.files_checked > 90


# -- CLI --------------------------------------------------------------------

def test_cli_exit_codes(tmp_path, capsys):
    repro_dir = tmp_path / "repro" / "mpi"
    repro_dir.mkdir(parents=True)
    bad = _write(repro_dir, "frames.py", BAD_MPI)
    clean = _write(repro_dir, "clean.py", "VALUE = 1\n")

    assert main([str(clean), "--no-baseline"]) == 0
    assert main([str(bad), "--no-baseline"]) == 1
    assert main([str(tmp_path / "missing.py"), "--no-baseline"]) == 2
    capsys.readouterr()


def test_cli_json_format(tmp_path, capsys):
    repro_dir = tmp_path / "repro" / "mpi"
    repro_dir.mkdir(parents=True)
    bad = _write(repro_dir, "frames.py", BAD_MPI)
    assert main([str(bad), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule"] == "R1"
    assert payload["findings"][0]["fingerprint"]


def test_cli_select_restricts_rules(tmp_path, capsys):
    repro_dir = tmp_path / "repro" / "mpi"
    repro_dir.mkdir(parents=True)
    bad = _write(repro_dir, "frames.py", BAD_MPI)
    assert main([str(bad), "--no-baseline", "--select", "R5"]) == 0
    assert main([str(bad), "--no-baseline", "--select", "preauth-pickle"]) == 1
    assert main([str(bad), "--no-baseline", "--select", "R99"]) == 2
    capsys.readouterr()


def test_cli_write_and_apply_baseline(tmp_path, capsys, monkeypatch):
    repro_dir = tmp_path / "repro" / "mpi"
    repro_dir.mkdir(parents=True)
    bad = _write(repro_dir, "frames.py", BAD_MPI)
    baseline = tmp_path / "baseline.json"

    assert main([str(bad), "--write-baseline", str(baseline)]) == 0
    assert main([str(bad), "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "grandfathered" in out


def test_cli_list_rules_names_all_eight(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8"):
        assert rule_id in out


@pytest.mark.slow
def test_repro_lint_subcommand_round_trip(tmp_path):
    """``repro lint`` (the facade path) agrees with ``python -m repro.analysis``."""
    repro_dir = tmp_path / "repro" / "mpi"
    repro_dir.mkdir(parents=True)
    bad = _write(repro_dir, "frames.py", BAD_MPI)
    for entry in (["-m", "repro", "lint"], ["-m", "repro.analysis"]):
        proc = subprocess.run(
            [sys.executable, *entry, str(bad), "--no-baseline"],
            capture_output=True, text=True, cwd=str(REPO),
        )
        assert proc.returncode == 1, proc.stderr
        assert "R1" in proc.stdout
