"""Tests for the three Mustangs GAN losses."""

import numpy as np
import pytest

from repro.nn import BCELoss, HeuristicLoss, LeastSquaresLoss, MUSTANGS_LOSSES, Tensor, loss_by_name
from repro.nn import functional as F


@pytest.fixture()
def logits(rng):
    real = Tensor(rng.normal(size=(16, 1)))
    fake = Tensor(rng.normal(size=(16, 1)))
    return real, fake


class TestRegistry:
    def test_pool_contents(self):
        names = {cls.name for cls in MUSTANGS_LOSSES}
        assert names == {"bce", "mse", "heuristic"}

    @pytest.mark.parametrize("name,cls", [
        ("bce", BCELoss), ("mse", LeastSquaresLoss), ("heuristic", HeuristicLoss),
    ])
    def test_loss_by_name(self, name, cls):
        assert isinstance(loss_by_name(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown GAN loss"):
            loss_by_name("wasserstein")


class TestBce:
    def test_discriminator_perfect_separation_low_loss(self):
        loss = BCELoss().discriminator_loss(Tensor([[20.0]]), Tensor([[-20.0]]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_discriminator_fooled_high_loss(self):
        loss = BCELoss().discriminator_loss(Tensor([[-20.0]]), Tensor([[20.0]]))
        assert loss.item() > 10.0

    def test_generator_saturating_form(self, logits):
        _, fake = logits
        # min log(1 - D(G(z))) == -BCE(fake, 0)
        expected = -F.binary_cross_entropy_with_logits(fake, 0.0).item()
        assert BCELoss().generator_loss(fake).item() == pytest.approx(expected)

    def test_generator_wants_high_fake_logits(self):
        low = BCELoss().generator_loss(Tensor([[-5.0]])).item()
        high = BCELoss().generator_loss(Tensor([[5.0]])).item()
        assert high < low


class TestHeuristic:
    def test_discriminator_same_as_bce(self, logits):
        real, fake = logits
        assert HeuristicLoss().discriminator_loss(real, fake).item() == pytest.approx(
            BCELoss().discriminator_loss(real, fake).item()
        )

    def test_generator_non_saturating(self, logits):
        _, fake = logits
        expected = F.binary_cross_entropy_with_logits(fake, 1.0).item()
        assert HeuristicLoss().generator_loss(fake).item() == pytest.approx(expected)

    def test_generator_gradient_does_not_vanish_early(self):
        # With a confident discriminator (very negative fake logits), the
        # saturating BCE generator gradient vanishes; the heuristic's does not.
        fake_bce = Tensor([[-8.0]], requires_grad=True)
        BCELoss().generator_loss(fake_bce).backward()
        fake_heu = Tensor([[-8.0]], requires_grad=True)
        HeuristicLoss().generator_loss(fake_heu).backward()
        assert abs(fake_heu.grad[0, 0]) > 100 * abs(fake_bce.grad[0, 0])


class TestLeastSquares:
    def test_discriminator_zero_at_perfect(self):
        loss = LeastSquaresLoss().discriminator_loss(Tensor([[30.0]]), Tensor([[-30.0]]))
        assert loss.item() == pytest.approx(0.0, abs=1e-9)

    def test_generator_zero_when_fooling(self):
        assert LeastSquaresLoss().generator_loss(Tensor([[30.0]])).item() == pytest.approx(
            0.0, abs=1e-9
        )

    def test_value_is_probability_mse(self, rng):
        fake = rng.normal(size=(8, 1))
        p = 1 / (1 + np.exp(-fake))
        expected = ((p - 1.0) ** 2).mean()
        assert LeastSquaresLoss().generator_loss(Tensor(fake)).item() == pytest.approx(
            expected, rel=1e-9
        )


class TestAdversarialConsistency:
    """Invariants that must hold for every loss in the pool."""

    @pytest.mark.parametrize("loss_cls", MUSTANGS_LOSSES)
    def test_losses_are_finite(self, rng, loss_cls):
        loss = loss_cls()
        real = Tensor(rng.normal(size=(8, 1)) * 10)
        fake = Tensor(rng.normal(size=(8, 1)) * 10)
        assert np.isfinite(loss.discriminator_loss(real, fake).item())
        assert np.isfinite(loss.generator_loss(fake).item())

    @pytest.mark.parametrize("loss_cls", MUSTANGS_LOSSES)
    def test_discriminator_prefers_separation(self, loss_cls):
        loss = loss_cls()
        good = loss.discriminator_loss(Tensor([[4.0]]), Tensor([[-4.0]])).item()
        bad = loss.discriminator_loss(Tensor([[-4.0]]), Tensor([[4.0]])).item()
        assert good < bad

    @pytest.mark.parametrize("loss_cls", MUSTANGS_LOSSES)
    def test_generator_prefers_fooling(self, loss_cls):
        loss = loss_cls()
        fooled = loss.generator_loss(Tensor([[4.0]])).item()
        caught = loss.generator_loss(Tensor([[-4.0]])).item()
        assert fooled < caught

    @pytest.mark.parametrize("loss_cls", MUSTANGS_LOSSES)
    def test_gradients_flow(self, rng, loss_cls):
        loss = loss_cls()
        fake = Tensor(rng.normal(size=(4, 1)), requires_grad=True)
        loss.generator_loss(fake).backward()
        assert fake.grad is not None and np.any(fake.grad != 0)
