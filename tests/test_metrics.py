"""Tests for the metric classifier and the quality scores."""

import numpy as np
import pytest

from repro.data.synthetic import render_digits
from repro.data.transforms import to_tanh_range
from repro.metrics import (
    classifier_score,
    frechet_distance,
    mode_coverage,
    total_variation_distance,
    train_digit_classifier,
)


@pytest.fixture(scope="module")
def eval_sets():
    """Balanced real set + single-mode set + noise set, in tanh range."""
    rng = np.random.default_rng(123)
    balanced_labels = np.arange(200) % 10
    balanced = to_tanh_range(render_digits(balanced_labels, rng))
    collapsed = to_tanh_range(render_digits(np.full(200, 3), rng))
    noise = rng.uniform(-1, 1, size=(200, 784))
    return balanced, collapsed, noise


class TestClassifier:
    def test_reaches_good_accuracy(self, metric_classifier, small_raw_dataset):
        images = to_tanh_range(small_raw_dataset.images)
        assert metric_classifier.accuracy(images, small_raw_dataset.labels) > 0.9

    def test_predict_proba_is_distribution(self, metric_classifier, eval_sets):
        balanced, _, _ = eval_sets
        proba = metric_classifier.predict_proba(balanced[:32])
        assert proba.shape == (32, 10)
        np.testing.assert_allclose(proba.sum(axis=1), np.ones(32), rtol=1e-9)

    def test_features_shape(self, metric_classifier, eval_sets):
        balanced, _, _ = eval_sets
        feats = metric_classifier.features(balanced[:16])
        assert feats.shape == (16, metric_classifier.hidden_size)

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            train_digit_classifier(rng.normal(size=(4, 2, 2)), np.zeros(4), rng)


class TestClassifierScore:
    def test_real_data_scores_high(self, metric_classifier, eval_sets):
        balanced, _, _ = eval_sets
        score = classifier_score(metric_classifier, balanced)
        # Well above collapse (1.0); the exact value depends on how
        # confident the small session classifier is.
        assert score > 3.0

    def test_collapse_scores_near_one(self, metric_classifier, eval_sets):
        _, collapsed, _ = eval_sets
        score = classifier_score(metric_classifier, collapsed)
        assert score < 2.0

    def test_real_beats_noise(self, metric_classifier, eval_sets):
        balanced, _, noise = eval_sets
        assert classifier_score(metric_classifier, balanced) > classifier_score(
            metric_classifier, noise
        )

    def test_bounds(self, metric_classifier, eval_sets):
        balanced, collapsed, noise = eval_sets
        for batch in (balanced, collapsed, noise):
            score = classifier_score(metric_classifier, batch)
            assert 1.0 - 1e-9 <= score <= 10.0 + 1e-9

    def test_needs_two_samples(self, metric_classifier, eval_sets):
        with pytest.raises(ValueError):
            classifier_score(metric_classifier, eval_sets[0][:1])


class TestFrechetDistance:
    def test_identical_sets_near_zero(self, metric_classifier, eval_sets):
        balanced, _, _ = eval_sets
        fid = frechet_distance(metric_classifier, balanced, balanced.copy())
        assert fid == pytest.approx(0.0, abs=1e-6)

    def test_orders_quality(self, metric_classifier, eval_sets):
        balanced, collapsed, noise = eval_sets
        real_half, gen_half = balanced[:100], balanced[100:]
        fid_real = frechet_distance(metric_classifier, real_half, gen_half)
        fid_collapsed = frechet_distance(metric_classifier, real_half, collapsed)
        fid_noise = frechet_distance(metric_classifier, real_half, noise)
        assert fid_real < fid_collapsed
        assert fid_real < fid_noise

    def test_non_negative(self, metric_classifier, eval_sets):
        balanced, _, noise = eval_sets
        assert frechet_distance(metric_classifier, balanced, noise) >= 0

    def test_needs_two_samples(self, metric_classifier, eval_sets):
        with pytest.raises(ValueError):
            frechet_distance(metric_classifier, eval_sets[0][:1], eval_sets[0])


class TestModeDiagnostics:
    def test_mode_coverage_full_on_balanced(self, metric_classifier, eval_sets):
        balanced, _, _ = eval_sets
        assert mode_coverage(metric_classifier, balanced) >= 9

    def test_mode_coverage_collapsed(self, metric_classifier, eval_sets):
        _, collapsed, _ = eval_sets
        # At a 5% occupancy threshold only the collapsed mode (plus at most
        # one misclassification bucket) should register.
        assert mode_coverage(metric_classifier, collapsed, min_fraction=0.05) <= 3

    def test_tvd_balanced_low(self, metric_classifier, eval_sets):
        balanced, _, _ = eval_sets
        assert total_variation_distance(metric_classifier, balanced) < 0.2

    def test_tvd_collapsed_high(self, metric_classifier, eval_sets):
        _, collapsed, _ = eval_sets
        assert total_variation_distance(metric_classifier, collapsed) > 0.6

    def test_tvd_against_explicit_reference(self, metric_classifier, eval_sets):
        balanced, _, _ = eval_sets
        reference = np.arange(200) % 10
        tvd = total_variation_distance(metric_classifier, balanced, reference)
        assert 0.0 <= tvd <= 1.0
