"""Registry + ServableEnsemble: construction, versioning, hot-swap."""

import threading

import numpy as np
import pytest

from repro.coevolution.checkpoint import save_checkpoint
from repro.serving import ModelRegistry, ServableEnsemble, UnknownVersionError

from tests.conftest import make_quick_config, make_random_checkpoint


@pytest.fixture(scope="module")
def checkpoint():
    return make_random_checkpoint()


@pytest.fixture(scope="module")
def ensemble(checkpoint):
    return ServableEnsemble.from_checkpoint(checkpoint, cell=0)


class TestServableEnsemble:
    def test_neighborhood_components(self, checkpoint, ensemble):
        assert len(ensemble) == 5  # Moore-5: center + W/N/E/S
        assert ensemble.source_cell == 0
        assert ensemble.latent_size == checkpoint.config.network.latent_size
        assert ensemble.image_shape == (28, 28)

    def test_weights_normalized_and_frozen(self, ensemble):
        assert ensemble.weights.sum() == pytest.approx(1.0)
        with pytest.raises(ValueError):
            ensemble.weights[0] = 0.9

    def test_sample_shape_and_determinism(self, ensemble):
        a = ensemble.sample(23, seed=5)
        b = ensemble.sample(23, seed=5)
        c = ensemble.sample(23, seed=6)
        assert a.shape == (23, 784)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_sample_zero(self, ensemble):
        assert ensemble.sample(0, seed=1).shape == (0, 784)

    def test_single_component_override(self, ensemble):
        """weights=[1,0,...] must draw every sample from the center."""
        images = ensemble.sample(12, seed=3, weights=[1, 0, 0, 0, 0])
        rebuilt = ensemble.with_weights([1, 0, 0, 0, 0]).sample(12, seed=3)
        assert np.array_equal(images, rebuilt)

    def test_weights_override_arity_validated(self, ensemble):
        with pytest.raises(ValueError, match="5 entries"):
            ensemble.sample(4, seed=1, weights=[1.0, 1.0])
        with pytest.raises(ValueError, match="5 entries"):
            ensemble.sample(4, seed=1, weights=[1, 0, 0, 0, 0, 0])
        with pytest.raises(ValueError, match="non-negative"):
            ensemble.sample(4, seed=1, weights=[-1, 1, 1, 1, 1])

    def test_request_equality_and_hash_with_weights(self):
        from repro.serving import SampleRequest

        a = SampleRequest(4, seed=1, weights=np.ones(5))
        b = SampleRequest(4, seed=1, weights=np.ones(5))
        c = SampleRequest(4, seed=1, weights=np.eye(5)[0])
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert a != SampleRequest(4, seed=1)
        assert SampleRequest(4, seed=1) == SampleRequest(4, seed=1)
        assert len({a, b, c}) == 2

    def test_out_of_range_cell(self, checkpoint):
        with pytest.raises(ValueError, match="cell"):
            ServableEnsemble.from_checkpoint(checkpoint, cell=99)

    def test_from_training_result_uses_best_cell(self):
        from repro.coevolution import SequentialTrainer

        config = make_quick_config(iterations=1, dataset_size=200,
                                   batch_size=20, batches=1)
        result = SequentialTrainer(config).run()
        servable = result.to_servable()
        assert servable.source_cell == result.best_cell_index()
        assert servable.sample(4, seed=0).shape == (4, 784)

    def test_degenerate_1x1_grid(self):
        checkpoint = make_random_checkpoint(make_quick_config(1, 1))
        servable = ServableEnsemble.from_checkpoint(checkpoint)
        # All five neighborhood slots wrap to the same cell.
        assert len(servable) == 5
        assert servable.sample(6, seed=0).shape == (6, 784)


class TestModelRegistry:
    def test_first_register_becomes_active(self, ensemble):
        registry = ModelRegistry()
        registry.register("v1", ensemble)
        assert registry.active_version == "v1"
        version, resolved = registry.resolve(None)
        assert version == "v1" and resolved is ensemble

    def test_promote_and_resolve(self, ensemble):
        registry = ModelRegistry()
        registry.register("v1", ensemble)
        other = ensemble.with_weights([1, 0, 0, 0, 0])
        registry.register("v2", other)
        assert registry.active_version == "v1"
        registry.promote("v2")
        assert registry.get() is other
        assert registry.get("v1") is ensemble
        assert registry.versions() == ["v1", "v2"]

    def test_unknown_versions_raise(self, ensemble):
        registry = ModelRegistry()
        with pytest.raises(UnknownVersionError):
            registry.resolve(None)  # empty registry
        registry.register("v1", ensemble)
        with pytest.raises(UnknownVersionError):
            registry.get("nope")
        with pytest.raises(UnknownVersionError):
            registry.promote("nope")
        with pytest.raises(UnknownVersionError):
            registry.evict("nope")

    def test_evict_protects_active(self, ensemble):
        registry = ModelRegistry()
        registry.register("v1", ensemble)
        registry.register("v2", ensemble)
        with pytest.raises(ValueError, match="active"):
            registry.evict("v1")
        registry.promote("v2")
        registry.evict("v1")
        assert registry.versions() == ["v2"]
        assert "v1" not in registry and "v2" in registry

    def test_load_from_disk(self, tmp_path, checkpoint):
        path = tmp_path / "model.npz"
        save_checkpoint(path, checkpoint)
        registry = ModelRegistry()
        loaded = registry.load("disk", path, cell=2, promote=True)
        assert loaded.source_cell == 2
        direct = ServableEnsemble.from_checkpoint(checkpoint, cell=2)
        assert np.array_equal(loaded.sample(9, seed=4), direct.sample(9, seed=4))

    def test_hot_swap_is_atomic(self, ensemble):
        """Readers racing a promoting writer always see a consistent pair."""
        registry = ModelRegistry()
        versions = {f"v{i}": ensemble.with_weights(np.eye(5)[i % 5] + 0.01)
                    for i in range(4)}
        for name, ens in versions.items():
            registry.register(name, ens)
        stop = threading.Event()
        torn: list[tuple] = []

        def reader():
            while not stop.is_set():
                name, resolved = registry.resolve(None)
                if versions[name] is not resolved:
                    torn.append((name, resolved))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for i in range(400):
            registry.promote(f"v{i % 4}")
        stop.set()
        for thread in threads:
            thread.join()
        assert not torn
