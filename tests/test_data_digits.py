"""Tests for the digit stroke geometry."""

import numpy as np
import pytest

from repro.data.digits import NUM_CLASSES, digit_segments


class TestDigitSegments:
    @pytest.mark.parametrize("digit", range(10))
    def test_shape_and_bounds(self, digit):
        segs = digit_segments(digit)
        assert segs.ndim == 3 and segs.shape[1:] == (2, 2)
        assert segs.shape[0] >= 2
        # All control points stay inside the unit box with a small margin.
        assert segs.min() >= 0.05 and segs.max() <= 0.95

    @pytest.mark.parametrize("digit", range(10))
    def test_segments_have_positive_length(self, digit):
        segs = digit_segments(digit)
        lengths = np.linalg.norm(segs[:, 1] - segs[:, 0], axis=1)
        assert np.all(lengths > 1e-6)

    def test_digits_are_distinct(self):
        # No two glyphs share the same segment set.
        fingerprints = {digit_segments(d).tobytes() for d in range(10)}
        assert len(fingerprints) == NUM_CLASSES

    def test_cache_returns_same_object(self):
        assert digit_segments(3) is digit_segments(3)

    def test_segments_immutable(self):
        segs = digit_segments(0)
        with pytest.raises(ValueError):
            segs[0, 0, 0] = 99.0

    @pytest.mark.parametrize("bad", [-1, 10, 42])
    def test_invalid_digit_rejected(self, bad):
        with pytest.raises(ValueError):
            digit_segments(bad)

    def test_closed_loops_for_0_and_8(self):
        # 0 is one closed loop; 8 is two.  Closed = first point equals last.
        for digit, loops in ((0, 1), (8, 2)):
            segs = digit_segments(digit)
            starts = segs[:, 0]
            ends = segs[:, 1]
            closures = sum(
                1 for i in range(len(segs))
                if not np.allclose(ends[i], starts[(i + 1) % len(segs)])
            )
            # closures counts discontinuities; a figure with n strokes has
            # at most n discontinuities (the wrap of each loop is continuous).
            assert closures <= loops
