"""Tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro.viz import ascii_image, ascii_image_row, horizontal_bars, sparkline


class TestAsciiImage:
    def test_dimensions(self):
        out = ascii_image(np.zeros(784))
        lines = out.splitlines()
        assert len(lines) == 14  # 28 rows subsampled 2:1
        assert all(len(line) == 28 for line in lines)

    def test_ink_mapping(self):
        dark = ascii_image(np.full(4, -1.0), side=2)
        bright = ascii_image(np.full(4, 1.0), side=2)
        assert set(dark.replace("\n", "")) == {" "}
        assert set(bright.replace("\n", "")) == {"@"}

    def test_custom_range(self):
        out = ascii_image(np.full(4, 1.0), side=2, value_range=(0.0, 1.0))
        assert set(out.replace("\n", "")) == {"@"}

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            ascii_image(np.zeros(10))

    def test_bad_range_rejected(self):
        with pytest.raises(ValueError):
            ascii_image(np.zeros(4), side=2, value_range=(1.0, 0.0))

    def test_values_clipped(self):
        out = ascii_image(np.array([5.0, -5.0, 0.0, 0.0]), side=2)
        assert "@" in out  # overflow clamps to full ink, no crash


class TestAsciiImageRow:
    def test_side_by_side(self):
        out = ascii_image_row(np.zeros((3, 16)), side=4)
        lines = out.splitlines()
        assert len(lines) == 2  # 4 rows / 2
        # three 4-char blocks + two 2-char gaps
        assert all(len(line) == 3 * 4 + 2 * 2 for line in lines)

    def test_empty(self):
        assert ascii_image_row(np.zeros((0, 16))) == ""


class TestSparkline:
    def test_monotonic_ramp(self):
        out = sparkline([0, 1, 2, 3])
        assert out[0] == "▁" and out[-1] == "█"
        assert len(out) == 4

    def test_constant_series(self):
        out = sparkline([5.0, 5.0, 5.0])
        assert len(set(out)) == 1

    def test_nan_renders_blank(self):
        out = sparkline([0.0, np.nan, 1.0])
        assert out[1] == " "

    def test_all_nan(self):
        assert sparkline([np.nan, np.nan]) == "(no data)"


class TestHorizontalBars:
    def test_alignment_and_scaling(self):
        out = horizontal_bars(["train", "gather"], [10.0, 5.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert lines[0].startswith("train ")

    def test_zero_values(self):
        out = horizontal_bars(["a"], [0.0])
        assert out.count("#") == 0

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            horizontal_bars(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            horizontal_bars(["a"], [-1.0])
