#!/usr/bin/env python3
"""Serving quickstart: train -> checkpoint -> serve.

The full production path at laptop scale: train a small grid sequentially,
write the run to a checkpoint file, load that file into the serving stack
(registry -> batching engine -> caches -> server), replay concurrent
traffic against it, and report the server's operational statistics.

Run:  python examples/serving_quickstart.py
"""

import os
import tempfile
import threading
import time

import numpy as np

from repro import Experiment, default_config
from repro.serving import GeneratorServer, ModelRegistry
from repro.viz import ascii_image


def main() -> None:
    # -- 1. train ------------------------------------------------------------
    config = default_config(2, 2, seed=42)
    print(f"training a {config.coevolution.grid_rows}x"
          f"{config.coevolution.grid_cols} grid sequentially "
          f"({config.coevolution.iterations} iterations)...")
    result = Experiment(config).backend("sequential").run()
    print(f"done in {result.wall_time_s:.1f}s; "
          f"best cell: {result.best_cell_index()}")

    # -- 2. checkpoint -------------------------------------------------------
    path = os.path.join(tempfile.mkdtemp(prefix="repro-serving-"), "model.npz")
    checkpoint = result.save_checkpoint(path)
    print(f"\n{checkpoint.summary()}")
    print(f"written to {path}")

    # -- 3. serve ------------------------------------------------------------
    registry = ModelRegistry()
    registry.load("v1", path, cell=result.best_cell_index(), promote=True)
    with GeneratorServer(registry, pool_capacity=512,
                         pool_refill_batch=128) as server:
        # Concurrent clients: seeded (cacheable) and anonymous traffic.
        def client(k: int) -> None:
            for i in range(10):
                if i % 2:
                    server.request(8, seed=k)  # replayed seeds hit the LRU
                else:
                    server.request(8)          # seedless may hit the pool

        threads = [threading.Thread(target=client, args=(k,)) for k in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        time.sleep(0.1)  # let the pool top back up

        print("\n" + server.stats().report())

        # Deterministic serving: the same seed always yields the same image.
        a = server.request(1, seed=7).images
        b = server.request(1, seed=7).images
        assert np.array_equal(a, b)
        print("\none served sample (seed 7):")
        print(ascii_image(a[0]))


if __name__ == "__main__":
    main()
