#!/usr/bin/env python3
"""Inspecting training dynamics: fitness curves, diversity, checkpoints.

Trains a 3x3 grid, prints ASCII fitness curves per cell, quantifies genome
diversity (the property that lets cellular coevolution escape mode
collapse), then demonstrates the checkpoint/resume cycle the 96-hour
cluster time limit calls for.

Run:  python examples/training_dynamics.py
"""

import os
import tempfile

import numpy as np

from repro import Experiment, default_config
from repro.coevolution import load_checkpoint
from repro.metrics import (
    fitness_curves,
    mean_pairwise_distance,
    summarize_convergence,
)
from repro.viz import sparkline


def main() -> None:
    import dataclasses

    config = default_config(3, 3, seed=17)
    coev = dataclasses.replace(config.coevolution, iterations=6)
    config = dataclasses.replace(config, coevolution=coev)

    # The 96-hour-limit workflow as a callback: a resumable snapshot is
    # written every other iteration while the run is in flight.
    from repro.api import PeriodicCheckpoint

    path = os.path.join(tempfile.gettempdir(), "repro-dynamics.ckpt.npz")
    result = (Experiment(config)
              .backend("sequential")
              .callbacks(PeriodicCheckpoint(path, every=2))
              .run())
    print(f"trained 3x3 grid for {coev.iterations} iterations "
          f"in {result.wall_time_s:.1f}s\n")

    print("generator fitness per cell (lower = better):")
    curves = fitness_curves(result.cell_reports)["generator"]
    for cell, row in enumerate(curves):
        print(f"  cell {cell}: {sparkline(row)}  "
              f"{row[0]:8.4f} -> {row[-1]:8.4f}")

    genomes = [g for g, _ in result.center_genomes]
    print(f"\ngenome diversity (mean pairwise L2): "
          f"{mean_pairwise_distance(genomes):.3f}")
    summary = summarize_convergence(result.cell_reports, genomes)
    print(f"convergence summary: improved={summary.generator_fitness_improved}, "
          f"healthy={summary.healthy()}, "
          f"lr spread={summary.learning_rate_spread:.2e}")

    print(f"\ncheckpoint written by the callback: {path} "
          f"({os.path.getsize(path) / 1e6:.1f} MB)")
    checkpoint = load_checkpoint(path)
    print(f"reloaded: iteration {checkpoint.iteration}, "
          f"{checkpoint.remaining_iterations} iterations remaining "
          f"(run 'python -m repro resume {path}' to continue)")
    os.unlink(path)


if __name__ == "__main__":
    main()
