#!/usr/bin/env python3
"""Dynamic neighborhood rewiring — the new capability of the Grid class.

The paper highlights that its ``grid`` class (unlike Lipizzaner's original
``neighbourhood``) "allows modifying the grid and also the structure of
neighboring processes dynamically ... exploring different patterns for
training and learning."

This example trains the same workload under three neighbor structures —
the paper's Moore-5 torus, a directed ring, and isolated cells — and
compares training dynamics.

Run:  python examples/dynamic_neighborhoods.py
"""

import numpy as np

from repro import default_config
from repro.coevolution.cell import Cell
from repro.coevolution.sequential import build_training_dataset
from repro.parallel.grid import Grid


def run_topology(name: str, grid: Grid, config, dataset, iterations: int = 3):
    """Sequential execution of an arbitrary (possibly rewired) Grid."""
    cells = [
        Cell(config, index, dataset,
             neighborhood_size=grid.neighborhood_size(index))
        for index in range(grid.cell_count)
    ]
    for _ in range(iterations):
        snapshots = [cell.center_genomes() for cell in cells]
        for index, cell in enumerate(cells):
            neighbors = [snapshots[j] for j in grid.neighbor_cells(index)]
            cell.step(neighbors)
    fitness = [cell.reports[-1].best_generator_fitness for cell in cells]
    print(f"  {name:<22} mean generator fitness {np.mean(fitness):8.4f} "
          f"(best {np.min(fitness):8.4f})")
    return fitness


def main() -> None:
    config = default_config(3, 3, seed=5)
    dataset = build_training_dataset(config)
    print("3x3 grid, three neighbor structures, same seed/workload:\n")

    # 1. The paper's Moore-5 torus (W, N, E, S).
    moore = Grid(3, 3)
    run_topology("moore-5 torus (paper)", moore, config, dataset)

    # 2. A directed ring: each cell listens to its clockwise successor only.
    ring = Grid(3, 3)
    for cell in range(9):
        ring.rewire(cell, [(cell + 1) % 9])
    run_topology("directed ring", ring, config, dataset)

    # 3. Isolated cells: no migration at all (9 independent GANs).
    isolated = Grid(3, 3)
    for cell in range(9):
        isolated.rewire(cell, [])
    run_topology("isolated cells", isolated, config, dataset)

    # Rewiring *during* training: swap topologies halfway through.
    print("\nmid-run rewiring (moore-5 for 2 iterations, then ring):")
    grid = Grid(3, 3)
    cells = [Cell(config, i, dataset, neighborhood_size=5) for i in range(9)]
    for iteration in range(4):
        if iteration == 2:
            for cell in range(9):
                grid.rewire(cell, [(cell + 1) % 9])
            print("  ...rewired to the ring after iteration 2")
        snapshots = [cell.center_genomes() for cell in cells]
        for index, cell in enumerate(cells):
            neighbors = [snapshots[j] for j in grid.neighbor_cells(index)]
            cell.step(neighbors)
    fitness = [cell.reports[-1].best_generator_fitness for cell in cells]
    print(f"  final mean generator fitness {np.mean(fitness):8.4f}")


if __name__ == "__main__":
    main()
