#!/usr/bin/env python3
"""Mustangs loss diversity: each cell trains with a loss drawn from a pool.

Lipizzaner trains every cell with the same loss; Mustangs [6] draws each
cell's loss from {original BCE, least-squares, heuristic non-saturating},
increasing genome diversity across the grid.  The paper's implementation
supports both — this example runs them side by side.

Run:  python examples/mustangs_losses.py
"""

from repro import Experiment, default_config


def main() -> None:
    base = default_config(3, 3, seed=3)
    dataset = Experiment(base).build_dataset()

    print("=== Lipizzaner: BCE everywhere ===")
    result = Experiment(base).dataset(dataset).loss("bce").backend("sequential").run()
    for index, cell in enumerate(result.trainer.cells):
        print(f"  cell {index}: loss={cell.loss_name:<9} "
              f"final g-fitness {cell.reports[-1].best_generator_fitness:8.4f}")

    print("\n=== Mustangs: loss drawn per cell ===")
    result = Experiment(base).dataset(dataset).loss("mustangs").backend("sequential").run()
    drawn = {}
    for index, cell in enumerate(result.trainer.cells):
        drawn.setdefault(cell.loss_name, []).append(index)
        print(f"  cell {index}: loss={cell.loss_name:<9} "
              f"final g-fitness {cell.reports[-1].best_generator_fitness:8.4f}")
    print("\nloss pool usage:", {k: len(v) for k, v in sorted(drawn.items())})

    # The loss travels with the genome when centers migrate between cells:
    genomes = [g for g, _ in result.center_genomes]
    print("losses carried by the final center genomes:",
          sorted({g.loss_name for g in genomes}))


if __name__ == "__main__":
    main()
