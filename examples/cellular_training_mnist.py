#!/usr/bin/env python3
"""Full workflow: cellular GAN training + quality evaluation on synthetic MNIST.

Reproduces the paper's methodology end to end:

1. build the dataset (the synthetic-MNIST substitute, 28x28 digits 0-9);
2. train a 3x3 toroidal grid of GANs with the sequential trainer;
3. train the metric classifier (the inception-score substitute);
4. score every cell's generator *mixture* — classifier score, Fréchet
   distance, mode coverage — and return the best neighborhood's model,
   exactly the selection rule of Section II-B.

Run:  python examples/cellular_training_mnist.py
"""

import numpy as np

from repro import Experiment, default_config
from repro.metrics import (
    classifier_score,
    frechet_distance,
    mode_coverage,
    train_digit_classifier,
)


def main() -> None:
    config = default_config(3, 3, seed=7)
    experiment = Experiment(config).backend("sequential")
    dataset = experiment.build_dataset()
    print(f"dataset: {len(dataset)} synthetic digits; "
          f"grid {config.coevolution.grid_size}; "
          f"{config.coevolution.iterations} iterations")

    result = experiment.dataset(dataset).run()
    print(f"trained in {result.wall_time_s:.1f}s")

    # The metric classifier plays the role of Inception-v3 (Section II-B:
    # "the highest quality according to some fitness value, e.g. inception
    # score").
    rng = np.random.default_rng(0)
    classifier = train_digit_classifier(dataset.images, dataset.labels, rng, epochs=6)
    print(f"metric classifier accuracy: "
          f"{classifier.accuracy(dataset.images, dataset.labels):.2%}")

    print(f"\n{'cell':>4} {'clf score':>10} {'frechet':>9} {'modes':>6}")
    best_cell, best_score = -1, -np.inf
    for cell_index, cell in enumerate(result.trainer.cells):
        samples = cell.sample_from_mixture(256, np.random.default_rng(cell_index))
        score = classifier_score(classifier, samples)
        fid = frechet_distance(classifier, dataset.images[:512], samples)
        modes = mode_coverage(classifier, samples)
        print(f"{cell_index:>4} {score:>10.3f} {fid:>9.2f} {modes:>6}")
        if score > best_score:
            best_cell, best_score = cell_index, score

    print(f"\nreturned generative model: cell {best_cell} "
          f"(classifier score {best_score:.3f})")
    weights = result.trainer.cells[best_cell].mixture.weights
    print(f"its mixture weights over the 5-member neighborhood: "
          f"{np.round(weights, 3)}")


if __name__ == "__main__":
    main()
