#!/usr/bin/env python3
"""repro.api quickstart: one facade, pluggable pieces, a callback-driven loop.

Three things the unified experiment layer buys you, in ~60 lines:

1. **register a custom GAN loss** by name — the config layer, the cells and
   the CLI all accept it immediately, zero core edits;
2. **attach callbacks** — stream per-iteration metrics to JSONL and stop
   early when the fitness plateaus;
3. **swap the execution substrate** with one word — the same seed produces
   bit-identical genomes on every backend.

Run:  python examples/api_quickstart.py
"""

import json
import os
import tempfile

import numpy as np

from repro import Experiment, default_config
from repro.api import EarlyStopping, JsonlMetrics, LOSSES
from repro.nn import functional as F
from repro.nn.losses import GANLoss


class SmoothedBCELoss(GANLoss):
    """BCE with one-sided label smoothing (real target 0.9) — a scenario
    the core has never heard of, registered from user code."""

    name = "smoothed-bce"

    def discriminator_loss(self, real_logits, fake_logits):
        real_term = F.binary_cross_entropy_with_logits(real_logits, 0.9)
        fake_term = F.binary_cross_entropy_with_logits(fake_logits, 0.0)
        return real_term + fake_term

    def generator_loss(self, fake_logits):
        return F.binary_cross_entropy_with_logits(fake_logits, 1.0)


def main() -> None:
    # -- 1. plug in the custom loss -----------------------------------------
    LOSSES.register("smoothed-bce", SmoothedBCELoss)
    print(f"registered losses: {sorted(LOSSES.known())}")

    # -- 2. build the experiment with callbacks -----------------------------
    metrics_path = os.path.join(tempfile.gettempdir(), "repro-api-metrics.jsonl")
    if os.path.exists(metrics_path):
        os.unlink(metrics_path)
    config = default_config(2, 2, seed=9)

    experiment = (Experiment(config)
                  .scaled(iterations=6, dataset_size=1000,
                          batch_size=50, batches_per_iteration=2)
                  .loss("smoothed-bce")
                  .backend("sequential")
                  .callbacks(
                      JsonlMetrics(metrics_path),
                      EarlyStopping(metric="fitness", patience=3, min_delta=1e-4),
                  ))
    result = experiment.run()
    print(f"\n{result.summary()}")

    # -- 3. inspect the metrics stream --------------------------------------
    with open(metrics_path, encoding="utf-8") as handle:
        events = [json.loads(line) for line in handle]
    iterations = [e for e in events if e["event"] == "iteration"]
    print(f"\n{len(events)} JSONL events ({len(iterations)} iterations):")
    for event in iterations:
        print(f"  iteration {event['iteration']}: "
              f"best g-fitness {event['best_generator_fitness']:8.4f}")

    # -- 4. the substrate is one word ---------------------------------------
    sequential = Experiment(config).loss("smoothed-bce").backend("sequential").run()
    threaded = Experiment(config).loss("smoothed-bce").backend("threaded").run()
    identical = all(
        np.array_equal(a[0].parameters, b[0].parameters)
        for a, b in zip(sequential.center_genomes, threaded.center_genomes)
    )
    print(f"\nsequential vs threaded genomes bit-identical: {identical}")

    LOSSES.unregister("smoothed-bce")
    os.unlink(metrics_path)


if __name__ == "__main__":
    main()
