#!/usr/bin/env python3
"""Quickstart: distributed cellular GAN training on a 2x2 grid.

Runs the paper's system end to end at laptop scale — one master process and
four slave processes (one per grid cell), synthetic-MNIST digits, Table I
network shapes — then reports the per-cell results and draws a few samples
from the best cell's generator mixture.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Experiment, default_config
from repro.viz import ascii_image


def main() -> None:
    # 2x2 grid, scaled-down workload, every structural parameter per Table I.
    config = default_config(2, 2, seed=42)
    print(f"grid: {config.coevolution.grid_size}, "
          f"iterations: {config.coevolution.iterations}, "
          f"tasks: {config.execution.number_of_tasks} (1 master + 4 slaves)")

    result = Experiment(config).backend("process").run()

    print(f"\ntraining wall time: {result.wall_time_s:.1f}s, "
          f"complete: {result.complete}")
    for cell, reports in enumerate(result.cell_reports):
        last = reports[-1]
        print(f"  cell {cell}: generator fitness {last.best_generator_fitness:8.4f}, "
              f"lr {last.learning_rate:.6f}, "
              f"mixture {np.round(last.mixture_weights, 2)}")

    best = result.best_cell_index()
    print(f"\nbest cell by final generator fitness: {best}")

    # Rebuild the best generator from its genome and sample from it.
    from repro.coevolution.genome import pair_from_genomes

    g_genome, d_genome = result.center_genomes[best]
    pair = pair_from_genomes(g_genome, d_genome, config, np.random.default_rng(0))
    from repro.gan import generate_images

    samples = generate_images(pair.generator, 3, np.random.default_rng(1))
    for i, sample in enumerate(samples):
        print(f"\nsample {i} from the best cell's generator:")
        print(ascii_image(sample))


if __name__ == "__main__":
    main()
