#!/usr/bin/env python3
"""The paper's distributed execution, instrumented: placement, heartbeats,
profiling, and the master/slave event trace.

Runs a 3x3 grid over the process backend (10 ranks: 1 master + 9 slaves),
with the master placing slaves on the simulated Cluster-UY platform, the
heartbeat thread monitoring them, and the Table-IV profiler measuring the
four dominant routines.  Prints the placement, the routine profile, and the
first lines of the merged Fig.-3-style event trace.

Run:  python examples/distributed_cluster_run.py
"""

from repro import Experiment, default_config
from repro.cluster import cluster_uy
from repro.parallel.tracing import EventTrace
from repro.profiling import format_table4, profile_rows


def main() -> None:
    config = default_config(3, 3, seed=11)
    # A busy best-effort cluster: ~30% of every node is already occupied.
    platform = cluster_uy(busy_fraction=0.3)

    result = (Experiment(config)
              .backend("process", platform=platform, trace=True)
              .profile()
              .run())

    print(f"complete: {result.complete}; wall time {result.wall_time_s:.1f}s")

    print("\nplacement decided by the master (rank -> node):")
    placement = result.distributed.outcome_placement
    for rank in sorted(placement):
        role = "master" if rank == 0 else f"slave (cell {rank - 1})"
        print(f"  rank {rank:>2} -> {placement[rank]}  [{role}]")

    print("\nper-routine profile (distributed column = slowest slave):")
    rows = profile_rows(result.profile(parallel=False), result.profile(parallel=True))
    print(format_table4(rows))

    print("\nfirst 12 events of the merged master/slave trace (Fig. 3):")
    merged = EventTrace.format_merged(result.traces).splitlines()
    print("\n".join(merged[:12]))
    print(f"... ({len(merged)} events total)")


if __name__ == "__main__":
    main()
