#!/usr/bin/env python3
"""The paper's distributed execution, instrumented: placement, heartbeats,
profiling, transport counters, and the master/slave event trace.

Runs a 3x3 grid (10 ranks: 1 master + 9 slaves).  By default the ranks are
forked processes and the master places them on the simulated Cluster-UY
platform.  With ``--hosts`` the same job runs over the TCP transport on
*real* machines instead: localhost entries are spawned automatically,
remote entries print the ``repro worker`` command to start over there, and
the placement report shows the hosts the ranks actually ran on.

Run:  python examples/distributed_cluster_run.py
      python examples/distributed_cluster_run.py --hosts 127.0.0.1:5,127.0.0.1:5
      python examples/distributed_cluster_run.py --hosts nodeA:5,nodeB:5 \\
          --bind 0.0.0.0:5555   # then start `repro worker` on nodeB
"""

import argparse

from repro import Experiment, default_config
from repro.cluster import cluster_uy
from repro.mpi import merge_transport_stats
from repro.parallel.tracing import EventTrace
from repro.profiling import format_table4, profile_rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", metavar="HOST:SLOTS,...", default=None,
                        help="run over the socket transport on these hosts "
                             "(slots must sum to 10 for the 3x3 grid)")
    parser.add_argument("--bind", metavar="HOST:PORT", default=None,
                        help="coordinator listen address for remote workers")
    args = parser.parse_args()

    config = default_config(3, 3, seed=11)
    if args.hosts is not None:
        # Real hosts: the placement below is the transport's actual
        # rank-to-host assignment, not a simulation.
        options = {"hosts": args.hosts}
        if args.bind:
            options["bind"] = args.bind
        experiment = Experiment(config).backend("socket", trace=True, **options)
    else:
        # A busy best-effort cluster: ~30% of every node is already occupied.
        platform = cluster_uy(busy_fraction=0.3)
        experiment = Experiment(config).backend("process", platform=platform,
                                                trace=True)

    result = experiment.profile().run()

    print(f"complete: {result.complete}; wall time {result.wall_time_s:.1f}s")

    print("\nplacement (rank -> node):")
    placement = result.distributed.outcome_placement
    for rank in sorted(placement):
        role = "master" if rank == 0 else f"slave (cell {rank - 1})"
        print(f"  rank {rank:>2} -> {placement[rank]}  [{role}]")

    if result.transport_stats:
        total = merge_transport_stats(result.transport_stats)
        print(f"\ntransport traffic ({total.messages_sent} messages, "
              f"{total.bytes_sent / 2**20:.1f} MiB payload):")
        for record in result.transport_stats:
            print(f"  {record.summary()}")

    print("\nper-routine profile (distributed column = slowest slave):")
    rows = profile_rows(result.profile(parallel=False), result.profile(parallel=True))
    print(format_table4(rows))

    print("\nfirst 12 events of the merged master/slave trace (Fig. 3):")
    merged = EventTrace.format_merged(result.traces).splitlines()
    print("\n".join(merged[:12]))
    print(f"... ({len(merged)} events total)")


if __name__ == "__main__":
    main()
