#!/usr/bin/env python3
"""Future-work experiment: cellular training on higher-dimensional images.

The paper's closing line: "we want to apply our method to train GANs to
address the generation of higher dimensional images, such as samples from
CIFAR and CelebA."  This example does exactly that with the synthetic
32x32 RGB shapes dataset (3072 dimensions, ~4x MNIST): the *identical*
distributed trainer runs unchanged — only ``output_neurons`` differs.

Run:  python examples/higher_dimensional_shapes.py
"""

import dataclasses

import numpy as np

from repro import Experiment, paper_table1_config
from repro.data.shapes import SHAPE_CLASSES, SHAPES_PIXELS


def main() -> None:
    base = paper_table1_config(2, 2).scaled(
        iterations=3, dataset_size=600, batch_size=50, batches_per_iteration=2
    )
    network = dataclasses.replace(base.network, output_neurons=SHAPES_PIXELS)
    config = dataclasses.replace(base, network=network, seed=21)

    # The shapes corpus is one registry name away — no bespoke loader code.
    experiment = Experiment(config).dataset("synthetic-shapes").backend("process")
    dataset = experiment.build_dataset()
    print(f"dataset: {len(dataset)} samples x {SHAPES_PIXELS} dims "
          f"(32x32 RGB, {len(SHAPE_CLASSES)} classes)")
    print(f"generator output layer: {config.network.output_neurons} neurons "
          f"(vs 784 for MNIST)")

    result = experiment.dataset(dataset).run()
    print(f"\ndistributed training: {result.wall_time_s:.1f}s, "
          f"complete: {result.complete}")
    for cell, reports in enumerate(result.cell_reports):
        last = reports[-1]
        print(f"  cell {cell}: g-fitness {last.best_generator_fitness:9.4f}")

    # The genome is ~4x larger; communication volume scales with it.
    g, d = result.center_genomes[0]
    print(f"\ngenome sizes: generator {g.size:,} params, "
          f"discriminator {d.size:,} params")
    mnist_g = 64 * 256 + 256 + 256 * 256 + 256 + 256 * 784 + 784
    print(f"(MNIST generator genome: {mnist_g:,} params)")

    # Mean RGB of generated samples vs the dataset: the generator should
    # already be pulling away from gray noise toward the data statistics.
    from repro.coevolution.genome import pair_from_genomes
    from repro.gan import generate_images

    pair = pair_from_genomes(g, d, config, np.random.default_rng(0))
    fake = generate_images(pair.generator, 64, np.random.default_rng(1))
    fake_rgb = ((fake + 1) / 2).reshape(-1, 32, 32, 3).mean(axis=(0, 1, 2))
    real_rgb = ((dataset.images + 1) / 2).reshape(-1, 32, 32, 3).mean(axis=(0, 1, 2))
    print(f"\nmean RGB  real: {np.round(real_rgb, 3)}  "
          f"generated: {np.round(fake_rgb, 3)}")


if __name__ == "__main__":
    main()
