#!/usr/bin/env python3
"""Heartbeat-based failure detection: a slave dies mid-run, the master
notices through missing heartbeats and aborts the survivors gracefully.

This exercises the control protocol of Section III-B: the master's
heartbeat thread periodically requests each slave's state; a slave that
stops answering is declared dead, the master broadcasts an abort, and the
surviving slaves deliver partial results instead of hanging on the dead
neighbor's genome exchange.

Run:  python examples/fault_tolerance.py
"""

from repro import Experiment, default_config


def main() -> None:
    config = default_config(2, 2, seed=13)
    # Give the run enough iterations that the failure happens mid-flight.
    import dataclasses

    coev = dataclasses.replace(config.coevolution, iterations=60)
    config = dataclasses.replace(config, coevolution=coev)

    print("injecting a crash into the slave of cell 0 at iteration 2...")
    result = (Experiment(config)
              .backend("process",
                       fault_at={0: 2},           # cell 0 dies at iteration 2
                       heartbeat_interval_s=0.1,  # 10 Hz monitoring
                       miss_limit=5,              # dead after 0.5s of silence
                       timeout_s=300)
              .run())

    print(f"\ncomplete: {result.complete}")
    print(f"dead ranks detected by the heartbeat monitor: {result.dead_ranks}")
    survivors = [
        cell for cell, reports in enumerate(result.cell_reports) if reports
    ]
    print(f"cells that delivered (partial) results: {survivors}")
    for cell in survivors:
        reports = result.cell_reports[cell]
        print(f"  cell {cell}: reached iteration {reports[-1].iteration} "
              f"before the abort")


if __name__ == "__main__":
    main()
