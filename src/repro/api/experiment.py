"""The :class:`Experiment` facade — one front door for every substrate.

Builder style: start from a config (or the laptop-scale default), override
by name, pick a backend, attach callbacks, run::

    from repro.api import Experiment, JsonlMetrics

    result = (Experiment()
              .grid(3, 3)
              .scaled(iterations=8, dataset_size=4000)
              .loss("mustangs")
              .backend("process")
              .callbacks(JsonlMetrics("metrics.jsonl"))
              .run())
    result.save_checkpoint("model.npz")
    server_ensemble = result.to_servable()

Backends, datasets and losses resolve against the registries in
:mod:`repro.registry`, so a scenario the core has never heard of —
``LOSSES.register("wgan", ...)``, ``DATASETS.register("celeba-like", ...)``
— plugs in without touching this module.  The same seed produces
bit-identical final genomes on ``sequential``, ``threaded`` and ``process``
(the paper's equivalence guarantee, extended through the facade).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any

from repro.api.backends import RunContext, TrainerBackend
from repro.api.callbacks import Callback, CallbackList
from repro.api.result import RunResult
from repro.config import ExperimentConfig, default_config
from repro.data.dataset import ArrayDataset
from repro.registry import BACKENDS, DATASETS, RegistryError

__all__ = ["Experiment", "DEFAULT_DATASET", "serve_checkpoint", "load_ensemble"]

#: Registry name of the corpus used when no dataset is selected.
DEFAULT_DATASET = "synthetic-mnist"


class Experiment:
    """Configure and run one cellular GAN training experiment."""

    def __init__(self, config: ExperimentConfig | None = None):
        self._config = config if config is not None else default_config()
        self._backend_name: str | None = None
        self._backend_options: dict[str, Any] = {}
        self._dataset_source: str | ArrayDataset | None = None
        self._dataset_options: dict[str, Any] = {}
        self._exchange_mode = "neighbors"
        self._profile = False
        self._callbacks: list[Callback] = []
        self._checkpoint = None
        self._telemetry_level: str | None = None
        self._trace_path: str | os.PathLike | None = None
        self._fault_policy: str = "abort"
        self._max_restarts: int = 0
        self._snapshot_every: int | None = None

    # -- alternate starting points ----------------------------------------

    @classmethod
    def from_checkpoint(cls, source: str | os.PathLike | Any) -> "Experiment":
        """Resume a checkpointed run (path or loaded ``TrainingCheckpoint``).

        The resumed experiment is pinned to the ``sequential`` backend, the
        only substrate with live restore semantics.
        """
        from repro.coevolution.checkpoint import TrainingCheckpoint, load_checkpoint

        checkpoint = (source if isinstance(source, TrainingCheckpoint)
                      else load_checkpoint(source))
        experiment = cls(checkpoint.config)
        experiment._checkpoint = checkpoint
        experiment._backend_name = "sequential"
        return experiment

    # -- config overrides (each returns self for chaining) ------------------

    def grid(self, rows: int, cols: int) -> "Experiment":
        """Use a ``rows x cols`` grid (tasks re-derived as cells + 1)."""
        self._config = self._config.with_grid(rows, cols)
        return self

    def seed(self, seed: int) -> "Experiment":
        self._config = dataclasses.replace(self._config, seed=seed)
        return self

    def scaled(self, **kwargs: Any) -> "Experiment":
        """Scale the workload (``iterations=``, ``dataset_size=``, ...)."""
        self._config = self._config.scaled(**kwargs)
        return self

    def loss(self, name: str) -> "Experiment":
        """Train with the named GAN loss (any registered name, or ``mustangs``)."""
        training = dataclasses.replace(self._config.training, loss_function=name)
        self._config = dataclasses.replace(self._config, training=training)
        return self

    def dtype(self, name: str) -> "Experiment":
        """Train under the named dtype policy (``float64``/``float32``/``mixed16``).

        ``float64`` is the bit-identical reference; ``float32`` halves the
        memory and roughly doubles the training throughput; ``mixed16``
        computes in float32 and exchanges/stores genomes in float16.
        """
        self._config = self._config.with_dtype(name)
        return self

    def exchange(self, mode: str) -> "Experiment":
        """Neighbor-exchange mode for distributed backends
        (``neighbors`` / ``allgather`` / ``async``)."""
        self._exchange_mode = mode
        return self

    def override(self, **fields: Any) -> "Experiment":
        """Replace top-level config fields (``dataset_size=``, ``seed=``, ...)."""
        self._config = dataclasses.replace(self._config, **fields)
        return self

    # -- component selection ------------------------------------------------

    def backend(self, name: str, **options: Any) -> "Experiment":
        """Select the execution substrate by registry name.

        Extra keyword options go to the backend factory (e.g.
        ``backend("process", trace=True)`` enables event tracing).
        """
        if name not in BACKENDS:
            raise RegistryError(
                f"unknown backend {name!r}; known: {sorted(BACKENDS.known())}")
        self._backend_name = name
        self._backend_options = dict(options)
        return self

    def dataset(self, source: str | ArrayDataset, **options: Any) -> "Experiment":
        """Select the training corpus: a registry name or a ready dataset.

        Passing a built :class:`ArrayDataset` instance shares it as-is —
        useful when several runs must consume identical data (Table III).
        """
        if isinstance(source, str) and source not in DATASETS:
            raise RegistryError(
                f"unknown dataset {source!r}; known: {sorted(DATASETS.known())}")
        self._dataset_source = source
        self._dataset_options = dict(options)
        return self

    def fault_policy(self, policy: str = "abort", *, max_restarts: int = 0,
                     snapshot_every: int | None = None) -> "Experiment":
        """Choose what a distributed run does when a rank dies mid-run.

        ``abort`` (the default) keeps the legacy contract: survivors are
        stopped and the run reports the dead ranks.  ``degrade`` finishes the
        run with the dead ranks' cells frozen at their last checkpoint
        (:attr:`RunResult.degraded_ranks` names them).  ``recover`` migrates
        the dead ranks' cells onto surviving slaves — or, on the socket
        backend with ``max_restarts > 0``, onto freshly respawned replacement
        workers — and resumes them from their latest in-run checkpoint.

        ``snapshot_every`` is the per-cell checkpoint cadence in iterations
        (default: every iteration for non-abort policies, off for abort —
        the abort default keeps the no-fault message flow byte-identical to
        runs without recovery enabled).
        """
        from repro.parallel.recovery import validate_fault_policy

        validate_fault_policy(policy)
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self._fault_policy = policy
        self._max_restarts = max_restarts
        self._snapshot_every = snapshot_every
        return self

    def profile(self, enabled: bool = True) -> "Experiment":
        """Record the per-routine Table IV profile during the run."""
        self._profile = enabled
        return self

    def telemetry(self, level: str = "basic",
                  trace_path: str | os.PathLike | None = None) -> "Experiment":
        """Enable the :mod:`repro.telemetry` bus for this run.

        ``level`` is ``off`` (counters disabled, near-zero cost),
        ``basic`` (span totals + counters) or ``trace`` (individual span
        events, exportable to Perfetto).  Passing ``trace_path`` implies
        ``trace`` level and writes the merged Chrome/Perfetto trace there
        after the run; :attr:`RunResult.telemetry` carries the merged view
        either way.
        """
        from repro.telemetry import bus

        if trace_path is not None:
            level = "trace"
        if level not in bus.LEVELS:
            raise ValueError(
                f"unknown telemetry level {level!r}; expected one of "
                f"{sorted(bus.LEVELS)}")
        self._telemetry_level = level
        self._trace_path = trace_path
        return self

    def callbacks(self, *callbacks: Callback) -> "Experiment":
        """Attach run-loop callbacks (appended in order)."""
        self._callbacks.extend(callbacks)
        return self

    add_callback = callbacks

    # -- resolution ----------------------------------------------------------

    @property
    def checkpoint(self):
        """The checkpoint this experiment resumes from (None for fresh runs)."""
        return self._checkpoint

    @property
    def config(self) -> ExperimentConfig:
        """The fully resolved configuration this experiment will run."""
        name = self._backend_name or self._config.execution.backend
        if self._config.execution.backend == name:
            return self._config
        execution = dataclasses.replace(self._config.execution, backend=name)
        return dataclasses.replace(self._config, execution=execution)

    def describe(self) -> str:
        """The resolved configuration as JSON (what ``repro config`` prints)."""
        return self.config.to_json()

    def build_dataset(self) -> ArrayDataset:
        """Materialize the training corpus this experiment will consume."""
        source = self._dataset_source
        if isinstance(source, str):
            return DATASETS.create(source, self.config, **self._dataset_options)
        if source is None:
            return DATASETS.create(DEFAULT_DATASET, self.config)
        return source

    def dataset_spec(self) -> tuple[str, dict] | None:
        """Registry name + options of the corpus, when it has one.

        ``None`` for ready-made :class:`ArrayDataset` objects — those can
        only travel by value.
        """
        source = self._dataset_source
        if isinstance(source, str):
            return source, dict(self._dataset_options)
        if source is None:
            return DEFAULT_DATASET, {}
        return None

    # -- execution ------------------------------------------------------------

    def run(self) -> RunResult:
        """Resolve backend + dataset, drive the run loop, return the result."""
        config = self.config
        options = dict(self._backend_options)
        fault_requested = (self._fault_policy != "abort" or self._max_restarts
                           or self._snapshot_every is not None)
        if fault_requested:
            if config.execution.backend == "sequential":
                raise ValueError(
                    "fault_policy applies to distributed backends; the "
                    "'sequential' backend has no ranks to lose")
            options.setdefault("fault_policy", self._fault_policy)
            if self._max_restarts:
                options.setdefault("max_restarts", self._max_restarts)
            if self._snapshot_every is not None:
                options.setdefault("snapshot_every", self._snapshot_every)
        backend = BACKENDS.create(config.execution.backend, **options)
        if not isinstance(backend, TrainerBackend):
            raise TypeError(
                f"backend factory for {config.execution.backend!r} produced "
                f"{type(backend).__name__}, not a TrainerBackend")
        spec = self.dataset_spec()
        # Spawn-based substrates render registry datasets per node; building
        # the arrays here too would be pure wasted work (and wire bytes).
        renders_remotely = (getattr(backend, "renders_remotely", False)
                            and spec is not None)
        ctx = RunContext(
            config=config,
            dataset=None if renders_remotely else self.build_dataset(),
            callbacks=CallbackList(self._callbacks),
            backend_name=backend.name,
            exchange_mode=self._exchange_mode,
            profile=self._profile,
            dataset_spec=spec,
            checkpoint=self._checkpoint,
        )
        if self._telemetry_level is not None:
            from repro.telemetry import bus

            # The level is scoped to this run: a leaked global level would
            # make every later run in the process record (and, distributed,
            # ship trace events home), so restore it and drain the buffers
            # this run consumed — backends snapshot before returning.
            prior_level = bus.level_name()
            bus.set_level(self._telemetry_level)
            try:
                result = backend.execute(ctx)
            finally:
                bus.set_level(prior_level)
                bus.reset()
        else:
            result = backend.execute(ctx)
        if self._trace_path is not None and result.telemetry is not None:
            from repro.telemetry import write_trace

            write_trace(self._trace_path, result.telemetry)
        return result


# -- checkpoint-driven service entry points (used by the CLI) ----------------

def serve_checkpoint(path: str | os.PathLike, **load_test_options: Any):
    """Load a checkpoint into the serving stack and replay a traffic trace.

    Thin pass-through to :func:`repro.serving.loadtest.run_load_test`;
    returns the :class:`~repro.serving.server.ServerStats`.
    """
    from repro.serving.loadtest import run_load_test

    return run_load_test(os.fspath(path), **load_test_options)


def load_ensemble(path: str | os.PathLike, cell: int = 0):
    """Rebuild a servable generator ensemble from a checkpoint file.

    Returns ``(checkpoint, ensemble)`` so callers can both report on the
    checkpoint and sample from the ensemble.
    """
    from repro.coevolution.checkpoint import load_checkpoint
    from repro.serving.registry import ServableEnsemble

    checkpoint = load_checkpoint(path)
    return checkpoint, ServableEnsemble.from_checkpoint(checkpoint, cell=cell)
