"""The callback/hook system of the experiment run loop.

Five hooks fire over a run's lifetime::

    on_run_start(ctx)                      once, before the first iteration
    on_exchange(ctx, iteration)            per iteration, at the exchange
    on_iteration_end(ctx, iteration, reports)   per iteration, after training
    on_checkpoint(ctx, path, checkpoint)   whenever a checkpoint is written
    on_run_end(ctx, result)                once, after the result is built

The sequential backend fires them **live** — ``on_iteration_end`` may call
``ctx.request_stop()`` (early stopping) or ``ctx.write_checkpoint()``
(periodic snapshots) and the loop reacts immediately.  The distributed
backends run master/slaves to completion and then *replay* the per-iteration
hooks from the reduced cell reports, so observers (metrics streaming,
logging) behave identically, while control hooks (stop requests) have no
effect — that trade-off is inherent to the master–slave substrate.

Three shipped callbacks cover the common cases: :class:`PeriodicCheckpoint`,
:class:`EarlyStopping` (plateaued best-FID or best-fitness) and
:class:`JsonlMetrics`.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.coevolution.cell import CellReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (backends imports us)
    from repro.api.backends import RunContext
    from repro.api.result import RunResult

__all__ = [
    "Callback",
    "CallbackList",
    "PeriodicCheckpoint",
    "EarlyStopping",
    "JsonlMetrics",
]


class Callback:
    """Base class: override any subset of the five hooks."""

    def on_run_start(self, ctx: "RunContext") -> None:
        pass

    def on_exchange(self, ctx: "RunContext", iteration: int) -> None:
        pass

    def on_iteration_end(self, ctx: "RunContext", iteration: int,
                         reports: list[CellReport]) -> None:
        pass

    def on_checkpoint(self, ctx: "RunContext", path: str, checkpoint) -> None:
        pass

    def on_run_end(self, ctx: "RunContext", result: "RunResult") -> None:
        pass


class CallbackList(Callback):
    """Dispatches every hook to an ordered list of callbacks."""

    def __init__(self, callbacks: Iterable[Callback] = ()):
        self.callbacks: list[Callback] = list(callbacks)
        for callback in self.callbacks:
            if not isinstance(callback, Callback):
                raise TypeError(f"not a Callback: {callback!r}")

    def append(self, callback: Callback) -> None:
        self.callbacks.append(callback)

    def on_run_start(self, ctx) -> None:
        for callback in self.callbacks:
            callback.on_run_start(ctx)

    def on_exchange(self, ctx, iteration) -> None:
        for callback in self.callbacks:
            callback.on_exchange(ctx, iteration)

    def on_iteration_end(self, ctx, iteration, reports) -> None:
        for callback in self.callbacks:
            callback.on_iteration_end(ctx, iteration, reports)

    def on_checkpoint(self, ctx, path, checkpoint) -> None:
        for callback in self.callbacks:
            callback.on_checkpoint(ctx, path, checkpoint)

    def on_run_end(self, ctx, result) -> None:
        for callback in self.callbacks:
            callback.on_run_end(ctx, result)


class PeriodicCheckpoint(Callback):
    """Write a resumable checkpoint every ``every`` iterations (and at end).

    Live checkpoints need the trainer state, so mid-run snapshots fire on
    the sequential backend only; the end-of-run snapshot works everywhere
    (the reduced result carries the full coevolutionary state).
    """

    def __init__(self, path: str | os.PathLike, every: int = 1,
                 at_end: bool = True):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.path = os.fspath(path)
        self.every = every
        self.at_end = at_end
        self.writes = 0

    def on_iteration_end(self, ctx, iteration, reports) -> None:
        if ctx.can_checkpoint and iteration % self.every == 0:
            ctx.write_checkpoint(self.path)
            self.writes += 1

    def on_run_end(self, ctx, result) -> None:
        if self.at_end:
            # No on_checkpoint dispatch here: other callbacks' on_run_end
            # may already have run (stream terminators written, handles
            # closed), so a late hook would arrive out of order.
            result.save_checkpoint(self.path)
            self.writes += 1


class EarlyStopping(Callback):
    """Stop when the tracked metric plateaus for ``patience`` evaluations.

    ``metric="fid"`` tracks the best cell's FID against the training data
    (a digit classifier is lazily trained on the run's dataset the first
    time it is needed); ``metric="fitness"`` tracks the minimum
    ``best_generator_fitness`` across cells, which is free.  FID needs live
    generators, so on distributed replays it falls back to the fitness
    metric.  Lower is better for both.
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0,
                 metric: str = "fid", eval_every: int = 1,
                 fid_samples: int = 128, classifier_epochs: int = 2,
                 seed: int = 0):
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if eval_every < 1:
            raise ValueError("eval_every must be >= 1")
        if metric not in ("fid", "fitness"):
            raise ValueError(f"metric must be 'fid' or 'fitness', got {metric!r}")
        self.patience = patience
        self.min_delta = min_delta
        self.metric = metric
        self.eval_every = eval_every
        self.fid_samples = max(2, fid_samples)
        self.classifier_epochs = classifier_epochs
        self._seed = seed
        self._rng = np.random.default_rng(seed)
        self._classifier = None
        self.best = math.inf
        self.history: list[tuple[int, float]] = []
        self.stopped_at: int | None = None
        self._stale = 0

    def on_run_start(self, ctx) -> None:
        # Per-run state resets so the same callback instance (or a re-run
        # Experiment) starts every run with full patience and a fresh
        # classifier for that run's dataset.
        self._rng = np.random.default_rng(self._seed)
        self._classifier = None
        self.best = math.inf
        self.history = []
        self.stopped_at = None
        self._stale = 0

    def on_iteration_end(self, ctx, iteration, reports) -> None:
        if self.stopped_at is not None or iteration % self.eval_every != 0:
            return
        value = self._evaluate(ctx, reports)
        self.history.append((iteration, value))
        if value < self.best - self.min_delta:
            self.best = value
            self._stale = 0
            return
        self._stale += 1
        if self._stale >= self.patience:
            self.stopped_at = iteration
            ctx.request_stop()

    # -- metric evaluation -------------------------------------------------

    def _evaluate(self, ctx, reports: list[CellReport]) -> float:
        if self.metric == "fid" and ctx.trainer is not None:
            return self._best_fid(ctx, reports)
        return float(min(r.best_generator_fitness for r in reports))

    def _best_fid(self, ctx, reports: list[CellReport]) -> float:
        from repro.metrics.scores import frechet_distance

        classifier = self._ensure_classifier(ctx)
        best_cell = int(np.argmin([r.best_generator_fitness for r in reports]))
        # Own RNG only: consuming a cell's stream here would perturb the
        # training trajectory and break backend bit-equivalence.
        fake = ctx.trainer.cells[best_cell].sample_from_mixture(
            self.fid_samples, self._rng)
        images = ctx.dataset.images
        picks = self._rng.choice(len(images), size=min(self.fid_samples, len(images)),
                                 replace=False)
        return frechet_distance(classifier, images[picks], fake)

    def _ensure_classifier(self, ctx):
        if self._classifier is None:
            from repro.metrics.classifier import train_digit_classifier

            dataset = ctx.dataset
            if dataset.labels is None:
                raise ValueError("FID early stopping needs a labeled dataset")
            n = min(len(dataset), 2000)
            self._classifier = train_digit_classifier(
                dataset.images[:n], dataset.labels[:n],
                np.random.default_rng(12345), epochs=self.classifier_epochs,
            )
        return self._classifier


class JsonlMetrics(Callback):
    """Stream per-iteration metrics as one JSON object per line.

    The file is append-friendly and tail-able while a run is in flight —
    the streaming analogue of the post-hoc ``metrics.dynamics`` curves.
    The writing itself rides :class:`repro.telemetry.JsonlWriter` (lazy
    append-open, one sorted-key JSON object per line, flushed per record),
    so every JSONL stream in the system shares one implementation.
    """

    def __init__(self, path: str | os.PathLike):
        from repro.telemetry import JsonlWriter

        self.path = os.fspath(path)
        self._writer = JsonlWriter(self.path)

    def _write(self, record: dict) -> None:
        self._writer.write(record)

    def on_run_start(self, ctx) -> None:
        coev = ctx.config.coevolution
        self._write({
            "event": "run_start",
            "backend": ctx.backend_name,
            "grid": [coev.grid_rows, coev.grid_cols],
            "iterations": coev.iterations,
            "seed": ctx.config.seed,
        })

    def on_iteration_end(self, ctx, iteration, reports) -> None:
        self._write({
            "event": "iteration",
            "iteration": iteration,
            "best_generator_fitness": float(min(r.best_generator_fitness
                                                for r in reports)),
            "cells": [
                {
                    "generator_fitness": float(r.best_generator_fitness),
                    "discriminator_fitness": float(r.best_discriminator_fitness),
                    "learning_rate": float(r.learning_rate),
                    "d_loss": None if math.isnan(r.d_loss) else float(r.d_loss),
                    "g_loss": None if math.isnan(r.g_loss) else float(r.g_loss),
                }
                for r in reports
            ],
        })

    def on_checkpoint(self, ctx, path, checkpoint) -> None:
        self._write({"event": "checkpoint", "path": os.fspath(path),
                     "iteration": checkpoint.iteration})

    def on_run_end(self, ctx, result) -> None:
        self._write({
            "event": "run_end",
            "backend": result.backend,
            "iterations_run": result.iterations_run,
            "stopped_early": result.stopped_early,
            "wall_time_s": result.wall_time_s,
            "best_cell": result.best_cell_index(),
            "complete": result.complete,
        })
        self._writer.close()
