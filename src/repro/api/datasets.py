"""Built-in dataset builders for :data:`repro.registry.DATASETS`.

Each builder takes the resolved :class:`~repro.config.ExperimentConfig` and
returns a tanh-range :class:`~repro.data.ArrayDataset` sized to
``config.dataset_size``.  Registering a new scenario is one call::

    from repro.registry import DATASETS

    DATASETS.register("my-corpus", lambda config: build_my_corpus(config))
    Experiment(config).dataset("my-corpus").run()
"""

from __future__ import annotations

from repro.config import ConfigError, ExperimentConfig
from repro.data.dataset import ArrayDataset

__all__ = ["synthetic_mnist", "synthetic_shapes"]


def synthetic_mnist(config: ExperimentConfig, *, cache: bool = True) -> ArrayDataset:
    """The default corpus: stroke-rendered 28x28 digits (paper's MNIST stand-in)."""
    from repro.coevolution.sequential import build_training_dataset

    return build_training_dataset(config, cache=cache)


def synthetic_shapes(config: ExperimentConfig, *, noise_std: float = 0.04) -> ArrayDataset:
    """32x32 RGB shapes (3072 dims) — the paper's "higher dimensional" future work."""
    from repro.data.shapes import SHAPES_PIXELS, load_synthetic_shapes
    from repro.data.transforms import to_tanh_range

    if config.network.output_neurons != SHAPES_PIXELS:
        raise ConfigError(
            f"the shapes dataset is {SHAPES_PIXELS}-dimensional but the network "
            f"emits {config.network.output_neurons} neurons; set "
            f"network.output_neurons={SHAPES_PIXELS}")
    images, labels = load_synthetic_shapes(config.dataset_size, seed=config.seed,
                                           noise_std=noise_std)
    return ArrayDataset(to_tanh_range(images), labels)
