"""Pluggable execution substrates behind one :class:`TrainerBackend` face.

The paper's Table III compares the same cellular algorithm on two
substrates — single core and master–slave MPI.  Here each substrate is a
backend implementing ``execute(ctx) -> RunResult``; the facade resolves one
by name from :data:`repro.registry.BACKENDS`, so registering a new backend
makes it reachable from :class:`~repro.api.Experiment`, the CLI and the
configuration layer with zero core edits.

* :class:`SequentialBackend` drives the single-core trainer one iteration
  at a time, firing callbacks live (early stopping and periodic
  checkpointing work mid-run).
* :class:`ProcessBackend` / :class:`ThreadedBackend` / :class:`SocketBackend`
  delegate to the master–slave :class:`~repro.parallel.DistributedRunner`
  and replay the per-iteration hooks from the reduced reports afterwards.
  The socket backend runs the ranks in TCP worker processes — pass
  ``hosts="nodeA:5,nodeB:4"`` (and ``bind=``) to span machines.

Backend bit-equivalence (the paper's sequential-vs-distributed guarantee)
is preserved through this layer and asserted by the facade tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro import _deprecation
from repro.api.callbacks import CallbackList
from repro.api.result import RunResult
from repro.config import ExperimentConfig
from repro.data.dataset import ArrayDataset
from repro.profiling import RoutineTimer
from repro.telemetry import bus as telemetry

__all__ = [
    "RunContext",
    "TrainerBackend",
    "SequentialBackend",
    "ProcessBackend",
    "ThreadedBackend",
    "SocketBackend",
]


@dataclass
class RunContext:
    """Everything a backend (and its callbacks) needs for one run."""

    config: ExperimentConfig
    dataset: ArrayDataset | None
    """The materialized corpus; None when the backend renders per node
    instead (socket runs started from a registry dataset name)."""
    callbacks: CallbackList = field(default_factory=CallbackList)
    backend_name: str = ""
    exchange_mode: str = "neighbors"
    profile: bool = False
    dataset_spec: tuple[str, dict] | None = None
    """Registry name + options the dataset came from (when it did) — lets
    spawn-based backends re-render per node instead of shipping arrays."""
    checkpoint: Any = None
    """Optional :class:`TrainingCheckpoint` to resume from (sequential only)."""
    trainer: Any = None
    """The live :class:`SequentialTrainer` (None on distributed backends)."""
    stop_requested: bool = False

    def request_stop(self) -> None:
        """Ask the run loop to stop after the current iteration (live backends)."""
        self.stop_requested = True

    @property
    def can_checkpoint(self) -> bool:
        """True when a mid-run checkpoint is possible (live trainer present)."""
        return self.trainer is not None

    def write_checkpoint(self, path) -> Any:
        """Snapshot the live trainer to ``path`` and fire ``on_checkpoint``."""
        if self.trainer is None:
            raise RuntimeError(
                "mid-run checkpoints need a live trainer; distributed backends "
                "checkpoint at run end (RunResult.save_checkpoint)")
        from repro.coevolution.checkpoint import TrainingCheckpoint, save_checkpoint

        checkpoint = TrainingCheckpoint.from_trainer(self.trainer)
        save_checkpoint(path, checkpoint)
        self.callbacks.on_checkpoint(self, path, checkpoint)
        return checkpoint


class TrainerBackend:
    """Protocol every execution substrate implements."""

    name: str = "abstract"
    #: True when the substrate's workers rebuild registry datasets on their
    #: own node — the facade then skips materializing the arrays locally.
    renders_remotely: bool = False

    def execute(self, ctx: RunContext) -> RunResult:
        raise NotImplementedError


class SequentialBackend(TrainerBackend):
    """The single-core baseline, driven iteration-by-iteration.

    Runs the exact loop of :meth:`SequentialTrainer.run` (same snapshot
    semantics, same RNG discipline — bit-identical genomes) but yields
    control to the callback list between iterations.
    """

    name = "sequential"

    def execute(self, ctx: RunContext) -> RunResult:
        from repro.coevolution.sequential import SequentialTrainer
        from repro.runtime import pin_blas_threads

        with _deprecation.suppressed():
            if ctx.checkpoint is not None:
                trainer = SequentialTrainer.from_checkpoint(ctx.checkpoint, ctx.dataset)
            else:
                trainer = SequentialTrainer(ctx.config, ctx.dataset)
        ctx.trainer = trainer
        pin_blas_threads(1)
        if telemetry.enabled():
            # Each run starts from a clean bus so the result's merged view
            # covers exactly this run.
            telemetry.reset()
        timers = [RoutineTimer() for _ in trainer.cells] if ctx.profile else None
        total = max(0, trainer.config.coevolution.iterations - trainer.start_iteration)

        ctx.callbacks.on_run_start(ctx)
        executed = 0
        stopped = False
        start = time.perf_counter()
        for _ in range(total):
            next_iteration = trainer.cells[0].iteration + 1 if trainer.cells else 1

            def fire_exchange(_snapshots, iteration=next_iteration):
                ctx.callbacks.on_exchange(ctx, iteration)

            reports = trainer.step_iteration(timers, on_exchange=fire_exchange)
            executed += 1
            ctx.callbacks.on_iteration_end(ctx, reports[0].iteration, reports)
            if ctx.stop_requested:
                stopped = True
                break
        wall = time.perf_counter() - start

        merged = None
        if telemetry.enabled():
            snap = telemetry.snapshot(None)
            if not snap.empty:
                merged = telemetry.merge_telemetry([snap])
        result = RunResult(
            backend=self.name,
            training=trainer.result(wall, timers),
            iteration=trainer.cells[0].iteration if trainer.cells else 0,
            iterations_run=executed,
            stopped_early=stopped,
            trainer=trainer,
            telemetry=merged,
        )
        ctx.callbacks.on_run_end(ctx, result)
        return result


class _DistributedBackend(TrainerBackend):
    """Shared driver for the master–slave substrates.

    Extra constructor options pass straight through to
    :class:`~repro.parallel.DistributedRunner` (``trace=``, ``platform=``,
    ``fault_at=``, ``heartbeat_interval_s=``, ``miss_limit=``,
    ``timeout_s=``), so fault-injection and tracing scenarios need no
    dedicated front door.
    """

    name = "abstract-distributed"

    def __init__(self, **runner_options: Any):
        self.runner_options = runner_options

    def execute(self, ctx: RunContext) -> RunResult:
        from repro.parallel.runner import DistributedRunner

        if ctx.checkpoint is not None:
            raise ValueError(
                f"the {self.name!r} backend cannot resume a checkpoint; "
                "resume runs on the 'sequential' backend")
        with _deprecation.suppressed():
            runner = DistributedRunner(
                ctx.config, backend=self.name, dataset=ctx.dataset,
                dataset_spec=ctx.dataset_spec,
                exchange_mode=ctx.exchange_mode, profile=ctx.profile,
                **self.runner_options)
        if telemetry.enabled():
            telemetry.reset()
        ctx.callbacks.on_run_start(ctx)
        distributed = runner.run()

        reports = distributed.training.cell_reports
        # The furthest any slave got; < configured when ranks died mid-run,
        # so checkpoints of aborted runs stay resumable.
        iterations = max((len(r) for r in reports), default=0)
        result = RunResult(
            backend=self.name,
            training=distributed.training,
            distributed=distributed,
            iteration=iterations,
            iterations_run=iterations,
            telemetry=distributed.telemetry,
        )
        # Replay the per-iteration hooks from the reduced reports so
        # observers (metrics streams, loggers) see the same event sequence
        # as on the live sequential loop.
        for index in range(iterations):
            present = [r[index] for r in reports if len(r) > index]
            ctx.callbacks.on_exchange(ctx, present[0].iteration)
            ctx.callbacks.on_iteration_end(ctx, present[0].iteration, present)
        ctx.callbacks.on_run_end(ctx, result)
        return result


class ProcessBackend(_DistributedBackend):
    """Master–slave over forked processes (true multi-core parallelism)."""

    name = "process"


class ThreadedBackend(_DistributedBackend):
    """Master–slave over threads (deterministic, test-friendly)."""

    name = "threaded"


class SocketBackend(_DistributedBackend):
    """Master–slave over TCP worker processes (single- or multi-node).

    Constructor options reach :class:`~repro.parallel.DistributedRunner`
    unchanged; the load-bearing ones are ``hosts="nodeA:5,nodeB:4"`` (where
    the ranks run; localhost entries are spawned automatically) and
    ``bind="0.0.0.0:5555"`` (the rendezvous address remote ``repro worker``
    processes connect to).  When the experiment's dataset came from the
    registry, each node renders its own copy instead of receiving the
    arrays over the wire.
    """

    name = "socket"
    renders_remotely = True
