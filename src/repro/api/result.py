"""The one result type every backend returns.

:class:`RunResult` unifies :class:`~repro.coevolution.TrainingResult`
(sequential runs) and :class:`~repro.parallel.DistributedResult`
(master–slave runs): the common fields are promoted to the top level, the
backend-specific artifacts stay reachable via :attr:`training` and
:attr:`distributed`, and the hand-offs the rest of the system needs —
serving (:meth:`to_servable`), checkpointing (:meth:`save_checkpoint`),
Table IV profiling (:meth:`profile`) — hang off the one object regardless
of which substrate produced it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.coevolution.cell import CellReport
from repro.coevolution.genome import Genome
from repro.coevolution.sequential import TrainingResult
from repro.config import ExperimentConfig
from repro.parallel.runner import DistributedResult
from repro.profiling import TimerSnapshot, merge_snapshots

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Outcome of one :meth:`repro.api.Experiment.run` call."""

    backend: str
    training: TrainingResult
    distributed: DistributedResult | None = None
    iteration: int = 0
    """Absolute coevolutionary iteration reached (counts resumed progress)."""
    iterations_run: int = 0
    """Iterations executed by *this* run (< configured when stopped early)."""
    stopped_early: bool = False
    trainer: Any = field(default=None, repr=False)
    """The live :class:`SequentialTrainer` (sequential backend only; None on
    distributed runs, whose per-cell state lives in the slave processes).
    An escape hatch for post-run inspection — per-cell mixtures, loss
    assignments — without leaving the facade."""
    telemetry: Any = field(default=None, repr=False)
    """Merged :class:`repro.telemetry.bus.MergedTelemetry` for the run —
    every rank's spans/counters time-aligned (plus the launcher buffer on
    distributed runs).  ``None`` when telemetry was off.  Feed it to
    :func:`repro.telemetry.to_perfetto` / :func:`repro.telemetry.to_prometheus`
    or inspect ``span_totals`` / ``counters`` directly."""

    # -- common fields, promoted ------------------------------------------

    @property
    def config(self) -> ExperimentConfig:
        return self.training.config

    @property
    def center_genomes(self) -> list[tuple[Genome, Genome]]:
        return self.training.center_genomes

    @property
    def mixture_weights(self) -> list[np.ndarray]:
        return self.training.mixture_weights

    @property
    def cell_reports(self) -> list[list[CellReport]]:
        return self.training.cell_reports

    @property
    def wall_time_s(self) -> float:
        return self.training.wall_time_s

    @property
    def complete(self) -> bool:
        """False when a distributed run lost slaves (see :attr:`dead_ranks`)."""
        return self.distributed.complete if self.distributed is not None else True

    @property
    def dead_ranks(self) -> list[int]:
        return list(self.distributed.dead_ranks) if self.distributed is not None else []

    @property
    def fault_policy(self) -> str:
        """The fault policy the run executed under (``abort`` when the
        substrate has no ranks to lose)."""
        return (self.distributed.fault_policy
                if self.distributed is not None else "abort")

    @property
    def degraded_ranks(self) -> list[int]:
        """Dead ranks whose cells finished frozen at their last checkpoint."""
        if self.distributed is not None:
            return list(self.distributed.degraded_ranks)
        return []

    @property
    def recovered_ranks(self) -> list[int]:
        """Dead ranks whose cells were trained to completion anyway."""
        if self.distributed is not None:
            return list(self.distributed.recovered_ranks)
        return []

    @property
    def drained_ranks(self) -> list[int]:
        """Ranks that left voluntarily mid-run (graceful drain, not a fault)."""
        if self.distributed is not None:
            return list(getattr(self.distributed, "drained_ranks", []))
        return []

    @property
    def joined_ranks(self) -> list[int]:
        """Ranks admitted through the live rendezvous after launch."""
        if self.distributed is not None:
            return list(getattr(self.distributed, "joined_ranks", []))
        return []

    @property
    def membership(self):
        """The run's :class:`repro.parallel.elastic.MembershipLog` — every
        epoch transition in order (``None`` on sequential runs and backends
        that do not report one)."""
        if self.distributed is not None:
            return getattr(self.distributed, "membership", None)
        return None

    @property
    def ok(self) -> bool:
        """Did the run deliver what its fault policy promises?

        Sequential runs are always ok; distributed runs defer to
        :attr:`DistributedResult.ok` (abort: no deaths; degrade: frozen
        cells are the contract; recover: every lost cell recovered)."""
        return self.distributed.ok if self.distributed is not None else True

    @property
    def traces(self) -> list:
        """Event traces of a traced distributed run (empty otherwise)."""
        return list(self.distributed.traces) if self.distributed is not None else []

    @property
    def transport_stats(self) -> list:
        """Per-rank :class:`~repro.mpi.TransportStats` of a distributed run
        (rank order, rank 0 = master; empty on sequential runs, which move
        no messages)."""
        if self.distributed is not None:
            return list(self.distributed.transport_stats)
        return []

    def best_cell_index(self) -> int:
        """Cell whose final generator fitness is best (lowest loss)."""
        return self.training.best_cell_index()

    # -- hand-offs ---------------------------------------------------------

    def to_servable(self, cell: int | None = None):
        """Build a serving-layer ensemble from the final centers."""
        return self.training.to_servable(cell=cell)

    def to_checkpoint(self):
        """Snapshot the final state as a resumable checkpoint.

        Works for every backend — the distributed reduction delivers the
        same per-cell centers and mixture weights the sequential trainer
        holds, so ``repro run --backend process --checkpoint out.npz`` is
        now first-class.
        """
        from repro.coevolution.checkpoint import TrainingCheckpoint

        return TrainingCheckpoint(
            config=self.config,
            iteration=self.iteration,
            center_genomes=list(self.center_genomes),
            mixture_weights=[np.asarray(w).copy() for w in self.mixture_weights],
        )

    def save_checkpoint(self, path: str | os.PathLike):
        """Write :meth:`to_checkpoint` to ``path``; returns the checkpoint."""
        from repro.coevolution.checkpoint import save_checkpoint

        checkpoint = self.to_checkpoint()
        save_checkpoint(path, checkpoint)
        return checkpoint

    def profile(self, *, parallel: bool = False) -> TimerSnapshot:
        """Merged per-routine profile (Table IV).

        ``parallel=False`` sums routine times across cells (total CPU
        work); ``parallel=True`` takes the max across concurrent slaves
        (wall-clock view).  Requires the run to have been profiled
        (``Experiment.profile()`` / ``--profile``).
        """
        if self.distributed is not None:
            if parallel:
                return self.distributed.distributed_profile()
            return self.distributed.total_work_profile()
        return merge_snapshots(self.training.timer_snapshots, parallel=parallel)

    def summary(self) -> str:
        """One line for CLI/log output."""
        if self.complete:
            status = "complete"
        elif self.recovered_ranks or self.degraded_ranks:
            status = (f"dead ranks {self.dead_ranks} "
                      f"(recovered {self.recovered_ranks}, "
                      f"degraded {self.degraded_ranks})")
        else:
            status = f"dead ranks {self.dead_ranks}"
        early = ", stopped early" if self.stopped_early else ""
        elastic = ""
        if self.drained_ranks:
            elastic += f", drained {self.drained_ranks}"
        if self.joined_ranks:
            elastic += f", joined {self.joined_ranks}"
        return (f"{self.backend} run: {self.iterations_run} iteration(s) in "
                f"{self.wall_time_s:.2f}s, {status}{early}{elastic}, "
                f"best cell {self.best_cell_index()}")
