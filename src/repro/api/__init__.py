"""repro.api — the unified experiment layer.

One facade (:class:`Experiment`) in front of every execution substrate, with
string-keyed registries for backends/datasets/losses and a callback-driven
run loop.  See :mod:`repro.api.experiment` for the full tour::

    from repro.api import Experiment

    result = Experiment().grid(2, 2).backend("process").run()
    print(result.summary())

The old entry points (:class:`~repro.coevolution.SequentialTrainer`,
:class:`~repro.parallel.DistributedRunner`) keep working but are deprecated
in favor of this module.
"""

from repro.api.backends import (
    ProcessBackend,
    RunContext,
    SequentialBackend,
    SocketBackend,
    ThreadedBackend,
    TrainerBackend,
)
from repro.api.callbacks import (
    Callback,
    CallbackList,
    EarlyStopping,
    JsonlMetrics,
    PeriodicCheckpoint,
)
from repro.api.experiment import (
    DEFAULT_DATASET,
    Experiment,
    load_ensemble,
    serve_checkpoint,
)
from repro.api.result import RunResult
from repro.registry import (
    BACKENDS,
    DATASETS,
    LOSSES,
    BackendRegistry,
    DatasetRegistry,
    LossRegistry,
    Registry,
    RegistryError,
)

__all__ = [
    "Experiment",
    "DEFAULT_DATASET",
    "RunResult",
    "RunContext",
    "TrainerBackend",
    "SequentialBackend",
    "ProcessBackend",
    "ThreadedBackend",
    "SocketBackend",
    "Callback",
    "CallbackList",
    "PeriodicCheckpoint",
    "EarlyStopping",
    "JsonlMetrics",
    "Registry",
    "RegistryError",
    "BackendRegistry",
    "DatasetRegistry",
    "LossRegistry",
    "BACKENDS",
    "DATASETS",
    "LOSSES",
    "serve_checkpoint",
    "load_ensemble",
]
