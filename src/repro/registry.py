"""String-keyed component registries backing :mod:`repro.api`.

The paper's point is that one cellular coevolutionary algorithm runs over
interchangeable execution substrates; this module is where the
interchangeability lives.  Three registries — backends, datasets, losses —
map configuration names to factories, so a new scenario (a custom GAN loss,
a procedurally generated dataset, an experimental execution backend) is one
``register()`` call away and needs **zero core edits**:

    from repro.registry import LOSSES

    LOSSES.register("wgan", WassersteinLoss)
    config = default_config()            # loss_function="wgan" now validates
    Experiment(config).loss("wgan").run()

This module is deliberately a *leaf*: it imports nothing from the rest of
``repro``, so low-level modules (:mod:`repro.config.settings`,
:mod:`repro.nn.losses`) can consult it without import cycles.  The built-in
entries are registered **lazily** as ``"module:attribute"`` paths and only
imported when first created — name lookups (config validation, CLI
``choices=``) never pull in heavy modules.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = [
    "Registry",
    "RegistryError",
    "BackendRegistry",
    "DatasetRegistry",
    "LossRegistry",
    "DtypeRegistry",
    "DtypePolicy",
    "BACKENDS",
    "DATASETS",
    "LOSSES",
    "DTYPES",
    "dtype_policy",
]


class RegistryError(KeyError):
    """Raised when a name is not (or already) registered."""


class Registry:
    """A string-keyed map of factories with lazy built-in entries.

    ``register(name, factory)`` stores a callable; ``create(name, *a, **kw)``
    resolves the factory and calls it.  Built-ins are declared as
    ``register_lazy(name, "pkg.module:attr")`` and imported on first use.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}
        self._lazy: dict[str, str] = {}

    # -- registration -----------------------------------------------------

    def register(self, name: str, factory: Callable[..., Any], *,
                 overwrite: bool = False) -> Callable[..., Any]:
        """Register ``factory`` under ``name``; returns the factory so the
        call can double as a decorator: ``@LOSSES.register_decorator(...)``
        is spelled ``LOSSES.register("name", cls)`` or used inline."""
        if not name or not isinstance(name, str):
            raise RegistryError(f"{self.kind} name must be a non-empty string")
        if not callable(factory):
            raise RegistryError(f"{self.kind} factory for {name!r} must be callable")
        if not overwrite and name in self:
            raise RegistryError(
                f"{self.kind} {name!r} is already registered "
                "(pass overwrite=True to replace it)")
        self._lazy.pop(name, None)
        self._factories[name] = factory
        return factory

    def register_lazy(self, name: str, path: str, *, overwrite: bool = False) -> None:
        """Register a built-in as an import path ``"pkg.module:attr"``."""
        if not overwrite and name in self:
            raise RegistryError(f"{self.kind} {name!r} is already registered")
        self._factories.pop(name, None)
        self._lazy[name] = path

    def unregister(self, name: str) -> None:
        """Remove an entry (mostly for tests cleaning up after themselves)."""
        if name in self._factories:
            del self._factories[name]
        elif name in self._lazy:
            del self._lazy[name]
        else:
            raise RegistryError(f"{self.kind} {name!r} is not registered")

    # -- resolution -------------------------------------------------------

    def get(self, name: str) -> Callable[..., Any]:
        """The factory registered under ``name`` (importing it if lazy)."""
        if name in self._factories:
            return self._factories[name]
        if name in self._lazy:
            module_name, _, attr = self._lazy[name].partition(":")
            factory = getattr(importlib.import_module(module_name), attr)
            self._factories[name] = factory
            del self._lazy[name]
            return factory
        raise RegistryError(
            f"unknown {self.kind} {name!r}; known: {sorted(self.known())}")

    def create(self, name: str, *args: Any, **kwargs: Any) -> Any:
        """Resolve and call the factory."""
        return self.get(name)(*args, **kwargs)

    def known(self) -> set[str]:
        """Every registered name, lazy or concrete."""
        return set(self._factories) | set(self._lazy)

    def __contains__(self, name: object) -> bool:
        return name in self._factories or name in self._lazy

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self.known()))

    def __len__(self) -> int:
        return len(self._factories) + len(self._lazy)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.kind}: {sorted(self.known())}>"


class BackendRegistry(Registry):
    """Execution substrates: factories ``(**options) -> TrainerBackend``.

    Built-ins mirror the paper's Table III substrates: ``sequential`` (the
    single-core baseline), ``process`` (true multi-core master–slave) and
    ``threaded`` (deterministic in-process master–slave).
    """


class DatasetRegistry(Registry):
    """Training datasets: factories ``(config) -> ArrayDataset``."""


@dataclass(frozen=True)
class DtypePolicy:
    """A run-level precision policy: one name, two dtype roles.

    * ``compute`` — the dtype parameters, gradients, optimizer state and
      kernel workspaces live in.  Every GEMM and every optimizer moment
      accumulates here.
    * ``storage`` — the dtype genome vectors take at *storage boundaries*:
      exchange snapshots, wire frames, checkpoints.  ``mixed16`` narrows to
      float16 there (halving exchange bytes again) while computing in
      float32; the other policies store and compute in the same dtype.

    Dtypes are numpy dtype *names* (strings), not numpy objects — this
    module stays a leaf with no numpy import.
    """

    name: str
    compute: str
    storage: str

    def __call__(self) -> "DtypePolicy":
        # Policies are their own zero-arg factories so plain instances can
        # be registered: ``DTYPES.create(name)`` returns the policy itself.
        return self


class DtypeRegistry(Registry):
    """Precision policies: ``float64`` | ``float32`` | ``mixed16``.

    ``NetworkSettings.dtype`` validates against this registry and every
    layer (arena slabs, fused kernels, optimizer state, the socket wire
    handshake) resolves its dtype through the named policy, so a custom
    policy is one ``register()`` call away like any backend or loss.
    """


class LossRegistry(Registry):
    """GAN losses: factories ``() -> GANLoss`` (usually the loss class).

    ``repro.nn.loss_by_name`` and ``TrainingSettings`` validation both
    resolve against this registry, so a registered loss is immediately
    usable as ``loss_function`` in an :class:`~repro.config.ExperimentConfig`.
    """


BACKENDS = BackendRegistry("backend")
BACKENDS.register_lazy("sequential", "repro.api.backends:SequentialBackend")
BACKENDS.register_lazy("process", "repro.api.backends:ProcessBackend")
BACKENDS.register_lazy("threaded", "repro.api.backends:ThreadedBackend")
BACKENDS.register_lazy("socket", "repro.api.backends:SocketBackend")

DATASETS = DatasetRegistry("dataset")
DATASETS.register_lazy("synthetic-mnist", "repro.api.datasets:synthetic_mnist")
DATASETS.register_lazy("synthetic-shapes", "repro.api.datasets:synthetic_shapes")

LOSSES = LossRegistry("loss")
LOSSES.register_lazy("bce", "repro.nn.losses:BCELoss")
LOSSES.register_lazy("mse", "repro.nn.losses:LeastSquaresLoss")
LOSSES.register_lazy("heuristic", "repro.nn.losses:HeuristicLoss")

DTYPES = DtypeRegistry("dtype")
DTYPES.register("float64", DtypePolicy("float64", compute="float64", storage="float64"))
DTYPES.register("float32", DtypePolicy("float32", compute="float32", storage="float32"))
DTYPES.register("mixed16", DtypePolicy("mixed16", compute="float32", storage="float16"))


def dtype_policy(name: str) -> DtypePolicy:
    """Resolve a policy name to its :class:`DtypePolicy` (loud on unknowns)."""
    return DTYPES.create(name)
