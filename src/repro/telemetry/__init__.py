"""``repro.telemetry`` — one span/counter/gauge bus for every layer.

A process-local, thread-safe, rank-aware telemetry bus
(:mod:`repro.telemetry.bus`) with near-zero cost when disabled, exporters
to Perfetto trace JSON / Prometheus text / JSONL
(:mod:`repro.telemetry.export`), and trace analysis for ``repro trace``
(:mod:`repro.telemetry.summary`).  Enable with ``REPRO_TELEMETRY=basic``
(totals and counters) or ``trace`` (full timeline), or through
``Experiment.telemetry(...)`` / ``repro run --trace out.json``.

Instrumentation map — which subsystem emits what
================================================

Spans (``telemetry.span``):

====================  =========================================  ==========================================
span                  emitted by                                 meaning
====================  =========================================  ==========================================
``cell.update_genomes``  ``coevolution.cell.Cell.step``          neighborhood refresh (Table IV routine)
``cell.train``        ``coevolution.cell.Cell.step``             selection + GAN training + promotion
``cell.mutate``       ``coevolution.cell.Cell.step``             lr mutation + (1+1)-ES mixture update
``train.d_step``      ``gan.pair.GANPair``                       one discriminator batch (fused or tape)
``train.g_step``      ``gan.pair.GANPair``                       one generator batch (fused or tape)
``exchange.gather``   ``parallel.comm_manager``, ``coevolution.  genome exchange / neighborhood snapshot
                      sequential``                               (the paper's ``gather`` routine)
``socket.rendezvous`` ``mpi.socket_transport``                   master waiting for workers to connect
``serving.batch``     ``serving.engine.BatchingEngine``          one coalesced fused forward batch
====================  =========================================  ==========================================

Counters (``telemetry.count``):

==========================  =========================================
counter                     emitted by
==========================  =========================================
``optim.steps``             ``nn.optim.Optimizer`` + tape fallback
``kernels.forward``         ``nn.kernels.FusedStepKernel.forward``
``kernels.backward``        ``nn.kernels.FusedStepKernel.backward``
``exchange.genomes_sent``   ``parallel.comm_manager``
``exchange.bytes_sent``     ``parallel.comm_manager``
``mpi.messages_sent``       ``mpi.stats.TransportStats`` (absorbed)
``mpi.messages_received``   ``mpi.stats.TransportStats`` (absorbed)
``mpi.bytes_sent``          ``mpi.stats.TransportStats`` (absorbed)
``mpi.bytes_received``      ``mpi.stats.TransportStats`` (absorbed)
``socket.workers_admitted`` ``mpi.socket_transport`` rendezvous
``socket.hello_rejected``   ``mpi.socket_transport`` rendezvous
``serving.requests``        ``serving.server.GeneratorServer``
``serving.batches``         ``serving.engine.BatchingEngine``
``serving.batch_requests``  ``serving.engine.BatchingEngine``
==========================  =========================================

Gauges (``telemetry.gauge``; current value + peak):

=======================  =========================================
gauge                    emitted by
=======================  =========================================
``serving.queue_depth``  ``serving.engine.BatchingEngine``
``serving.batch_size``   ``serving.engine.BatchingEngine``
=======================  =========================================

Rank flow: each rank's buffer is snapshotted in ``mpi.transport.
execute_rank`` (and, for remote socket workers, inside ``SlaveResult``),
ships over the existing transport, and is merged time-aligned on the
master into ``RunResult.telemetry`` — superseding the three earlier
fragments (``profiling.timer`` aggregation, ``parallel.tracing`` merge,
``mpi.stats`` reduction), which remain as thin views/adapters.
"""

from repro.telemetry.bus import (
    BASIC,
    LEVELS,
    OFF,
    TRACE,
    MergedTelemetry,
    SpanEvent,
    TelemetrySnapshot,
    all_snapshots,
    bind_rank,
    count,
    enabled,
    gauge,
    level_name,
    merge_telemetry,
    reset,
    set_level,
    snapshot,
    span,
    tracing,
    unbind_rank,
)
from repro.telemetry.export import (
    JsonlWriter,
    parse_prometheus,
    to_perfetto,
    to_prometheus,
    write_trace,
)
from repro.telemetry.summary import format_summary, summarize

__all__ = [
    "OFF",
    "BASIC",
    "TRACE",
    "LEVELS",
    "SpanEvent",
    "TelemetrySnapshot",
    "MergedTelemetry",
    "set_level",
    "level_name",
    "enabled",
    "tracing",
    "span",
    "count",
    "gauge",
    "bind_rank",
    "unbind_rank",
    "snapshot",
    "all_snapshots",
    "reset",
    "merge_telemetry",
    "to_perfetto",
    "write_trace",
    "to_prometheus",
    "parse_prometheus",
    "JsonlWriter",
    "summarize",
    "format_summary",
]
