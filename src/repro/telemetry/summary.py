"""Trace analysis for ``repro trace <file>``: totals, overlap, slow cells.

Operates on the Perfetto trace-event dict produced by
:func:`repro.telemetry.export.to_perfetto` (or loaded back from a
``trace.json``), so the CLI can summarize any previously captured run
without the live :class:`MergedTelemetry` object.

The headline numbers mirror the paper's evaluation: per-routine totals in
Table IV's vocabulary (gather/train/update_genomes/mutate), plus the
communication/computation overlap percentage that motivates asynchronous
exchange — the fraction of exchange time during which some *other* rank was
training (overlapped communication is free; non-overlapped is the
synchronization cost ParaGAN-style analyses chase).
"""

from __future__ import annotations

from repro.profiling.timer import PAPER_ROUTINES

__all__ = ["summarize", "format_summary"]

#: Span name -> paper routine (Table IV vocabulary).
SPAN_TO_ROUTINE = {
    "cell.train": "train",
    "train.d_step": None,       # sub-span of cell.train; not double-counted
    "train.g_step": None,
    "exchange.gather": "gather",
    "cell.update_genomes": "update_genomes",
    "cell.mutate": "mutate",
}


def _union(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Merge overlapping intervals into a disjoint, sorted union."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def _intersection_length(interval: tuple[float, float],
                         union: list[tuple[float, float]]) -> float:
    lo, hi = interval
    covered = 0.0
    for start, end in union:
        if end <= lo:
            continue
        if start >= hi:
            break
        covered += min(hi, end) - max(lo, start)
    return covered


def summarize(trace: dict) -> dict:
    """Digest a Perfetto trace dict into the ``repro trace`` report.

    Returns a plain dict: ``routines`` (name -> {seconds, calls}),
    ``spans`` (every span name -> {seconds, calls}), ``ranks`` (pid ->
    process name), ``wall_s`` (extent of the timeline),
    ``exchange_s``/``overlap_s``/``overlap_pct`` (comm/compute overlap),
    and ``slowest_cells`` (list of {cell, seconds, calls}, worst first).
    """
    events = [e for e in trace.get("traceEvents", []) if e.get("ph") == "X"]
    names = {}
    for meta in trace.get("traceEvents", []):
        if meta.get("ph") == "M" and meta.get("name") == "process_name":
            names[meta["pid"]] = meta.get("args", {}).get("name", str(meta["pid"]))

    spans: dict[str, dict] = {}
    routines = {routine: {"seconds": 0.0, "calls": 0} for routine in PAPER_ROUTINES}
    cells: dict[object, dict] = {}
    train_by_pid: dict[int, list[tuple[float, float]]] = {}
    exchange: list[tuple[int, float, float]] = []
    lo, hi = float("inf"), float("-inf")

    for event in events:
        seconds = event.get("dur", 0.0) / 1e6
        start = event.get("ts", 0.0) / 1e6
        end = start + seconds
        lo, hi = min(lo, start), max(hi, end)
        name = event.get("name", "?")
        entry = spans.setdefault(name, {"seconds": 0.0, "calls": 0})
        entry["seconds"] += seconds
        entry["calls"] += 1
        routine = SPAN_TO_ROUTINE.get(name, None)
        if routine in routines:
            routines[routine]["seconds"] += seconds
            routines[routine]["calls"] += 1
        pid = event.get("pid", 0)
        if name == "cell.train":
            train_by_pid.setdefault(pid, []).append((start, end))
            cell = (event.get("args") or {}).get("cell")
            if cell is not None:
                slot = cells.setdefault(cell, {"cell": cell, "seconds": 0.0,
                                               "calls": 0})
                slot["seconds"] += seconds
                slot["calls"] += 1
        elif name.startswith("exchange."):
            exchange.append((pid, start, end))

    # Overlap: exchange time on one rank covered by *other* ranks' training.
    exchange_s = sum(end - start for _, start, end in exchange)
    overlap_s = 0.0
    for pid, start, end in exchange:
        others = _union([iv for other, ivs in train_by_pid.items()
                         if other != pid for iv in ivs])
        overlap_s += _intersection_length((start, end), others)

    return {
        "events": len(events),
        "ranks": {pid: names.get(pid, str(pid))
                  for pid in sorted({e.get("pid", 0) for e in events})},
        "wall_s": (hi - lo) if events else 0.0,
        "spans": spans,
        "routines": routines,
        "exchange_s": exchange_s,
        "overlap_s": overlap_s,
        "overlap_pct": (100.0 * overlap_s / exchange_s) if exchange_s else 0.0,
        "slowest_cells": sorted(cells.values(),
                                key=lambda c: -c["seconds"])[:8],
    }


def format_summary(summary: dict) -> str:
    """Human-readable report for the ``repro trace`` subcommand."""
    lines = [
        f"events: {summary['events']}  "
        f"ranks: {len(summary['ranks'])}  "
        f"wall: {summary['wall_s']:.3f}s",
        "",
        "per-routine totals (Table IV vocabulary):",
    ]
    for routine in PAPER_ROUTINES:
        entry = summary["routines"][routine]
        lines.append(f"  {routine:<16} {entry['seconds']:>10.3f}s"
                     f"  x{entry['calls']}")
    other = sorted(
        (name, entry) for name, entry in summary["spans"].items()
        if SPAN_TO_ROUTINE.get(name, "other") not in PAPER_ROUTINES
    )
    if other:
        lines.append("other spans:")
        for name, entry in other:
            lines.append(f"  {name:<24} {entry['seconds']:>10.3f}s"
                         f"  x{entry['calls']}")
    lines += [
        "",
        f"comm/compute overlap: {summary['overlap_s']:.3f}s of "
        f"{summary['exchange_s']:.3f}s exchange time "
        f"({summary['overlap_pct']:.1f}%) hidden behind other ranks' training",
    ]
    if summary["slowest_cells"]:
        lines.append("slowest cells (train time):")
        for slot in summary["slowest_cells"]:
            lines.append(f"  cell {slot['cell']:<4} {slot['seconds']:>10.3f}s"
                         f"  x{slot['calls']}")
    return "\n".join(lines)
