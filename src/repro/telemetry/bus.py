"""The span/counter/gauge bus: one accounting mechanism for every layer.

Design constraints, in priority order:

1. **Near-zero cost when disabled.**  Every public entry point reads the
   module-level ``_LEVEL`` flag first and returns before any allocation,
   lock or clock read.  ``span()`` hands back one shared null context
   manager; ``count()``/``gauge()`` return immediately.  The instrumented
   hot paths (``Cell.step`` phases, fused kernels, optimizer steps, the
   per-message transport counters) therefore pay one attribute load and a
   falsy test per call — asserted to stay within 2% of the train step by
   ``benchmarks/test_train_step.py``.
2. **Thread-safe and rank-aware.**  Buffers are keyed by rank.  A thread
   binds itself to a rank with :func:`bind_rank` (the per-rank main thread
   in ``execute_rank``, the slave's execution thread); unbound threads
   write to the process-default buffer (rank ``None``).  Code that knows
   its rank without a binding — the transport counters — passes ``rank=``
   explicitly.  Each buffer has its own lock, so two ranks hosted as
   threads in one process never contend.
3. **Picklable snapshots, mergeable across processes.**  Every buffer
   records one wall-clock anchor next to a monotonic anchor at creation;
   span events carry monotonic timestamps only.  At merge time each rank's
   events are aligned as ``anchor_wall + (t - anchor_mono)`` — cross-rank
   skew collapses to one constant per rank instead of per-event wall-clock
   jitter (the same fix :mod:`repro.parallel.tracing` applies to the
   Fig. 3 protocol traces).

Levels: ``off`` records nothing, ``basic`` accumulates per-span totals and
counters/gauges (dict updates, no event log), ``trace`` additionally logs
every span as a timeline event for the Perfetto export.  Set via the
``REPRO_TELEMETRY`` environment variable or :func:`set_level` (which also
exports the variable, so forked and spawned workers inherit the choice).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.analysis import lockcheck

__all__ = [
    "OFF",
    "BASIC",
    "TRACE",
    "LEVELS",
    "SpanEvent",
    "TelemetrySnapshot",
    "set_level",
    "level_name",
    "enabled",
    "tracing",
    "span",
    "count",
    "gauge",
    "bind_rank",
    "unbind_rank",
    "snapshot",
    "all_snapshots",
    "reset",
    "MergedTelemetry",
    "merge_telemetry",
]

OFF, BASIC, TRACE = 0, 1, 2
LEVELS = {"off": OFF, "basic": BASIC, "trace": TRACE}
_LEVEL_NAMES = {value: name for name, value in LEVELS.items()}


def _parse_level(text: str | None) -> int:
    if not text:
        return OFF
    try:
        return LEVELS[text.strip().lower()]
    except KeyError:
        raise ValueError(
            f"REPRO_TELEMETRY must be one of {sorted(LEVELS)}, got {text!r}"
        ) from None


#: The module-level enabled flag — checked before any allocation.
_LEVEL: int = _parse_level(os.environ.get("REPRO_TELEMETRY"))  # repro: allow[R8] -- the one-int-check-when-off design needs the level resolved before any count() site runs

_TLS = threading.local()
_BUFFERS: dict[int | None, "_Buffer"] = {}
_BUFFERS_LOCK = threading.Lock()


@dataclass(frozen=True)
class SpanEvent:
    """One completed span on a rank's timeline (``trace`` level only).

    ``start`` is monotonic (``time.perf_counter``) — meaningful only next
    to the owning snapshot's anchors.
    """

    name: str
    start: float
    duration: float
    thread: str
    attrs: dict | None = None


@dataclass
class TelemetrySnapshot:
    """Picklable state of one rank's buffer — what ships to the master.

    ``anchor_wall``/``anchor_mono`` were read back-to-back when the buffer
    was created: ``anchor_wall + (t - anchor_mono)`` places any monotonic
    timestamp ``t`` of this rank on the shared wall-clock axis.
    """

    rank: int | None = None
    anchor_wall: float = 0.0
    anchor_mono: float = 0.0
    span_totals: dict[str, float] = field(default_factory=dict)
    span_counts: dict[str, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    gauge_peaks: dict[str, float] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not (self.span_totals or self.counters or self.gauges
                    or self.events)

    def wall_time(self, mono: float) -> float:
        """Align one of this rank's monotonic timestamps to wall clock."""
        return self.anchor_wall + (mono - self.anchor_mono)

    def span_seconds(self, name: str) -> float:
        return self.span_totals.get(name, 0.0)


class _Buffer:
    """Mutable per-rank accumulation state (lock-guarded)."""

    __slots__ = ("rank", "anchor_wall", "anchor_mono", "lock", "span_totals",
                 "span_counts", "counters", "gauges", "gauge_peaks", "events")

    def __init__(self, rank: int | None):
        self.rank = rank
        # Read back-to-back: the pair is the rank's clock-alignment anchor.
        self.anchor_wall = time.time()
        self.anchor_mono = time.perf_counter()
        self.lock = threading.Lock()
        self.span_totals: dict[str, float] = {}
        self.span_counts: dict[str, int] = {}
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.gauge_peaks: dict[str, float] = {}
        self.events: list[SpanEvent] = []

    def snapshot(self) -> TelemetrySnapshot:
        with self.lock:
            return TelemetrySnapshot(
                rank=self.rank,
                anchor_wall=self.anchor_wall,
                anchor_mono=self.anchor_mono,
                span_totals=dict(self.span_totals),
                span_counts=dict(self.span_counts),
                counters=dict(self.counters),
                gauges=dict(self.gauges),
                gauge_peaks=dict(self.gauge_peaks),
                events=list(self.events),
            )


def _buffer_for(rank: int | None) -> _Buffer:
    buffer = _BUFFERS.get(rank)
    if buffer is None:
        with _BUFFERS_LOCK:
            buffer = _BUFFERS.get(rank)
            if buffer is None:
                buffer = _Buffer(rank)
                _BUFFERS[rank] = buffer
    return buffer


def _resolve(rank: int | None) -> _Buffer:
    if rank is None:
        rank = getattr(_TLS, "rank", None)
    return _buffer_for(rank)


# -- level control -------------------------------------------------------------

def set_level(level: str | int) -> None:
    """Set the telemetry level (``"off"``/``"basic"``/``"trace"``).

    The choice is mirrored into ``os.environ["REPRO_TELEMETRY"]`` so forked
    rank processes and spawned ``repro worker`` subprocesses inherit it.
    Workers on *other machines* do not see this process's environment — the
    master additionally ships the level inside every ``RunTask``.
    """
    global _LEVEL
    _LEVEL = level if isinstance(level, int) else _parse_level(level)
    if _LEVEL not in _LEVEL_NAMES:
        raise ValueError(f"unknown telemetry level {level!r}")
    os.environ["REPRO_TELEMETRY"] = _LEVEL_NAMES[_LEVEL]


def level_name() -> str:
    return _LEVEL_NAMES[_LEVEL]


def enabled() -> bool:
    """True when any recording happens (``basic`` or ``trace``)."""
    return _LEVEL != OFF


def tracing() -> bool:
    """True when the full span timeline is recorded (``trace``)."""
    return _LEVEL >= TRACE


# -- rank binding -------------------------------------------------------------

def bind_rank(rank: int | None) -> None:
    """Attribute this thread's unlabelled records to ``rank``.

    Called by ``execute_rank`` on each rank's main thread and by the
    slave's execution thread; cheap enough to call unconditionally.
    """
    _TLS.rank = rank


def unbind_rank() -> None:
    _TLS.rank = None


# -- recording ----------------------------------------------------------------

class _NullSpan:
    """Shared do-nothing context manager returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: totals at ``basic``, plus a timeline event at ``trace``."""

    __slots__ = ("_buffer", "_name", "_attrs", "_start")

    def __init__(self, buffer: _Buffer, name: str, attrs: dict | None):
        self._buffer = buffer
        self._name = name
        self._attrs = attrs

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        elapsed = time.perf_counter() - self._start
        buffer = self._buffer
        name = self._name
        with buffer.lock:
            lockcheck.check_owned(buffer.lock, "telemetry span buffer")
            buffer.span_totals[name] = buffer.span_totals.get(name, 0.0) + elapsed
            buffer.span_counts[name] = buffer.span_counts.get(name, 0) + 1
            if _LEVEL >= TRACE:
                buffer.events.append(SpanEvent(
                    name=name, start=self._start, duration=elapsed,
                    thread=threading.current_thread().name,
                    attrs=self._attrs,
                ))
        return False


def span(name: str, rank: int | None = None, attrs: dict | None = None):
    """Time a region: ``with telemetry.span("cell.train"): ...``.

    Off: returns the shared null context manager — no allocation, no clock
    read.  ``attrs`` (small dict, e.g. ``{"cell": 3}``) are attached to the
    timeline event at ``trace`` level and surface as Perfetto ``args``.
    """
    if not _LEVEL:
        return _NULL_SPAN
    return _Span(_resolve(rank), name, attrs)


def count(name: str, value: float = 1.0, rank: int | None = None) -> None:
    """Add to a monotonic counter (no-op when telemetry is off)."""
    if not _LEVEL:
        return
    buffer = _resolve(rank)
    with buffer.lock:
        lockcheck.check_owned(buffer.lock, "telemetry counter buffer")
        buffer.counters[name] = buffer.counters.get(name, 0.0) + value


def gauge(name: str, value: float, rank: int | None = None) -> None:
    """Set a gauge to its current value (the peak is tracked alongside)."""
    if not _LEVEL:
        return
    buffer = _resolve(rank)
    with buffer.lock:
        lockcheck.check_owned(buffer.lock, "telemetry gauge buffer")
        buffer.gauges[name] = value
        peak = buffer.gauge_peaks.get(name)
        if peak is None or value > peak:
            buffer.gauge_peaks[name] = value


# -- snapshots ----------------------------------------------------------------

def snapshot(rank: int | None = None) -> TelemetrySnapshot:
    """Picklable copy of one rank's buffer (``None`` = the default buffer)."""
    return _buffer_for(rank).snapshot()


def all_snapshots() -> list[TelemetrySnapshot]:
    """Snapshots of every non-empty buffer in this process, rank order."""
    with _BUFFERS_LOCK:
        buffers = list(_BUFFERS.values())
    snaps = [b.snapshot() for b in buffers]
    return sorted((s for s in snaps if not s.empty),
                  key=lambda s: (s.rank is None, s.rank if s.rank is not None else 0))


def reset() -> None:
    """Drop every buffer (fresh anchors on next use) — run isolation."""
    with _BUFFERS_LOCK:
        _BUFFERS.clear()


# -- merging ------------------------------------------------------------------

@dataclass
class MergedTelemetry:
    """Per-rank snapshots plus cluster-wide aggregates — ``RunResult.telemetry``.

    Counters and span call counts are summed across ranks; gauges keep the
    per-rank values (summing queue depths across ranks is meaningless, so
    the aggregate view exposes the peak).  Span *wall* totals are summed
    too — the parallel=max reading of Table IV lives in
    :func:`repro.profiling.timer.merge_snapshots`, reachable via
    :meth:`per_rank` + the ``timer_snapshot`` adapter.
    """

    snapshots: list[TelemetrySnapshot] = field(default_factory=list)
    span_totals: dict[str, float] = field(default_factory=dict)
    span_counts: dict[str, int] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    gauge_peaks: dict[str, float] = field(default_factory=dict)

    @property
    def ranks(self) -> list[int | None]:
        return [snap.rank for snap in self.snapshots]

    def per_rank(self, rank: int | None) -> TelemetrySnapshot | None:
        for snap in self.snapshots:
            if snap.rank == rank:
                return snap
        return None

    def span_seconds(self, name: str) -> float:
        return self.span_totals.get(name, 0.0)

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    @property
    def events(self) -> int:
        return sum(len(snap.events) for snap in self.snapshots)


def merge_telemetry(snapshots: list[TelemetrySnapshot | None]) -> MergedTelemetry:
    """Combine per-rank snapshots (``None`` holes from dead ranks allowed).

    Two snapshots claiming the same rank (e.g. the launcher's transport-side
    capture and a slave's own) are collapsed by keeping the richer one —
    more events, then more recorded spans — so nothing is double-counted.
    """
    by_rank: dict[int | None, TelemetrySnapshot] = {}
    for snap in snapshots:
        if snap is None or snap.empty:
            continue
        held = by_rank.get(snap.rank)
        if held is None or (
            (len(snap.events), len(snap.span_counts), len(snap.counters))
            > (len(held.events), len(held.span_counts), len(held.counters))
        ):
            by_rank[snap.rank] = snap
    merged = MergedTelemetry(snapshots=sorted(
        by_rank.values(),
        key=lambda s: (s.rank is None, s.rank if s.rank is not None else 0),
    ))
    for snap in merged.snapshots:
        for name, seconds in snap.span_totals.items():
            merged.span_totals[name] = merged.span_totals.get(name, 0.0) + seconds
        for name, calls in snap.span_counts.items():
            merged.span_counts[name] = merged.span_counts.get(name, 0) + calls
        for name, value in snap.counters.items():
            merged.counters[name] = merged.counters.get(name, 0.0) + value
        for name, peak in snap.gauge_peaks.items():
            if peak > merged.gauge_peaks.get(name, float("-inf")):
                merged.gauge_peaks[name] = peak
    return merged
