"""Exporters: Perfetto trace JSON, Prometheus text exposition, JSONL.

Three read-side formats for one :class:`~repro.telemetry.bus.MergedTelemetry`:

* :func:`to_perfetto` / :func:`write_trace` — Chrome/Perfetto trace-event
  JSON.  Every span becomes one complete (``"ph": "X"``) event; each rank
  is a process (``pid``), each recording thread a track (``tid``), with
  ``"M"`` metadata events naming both.  Timestamps are the wall-aligned
  span starts, rebased to the earliest span and expressed in microseconds,
  so a 2-rank socket run opens in https://ui.perfetto.dev with the ranks'
  train/exchange spans on parallel tracks.
* :func:`to_prometheus` / :func:`parse_prometheus` — text exposition for
  the counters and gauges (``repro_<name>{rank="0"} value``), plus the
  minimal parser the round-trip tests (and any scraper stub) use.
* :class:`JsonlWriter` — append-only JSON-lines sink; the machinery behind
  :class:`repro.api.callbacks.JsonlMetrics` (which keeps its public
  contract and record shapes unchanged).
"""

from __future__ import annotations

import json
import re
from typing import IO, Any

from repro.telemetry.bus import MergedTelemetry, TelemetrySnapshot

__all__ = [
    "to_perfetto",
    "write_trace",
    "to_prometheus",
    "parse_prometheus",
    "JsonlWriter",
]

#: pid used for records made outside any rank (the launcher / sequential run).
LAUNCHER_PID = 9999


def _pid_for(snapshot: TelemetrySnapshot) -> tuple[int, str]:
    if snapshot.rank is None:
        return LAUNCHER_PID, "launcher"
    return int(snapshot.rank), f"rank {snapshot.rank}"


def to_perfetto(merged: MergedTelemetry) -> dict:
    """Render the merged timeline as a Chrome/Perfetto trace-event dict."""
    trace_events: list[dict] = []
    # Rebase to the earliest aligned span start so ts values stay small.
    starts = [snap.wall_time(event.start)
              for snap in merged.snapshots for event in snap.events]
    t0 = min(starts) if starts else 0.0
    for snapshot in merged.snapshots:
        if not snapshot.events:
            continue
        pid, process_name = _pid_for(snapshot)
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": process_name},
        })
        tids: dict[str, int] = {}
        events = sorted(snapshot.events, key=lambda e: e.start)
        for event in events:
            tid = tids.get(event.thread)
            if tid is None:
                tid = len(tids) + 1
                tids[event.thread] = tid
                trace_events.append({
                    "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                    "args": {"name": event.thread},
                })
            record = {
                "ph": "X",
                "name": event.name,
                "pid": pid,
                "tid": tid,
                "ts": round((snapshot.wall_time(event.start) - t0) * 1e6, 3),
                "dur": round(event.duration * 1e6, 3),
                "cat": event.name.partition(".")[0],
            }
            if event.attrs:
                record["args"] = dict(event.attrs)
            trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_trace(path: str, merged: MergedTelemetry) -> dict:
    """Write :func:`to_perfetto` output to ``path``; returns the dict."""
    trace = to_perfetto(merged)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)
    return trace


# -- Prometheus text exposition -----------------------------------------------

_METRIC_SAFE = re.compile(r"[^a-zA-Z0-9_]")

_LINE = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)'
    r'(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$'
)
_LABEL = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>[^"]*)"')


def _metric_name(name: str) -> str:
    return "repro_" + _METRIC_SAFE.sub("_", name)


def to_prometheus(merged: MergedTelemetry) -> str:
    """Counters, span totals and gauges as Prometheus text exposition.

    Per-rank samples carry a ``rank`` label (``rank="none"`` for records
    made outside any rank); span totals export as ``_seconds`` /
    ``_calls`` pairs.
    """
    lines: list[str] = []

    def emit(kind: str, name: str, samples: list[tuple[str, float]]) -> None:
        if not samples:
            return
        lines.append(f"# TYPE {name} {kind}")
        for label, value in samples:
            rendered = repr(value) if isinstance(value, float) else str(value)
            lines.append(f'{name}{{rank="{label}"}} {rendered}')

    def rank_label(snapshot: TelemetrySnapshot) -> str:
        return "none" if snapshot.rank is None else str(snapshot.rank)

    names = sorted({n for s in merged.snapshots for n in s.counters})
    for name in names:
        emit("counter", _metric_name(name), [
            (rank_label(s), s.counters[name])
            for s in merged.snapshots if name in s.counters
        ])
    names = sorted({n for s in merged.snapshots for n in s.span_totals})
    for name in names:
        emit("counter", _metric_name(name) + "_seconds", [
            (rank_label(s), s.span_totals[name])
            for s in merged.snapshots if name in s.span_totals
        ])
        emit("counter", _metric_name(name) + "_calls", [
            (rank_label(s), float(s.span_counts.get(name, 0)))
            for s in merged.snapshots if name in s.span_totals
        ])
    names = sorted({n for s in merged.snapshots for n in s.gauges})
    for name in names:
        emit("gauge", _metric_name(name), [
            (rank_label(s), s.gauges[name])
            for s in merged.snapshots if name in s.gauges
        ])
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Minimal exposition parser: ``(name, sorted labels) -> value``.

    Understands exactly what :func:`to_prometheus` emits (plus arbitrary
    label sets) — enough for the round-trip tests and scrape stubs, not a
    general Prometheus client.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _LINE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        labels = tuple(sorted(
            (m.group("key"), m.group("value"))
            for m in _LABEL.finditer(match.group("labels") or "")
        ))
        samples[(match.group("name"), labels)] = float(match.group("value"))
    return samples


# -- JSONL --------------------------------------------------------------------

class JsonlWriter:
    """Append-only JSON-lines sink with lazy open and per-record flush.

    One record per line, keys sorted (stable diffs), flushed immediately so
    a crashed run still leaves every completed record on disk.  This is the
    write path behind ``JsonlMetrics``; it is also usable directly for any
    streaming telemetry log.
    """

    def __init__(self, path: str):
        self.path = path
        self._handle: IO[str] | None = None

    def write(self, record: dict[str, Any]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
