"""Process-level runtime controls: BLAS thread pinning.

Every rank of the distributed implementation runs one training task on one
core (paper Table II: one process per core).  NumPy's OpenBLAS, however,
defaults to one thread *per CPU per process* — with 17 ranks on a 24-core
machine that is ~400 threads fighting over 24 cores, and the "distributed"
version ends up slower than the single-core one.  Real MPI deployments hit
the same issue and pin ``OMP_NUM_THREADS=1`` in the job script; this module
does the equivalent from inside the library:

* sets the usual BLAS environment variables — inherited by forked ranks
  *and* by spawned worker subprocesses (the socket transport hands workers
  the launcher's environment);
* additionally calls ``openblas_set_num_threads`` through ``ctypes`` on the
  already-loaded library, because environment variables are only read at
  load time.

The ctypes call only ever affects the *current* process.  Forked ranks
inherit its effect through copied memory; spawn-based remote workers do
not, which is why the distributed entry point re-pins inside every rank
(see :func:`repro.parallel.runner._distributed_entry`) instead of relying
on launcher-side pinning.

:func:`pin_blas_threads` is idempotent and called by the trainers, every
distributed rank, ``repro worker`` and the benchmark harness.
"""

from __future__ import annotations

import ctypes
import os
import re

__all__ = ["pin_blas_threads", "blas_pin_active", "lockcheck_requested",
           "lockcheck_watchdog_seconds"]

_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMEXPR_NUM_THREADS",
)

_SET_SYMBOLS = (
    "openblas_set_num_threads",
    "openblas_set_num_threads64_",
    "scipy_openblas_set_num_threads",
    "scipy_openblas_set_num_threads64_",
)

_pinned: int | None = None


def _loaded_blas_libraries() -> list[str]:
    """Paths of OpenBLAS shared objects mapped into this process (Linux)."""
    paths: set[str] = set()
    try:
        with open("/proc/self/maps") as maps:
            for line in maps:
                match = re.search(r"(\S+openblas\S*\.so\S*)", line)
                if match:
                    paths.add(match.group(1))
    except OSError:
        pass
    return sorted(paths)


def pin_blas_threads(n: int = 1) -> bool:
    """Limit BLAS to ``n`` threads in this process and future children.

    Returns True when a loaded BLAS accepted the limit via ``ctypes`` (the
    environment variables are set regardless, covering ranks forked or
    spawned later and libraries not yet loaded).  Idempotent per value of
    ``n``; spawn-safe — call it again inside each remote worker, since a
    parent's ctypes pin never crosses a spawn boundary.
    """
    global _pinned
    if n < 1:
        raise ValueError("thread count must be >= 1")
    for var in _ENV_VARS:
        os.environ[var] = str(n)
    if _pinned == n:
        return True
    applied = False
    for path in _loaded_blas_libraries():
        try:
            library = ctypes.CDLL(path)
        except OSError:
            continue
        for symbol in _SET_SYMBOLS:
            fn = getattr(library, symbol, None)
            if fn is not None:
                fn(ctypes.c_int(n))
                applied = True
                break
    if applied:
        _pinned = n
    return applied


def blas_pin_active() -> int | None:
    """The thread count last pinned successfully (None if never)."""
    return _pinned


def lockcheck_requested() -> bool:
    """True when ``REPRO_LOCKCHECK`` asks for the runtime concurrency checker.

    Environment *policy* lives here (rule R8: nothing else reads the
    environment at import time); the checker itself is
    :mod:`repro.analysis.lockcheck`, installed by ``repro/__init__`` before
    any repro lock exists.  The variable propagates to forked ranks by
    inheritance and to spawned ``repro worker`` processes through the
    launcher environment, so one setting covers every backend.
    """
    value = os.environ.get("REPRO_LOCKCHECK", "").strip().lower()
    return value not in ("", "0", "off", "false", "no")


def lockcheck_watchdog_seconds() -> float:
    """Blocked-wait watchdog threshold (``REPRO_LOCKCHECK_WATCHDOG``, s)."""
    value = os.environ.get("REPRO_LOCKCHECK_WATCHDOG", "").strip()
    try:
        seconds = float(value) if value else 60.0
    except ValueError:
        seconds = 60.0
    return seconds if seconds > 0 else 60.0
