"""GANs as trained by the paper: Table I MLPs plus the adversarial steps.

* :mod:`repro.gan.networks` — generator/discriminator MLP builders
  (64 -> 256 -> 256 -> 784 with ``tanh``, and the mirrored discriminator).
* :mod:`repro.gan.pair` — :class:`GANPair`, one generator/discriminator
  couple with its optimizers and loss; exposes the per-batch training steps
  the cellular algorithm schedules.
* :mod:`repro.gan.sampling` — latent-space sampling and batched generation.
"""

from repro.gan.networks import Discriminator, Generator, build_discriminator, build_generator
from repro.gan.pair import GANPair, build_gan_pair
from repro.gan.sampling import generate_images, sample_latent

__all__ = [
    "Generator",
    "Discriminator",
    "build_generator",
    "build_discriminator",
    "GANPair",
    "build_gan_pair",
    "sample_latent",
    "generate_images",
]
