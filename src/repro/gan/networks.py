"""Generator and discriminator MLPs (paper Table I).

Generator: ``latent(64) -> 256 -> 256 -> 784`` with the configured hidden
activation (``tanh`` in the paper) and a ``tanh`` output so images live in
``[-1, 1]``.

Discriminator: the mirror image ``784 -> 256 -> 256 -> 1``; it outputs a raw
logit (no sigmoid) because all three Mustangs losses consume logits through
numerically stable formulations.
"""

from __future__ import annotations

import numpy as np

from repro.config import NetworkSettings
from repro.nn import Linear, Module, Sequential, Tensor, activation_module, attach_arena
from repro.nn.init import xavier_normal
from repro.registry import dtype_policy

__all__ = ["Generator", "Discriminator", "build_generator", "build_discriminator"]


def _compute_dtype(settings: NetworkSettings) -> np.dtype:
    """The dtype this network's parameters and activations live in.

    The *compute* role of the configured policy: ``mixed16`` networks hold
    float32 parameters (float16 appears only at storage boundaries — see
    :class:`repro.registry.DtypePolicy`).
    """
    return np.dtype(dtype_policy(getattr(settings, "dtype", "float64")).compute)


def _cast_input(x: Tensor, dtype: np.dtype) -> Tensor:
    """Fold a leaf input batch into the network's compute dtype.

    Latents and real batches are drawn float64 (RNG-stream parity across
    policies) and narrowed here.  Grad-carrying tensors never need the cast:
    they were produced by a same-dtype network.
    """
    if x.data.dtype == dtype or x.requires_grad:
        return x
    return Tensor(x.data.astype(dtype))


def _mlp(sizes: list[int], hidden_activation: str, rng: np.random.Generator,
         final: Module | None, dtype: np.dtype) -> Sequential:
    layers: list[Module] = []
    for i in range(len(sizes) - 1):
        layers.append(Linear(sizes[i], sizes[i + 1], rng, init=xavier_normal,
                             dtype=dtype))
        if i < len(sizes) - 2:
            layers.append(activation_module(hidden_activation))
    if final is not None:
        layers.append(final)
    return Sequential(*layers)


class Generator(Module):
    """Maps latent vectors ``(n, latent_size)`` to images ``(n, output_neurons)``."""

    def __init__(self, settings: NetworkSettings, rng: np.random.Generator):
        super().__init__()
        self.settings = settings
        sizes = (
            [settings.latent_size]
            + [settings.hidden_neurons] * settings.hidden_layers
            + [settings.output_neurons]
        )
        self.net = _mlp(sizes, settings.activation, rng,
                        final=activation_module("tanh"),
                        dtype=_compute_dtype(settings))
        # One contiguous slab per network: genome flattening becomes a
        # single memcpy and the optimizer update one fused sweep.
        attach_arena(self)

    def layer_recipe(self):
        """The flat ``(Linear, activation, slope)`` steps of this stack.

        This is what :func:`repro.nn.kernels.kernel_for` consumes to build
        the graph-free fused train-step kernel; ``None`` (never for this
        fixed MLP) would mean "fall back to autograd".
        """
        from repro.nn.kernels import sequential_recipe

        return sequential_recipe(self.net)

    def forward(self, z: Tensor) -> Tensor:
        if z.ndim != 2 or z.shape[1] != self.settings.latent_size:
            raise ValueError(
                f"latent batch must be (n, {self.settings.latent_size}), got {z.shape}"
            )
        return self.net(_cast_input(z, _compute_dtype(self.settings)))


class Discriminator(Module):
    """Maps images ``(n, output_neurons)`` to real-vs-fake logits ``(n, 1)``."""

    def __init__(self, settings: NetworkSettings, rng: np.random.Generator):
        super().__init__()
        self.settings = settings
        sizes = (
            [settings.output_neurons]
            + [settings.hidden_neurons] * settings.hidden_layers
            + [1]
        )
        self.net = _mlp(sizes, settings.activation, rng, final=None,
                        dtype=_compute_dtype(settings))
        attach_arena(self)

    def layer_recipe(self):
        """See :meth:`Generator.layer_recipe`."""
        from repro.nn.kernels import sequential_recipe

        return sequential_recipe(self.net)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.settings.output_neurons:
            raise ValueError(
                f"image batch must be (n, {self.settings.output_neurons}), got {x.shape}"
            )
        return self.net(_cast_input(x, _compute_dtype(self.settings)))


def build_generator(settings: NetworkSettings, rng: np.random.Generator) -> Generator:
    """Construct a generator initialized from ``rng``."""
    return Generator(settings, rng)


def build_discriminator(settings: NetworkSettings, rng: np.random.Generator) -> Discriminator:
    """Construct a discriminator initialized from ``rng``."""
    return Discriminator(settings, rng)
