"""Latent-space sampling and batched generation."""

from __future__ import annotations

import numpy as np

from repro.gan.networks import Generator
from repro.nn import Tensor
from repro.nn.autograd import no_grad

__all__ = ["sample_latent", "generate_images"]


def sample_latent(n: int, latent_size: int, rng: np.random.Generator) -> np.ndarray:
    """Standard-normal latent batch of shape ``(n, latent_size)``.

    ``n == 0`` yields an empty batch — the serving layer's batching engine
    legitimately produces zero-count shards when a mixture component draws
    no samples.
    """
    if n < 0 or latent_size < 1:
        raise ValueError("n must be >= 0 and latent_size positive")
    return rng.standard_normal((n, latent_size))


def generate_images(generator: Generator, n: int, rng: np.random.Generator,
                    batch: int = 512) -> np.ndarray:
    """Generate ``n`` images without recording the autograd tape.

    Generation happens in chunks of ``batch`` so the activation memory stays
    bounded when the metrics pipeline asks for thousands of samples.  When
    the generator is kernel-eligible the chunks run through the graph-free
    fused forward (same ops, same bits — see :mod:`repro.nn.kernels`),
    writing each chunk straight into the output array.
    """
    latent_size = generator.settings.latent_size
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if n <= 0:
        if n < 0:
            raise ValueError("n must be >= 0")
        return np.empty((0, generator.settings.output_neurons))
    from repro.nn import kernels

    fused = kernels.fused_sample_images(generator, n, rng, batch)
    if fused is not None:
        return fused
    pieces: list[np.ndarray] = []
    with no_grad():
        for lo in range(0, n, batch):
            count = min(batch, n - lo)
            z = Tensor(sample_latent(count, latent_size, rng))
            pieces.append(generator(z).numpy())
    return np.concatenate(pieces, axis=0)
