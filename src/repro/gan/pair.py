"""A generator/discriminator couple with its optimizers and loss.

:class:`GANPair` owns the two networks, their optimizers (rebuilt whenever a
genome is copied in from a neighbor — optimizer moments are *not* migrated,
matching Lipizzaner) and the :class:`~repro.nn.losses.GANLoss` the cell was
assigned.  It exposes exactly the operations the cellular trainer schedules:

* :meth:`train_discriminator_step` / :meth:`train_generator_step` — one
  gradient step each (the paper's profiled ``train`` routine),
* :meth:`evaluate` — both losses on a batch without touching parameters
  (used for fitness evaluation during selection).
"""

from __future__ import annotations

import numpy as np

from repro.config import ExperimentConfig
from repro.gan.networks import Discriminator, Generator
from repro.gan.sampling import sample_latent
from repro.nn import Tensor, arena_of, loss_by_name, optimizer_by_name
from repro.nn import kernels
from repro.nn.autograd import no_grad
from repro.nn.losses import GANLoss
from repro.nn.optim import Optimizer
from repro.telemetry import bus as telemetry

__all__ = ["GANPair", "build_gan_pair"]


class GANPair:
    """One adversarial couple as trained inside a grid cell."""

    def __init__(self, generator: Generator, discriminator: Discriminator,
                 loss: GANLoss, optimizer_name: str, learning_rate: float):
        self.generator = generator
        self.discriminator = discriminator
        self.loss = loss
        self.optimizer_name = optimizer_name
        # The networks' arenas (attached at construction) buy the fused
        # slab update; arena-less networks fall back to per-tensor steps.
        self.g_optimizer: Optimizer = optimizer_by_name(
            optimizer_name, generator.parameters(), learning_rate,
            arena=arena_of(generator),
        )
        self.d_optimizer: Optimizer = optimizer_by_name(
            optimizer_name, discriminator.parameters(), learning_rate,
            arena=arena_of(discriminator),
        )

    # -- learning-rate plumbing (hyperparameter mutation target) -------------

    @property
    def learning_rate(self) -> float:
        return self.g_optimizer.learning_rate

    @learning_rate.setter
    def learning_rate(self, value: float) -> None:
        if value <= 0:
            raise ValueError("learning rate must stay positive")
        self.g_optimizer.learning_rate = value
        self.d_optimizer.learning_rate = value

    def reset_optimizers(self) -> None:
        """Drop optimizer state, e.g. after parameters were overwritten."""
        lr = self.learning_rate
        self.g_optimizer = optimizer_by_name(
            self.optimizer_name, self.generator.parameters(), lr,
            arena=arena_of(self.generator),
        )
        self.d_optimizer = optimizer_by_name(
            self.optimizer_name, self.discriminator.parameters(), lr,
            arena=arena_of(self.discriminator),
        )

    # -- training steps --------------------------------------------------------

    def train_discriminator_step(self, real_batch: np.ndarray, rng: np.random.Generator,
                                 generator: Generator | None = None) -> float:
        """One discriminator update on a real batch vs freshly generated fakes.

        ``generator`` defaults to the pair's own, but the cellular algorithm
        also trains the discriminator against *neighbor* generators, so any
        generator can be passed as the adversary.

        The step runs through the graph-free fused kernel
        (:mod:`repro.nn.kernels`, bit-identical to the tape) whenever both
        networks are kernel-eligible; otherwise — unpickled/arena-less
        networks, custom stacks or losses — it falls back to autograd.
        """
        adversary = generator if generator is not None else self.generator
        with telemetry.span("train.d_step"):
            fused = kernels.fused_discriminator_step(
                self.discriminator, adversary, self.loss, self.d_optimizer,
                real_batch, rng)
            if fused is not None:
                return fused
            n = real_batch.shape[0]
            with no_grad():
                z = Tensor(sample_latent(n, adversary.settings.latent_size, rng))
                fake = adversary(z).detach()
            real_logits = self.discriminator(Tensor(real_batch))
            fake_logits = self.discriminator(fake)
            loss = self.loss.discriminator_loss(real_logits, fake_logits)
            self.d_optimizer.zero_grad()
            loss.backward()
            self.d_optimizer.step()
            return loss.item()

    def train_generator_step(self, batch_size: int, rng: np.random.Generator,
                             discriminator: Discriminator | None = None) -> float:
        """One generator update against ``discriminator`` (default: own).

        Fused-kernel fast path with autograd fallback, exactly as in
        :meth:`train_discriminator_step`.
        """
        adversary = discriminator if discriminator is not None else self.discriminator
        with telemetry.span("train.g_step"):
            fused = kernels.fused_generator_step(
                self.generator, adversary, self.loss, self.g_optimizer,
                batch_size, rng)
            if fused is not None:
                return fused
            z = Tensor(sample_latent(batch_size, self.generator.settings.latent_size, rng))
            fake = self.generator(z)
            fake_logits = adversary(fake)
            loss = self.loss.generator_loss(fake_logits)
            self.g_optimizer.zero_grad()
            # The adversary's parameters also collect gradients here; clear them
            # afterwards instead of before so the generator sees a fresh tape.
            loss.backward()
            self.g_optimizer.step()
            adversary.zero_grad()
            return loss.item()

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, real_batch: np.ndarray, rng: np.random.Generator,
                 generator: Generator | None = None,
                 discriminator: Discriminator | None = None) -> tuple[float, float]:
        """Return ``(discriminator_loss, generator_loss)`` on one batch, no updates.

        Used for the all-pairs fitness evaluation of the sub-population; runs
        entirely under :func:`~repro.nn.autograd.no_grad`.
        """
        gen = generator if generator is not None else self.generator
        disc = discriminator if discriminator is not None else self.discriminator
        n = real_batch.shape[0]
        with no_grad():
            z = Tensor(sample_latent(n, gen.settings.latent_size, rng))
            fake = gen(z)
            real_logits = disc(Tensor(real_batch))
            fake_logits = disc(fake)
            d_loss = self.loss.discriminator_loss(real_logits, fake_logits).item()
            g_loss = self.loss.generator_loss(fake_logits).item()
        return d_loss, g_loss


def build_gan_pair(config: ExperimentConfig, rng: np.random.Generator,
                   loss_name: str | None = None) -> GANPair:
    """Construct a pair from the experiment configuration.

    ``loss_name`` overrides the configured loss — the Mustangs variant draws
    a different loss per cell from the pool.
    """
    generator = Generator(config.network, rng)
    discriminator = Discriminator(config.network, rng)
    name = loss_name if loss_name is not None else config.training.loss_function
    if name == "mustangs":
        raise ValueError("'mustangs' is a per-cell policy, not a loss; pass a concrete loss name")
    loss = loss_by_name(name)
    return GANPair(
        generator,
        discriminator,
        loss,
        config.mutation.optimizer,
        config.mutation.initial_learning_rate,
    )
