"""Flattening module parameters to/from genome vectors.

Grid cells exchange *genomes*: the flat parameter vector of a network plus
its hyperparameters.  The paper's profiling (Table IV) has a dedicated
"update genomes" routine — copying neighbor parameters into the local
sub-population — which in this implementation is exactly
:func:`vector_to_parameters` over the arrays gathered through MPI.

Flattening order is the deterministic ``named_parameters()`` order, so two
structurally identical networks round-trip bit-exactly.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor
from repro.nn.modules import Module

__all__ = [
    "parameters_to_vector",
    "vector_to_parameters",
    "state_dict",
    "load_state_dict",
    "count_parameters",
]


def count_parameters(module: Module) -> int:
    """Total number of scalar parameters in ``module``."""
    return sum(p.size for p in module.parameters())


def parameters_to_vector(module: Module, out: np.ndarray | None = None) -> np.ndarray:
    """Concatenate all parameters into one flat float64 vector.

    ``out`` may be a preallocated buffer of the right size (the distributed
    runner reuses one buffer per neighbor to avoid per-iteration allocation).
    """
    total = count_parameters(module)
    if out is None:
        out = np.empty(total, dtype=np.float64)
    elif out.shape != (total,):
        raise ValueError(f"buffer shape {out.shape} != ({total},)")
    offset = 0
    for p in module.parameters():
        n = p.size
        out[offset:offset + n] = p.data.ravel()
        offset += n
    return out


def vector_to_parameters(vector: np.ndarray, module: Module) -> None:
    """Write a flat vector back into the module's parameters (in place)."""
    vector = np.asarray(vector, dtype=np.float64)
    total = count_parameters(module)
    if vector.shape != (total,):
        raise ValueError(f"vector shape {vector.shape} != ({total},)")
    offset = 0
    for p in module.parameters():
        n = p.size
        p.data[...] = vector[offset:offset + n].reshape(p.data.shape)
        offset += n


def state_dict(module: Module) -> dict[str, np.ndarray]:
    """Name → copied array mapping, mirroring ``torch.nn.Module.state_dict``."""
    return {name: p.data.copy() for name, p in module.named_parameters()}


def load_state_dict(module: Module, state: dict[str, np.ndarray]) -> None:
    """Load arrays produced by :func:`state_dict` (strict: names must match)."""
    own = dict(module.named_parameters())
    missing = set(own) - set(state)
    unexpected = set(state) - set(own)
    if missing or unexpected:
        raise KeyError(f"state dict mismatch; missing={sorted(missing)} unexpected={sorted(unexpected)}")
    for name, param in own.items():
        value = np.asarray(state[name], dtype=np.float64)
        if value.shape != param.data.shape:
            raise ValueError(f"shape mismatch for {name}: {value.shape} != {param.data.shape}")
        param.data[...] = value
