"""Flattening module parameters to/from genome vectors.

Grid cells exchange *genomes*: the flat parameter vector of a network plus
its hyperparameters.  The paper's profiling (Table IV) has a dedicated
"update genomes" routine — copying neighbor parameters into the local
sub-population — which in this implementation is exactly
:func:`vector_to_parameters` over the arrays gathered through MPI.

Flattening order is the deterministic ``named_parameters()`` order, so two
structurally identical networks round-trip bit-exactly.

Arena fast path: networks whose parameters live in a
:class:`~repro.nn.arena.ParameterArena` flatten and un-flatten with **one
contiguous slice copy** (or no copy at all with ``alias=True``) instead of
a per-tensor Python loop.  The per-tensor loops remain as the fallback for
arena-less modules and as the measured "before" path of
``benchmarks/test_genome_path.py``.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import lockcheck
from repro.nn.arena import arena_of
from repro.nn.modules import Module

__all__ = [
    "parameters_to_vector",
    "vector_to_parameters",
    "state_dict",
    "load_state_dict",
    "count_parameters",
]


def count_parameters(module: Module) -> int:
    """Total number of scalar parameters in ``module``."""
    arena = arena_of(module)
    if arena is not None:
        return arena.size
    return sum(p.size for p in module.parameters())


def _flatten_loop(module: Module, out: np.ndarray) -> np.ndarray:
    """Per-tensor flatten (the pre-arena hot path, kept as fallback)."""
    offset = 0
    for p in module.parameters():
        n = p.size
        out[offset:offset + n] = p.data.ravel()
        offset += n
    return out


def _scatter_loop(vector: np.ndarray, module: Module) -> None:
    """Per-tensor write-back (the pre-arena hot path, kept as fallback)."""
    offset = 0
    for p in module.parameters():
        n = p.size
        p.data[...] = vector[offset:offset + n].reshape(p.data.shape)
        offset += n


def parameters_to_vector(module: Module, out: np.ndarray | None = None, *,
                         alias: bool = False) -> np.ndarray:
    """Concatenate all parameters into one flat vector (the module's dtype).

    ``out`` may be a preallocated buffer of the right size (the distributed
    runner reuses one buffer per neighbor to avoid per-iteration allocation).

    ``alias=True`` (arena-backed modules, ``out=None`` only) returns the
    arena's **live** parameter memory with zero copies.  The caller owns the
    aliasing hazard: copy before the network trains again, or hand the
    vector only to consumers that copy immediately (see the contract on
    :class:`~repro.coevolution.genome.Genome`).  Arena-less modules ignore
    ``alias`` — there is no single buffer to borrow — and copy as usual.
    """
    arena = arena_of(module)
    if arena is not None:
        data = arena.data
        if out is None:
            if alias:
                # Under REPRO_LOCKCHECK the borrow is tracked: use from
                # another thread or inside an outgoing payload is reported.
                lockcheck.register_alias(
                    data, f"arena[{type(module).__name__}]")
                return data
            return data.copy()
        if out.shape != data.shape:
            raise ValueError(f"buffer shape {out.shape} != {data.shape}")
        np.copyto(out, data)
        return out
    params = module.parameters()
    total = sum(p.size for p in params)
    if out is None:
        out = np.empty(total, dtype=params[0].data.dtype if params else np.float64)
    elif out.shape != (total,):
        raise ValueError(f"buffer shape {out.shape} != ({total},)")
    return _flatten_loop(module, out)


def vector_to_parameters(vector: np.ndarray, module: Module) -> None:
    """Write a flat vector back into the module's parameters (in place).

    The incoming vector may be in a *storage* dtype narrower than the
    module's parameters (a float16 ``mixed16`` genome into a float32
    arena): the in-place copies widen it.  The cast is explicit and local —
    the arena's own dtype never changes.
    """
    vector = np.asarray(vector)
    arena = arena_of(module)
    if arena is not None:
        if vector.shape != (arena.size,):
            raise ValueError(f"vector shape {vector.shape} != ({arena.size},)")
        if vector is not arena.data:  # self-assignment: already in place
            np.copyto(arena.data, vector, casting="unsafe")
        return
    total = sum(p.size for p in module.parameters())
    if vector.shape != (total,):
        raise ValueError(f"vector shape {vector.shape} != ({total},)")
    _scatter_loop(vector, module)


def state_dict(module: Module) -> dict[str, np.ndarray]:
    """Name → copied array mapping, mirroring ``torch.nn.Module.state_dict``.

    Always deep copies — a state dict must never alias a live arena slab
    (checkpoints written from it would otherwise mutate under training).
    """
    return {name: p.data.copy() for name, p in module.named_parameters()}


def load_state_dict(module: Module, state: dict[str, np.ndarray]) -> None:
    """Load arrays produced by :func:`state_dict` (strict: names must match).

    Writes are in place (``param.data[...] = value``), so arena backing —
    and any optimizer holding the arena — survives a state-dict load.
    """
    own = dict(module.named_parameters())
    missing = set(own) - set(state)
    unexpected = set(state) - set(own)
    if missing or unexpected:
        raise KeyError(f"state dict mismatch; missing={sorted(missing)} unexpected={sorted(unexpected)}")
    for name, param in own.items():
        value = np.asarray(state[name], dtype=param.data.dtype)
        if value.shape != param.data.shape:
            raise ValueError(f"shape mismatch for {name}: {value.shape} != {param.data.shape}")
        param.data[...] = value
