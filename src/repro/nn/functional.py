"""Numerically stable composite operations built on the autograd primitives.

These are the stable formulations the GAN losses need.  Everything here
returns :class:`~repro.nn.autograd.Tensor` and is differentiable.
"""

from __future__ import annotations

import numpy as np

from repro.nn.autograd import Tensor

__all__ = [
    "sigmoid",
    "log_sigmoid",
    "softplus",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "softmax",
    "log_softmax",
    "cross_entropy_with_logits",
]


def _as_tensor(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(x)


def sigmoid(x) -> Tensor:
    """Logistic function ``1 / (1 + exp(-x))`` (stable)."""
    return _as_tensor(x).sigmoid()


def softplus(x) -> Tensor:
    """``log(1 + exp(x))`` computed without overflow."""
    return _as_tensor(x).softplus()


def log_sigmoid(x) -> Tensor:
    """``log(sigmoid(x)) = -softplus(-x)`` (stable for large ``|x|``)."""
    return -((-_as_tensor(x)).softplus())


def binary_cross_entropy_with_logits(logits, targets) -> Tensor:
    """Mean BCE between ``sigmoid(logits)`` and ``targets``, computed stably.

    Uses the identity ``BCE = softplus(x) - x * t`` (elementwise) which never
    evaluates ``log`` near zero.  ``targets`` may be a scalar (all-real /
    all-fake labels, the GAN case) or an array broadcastable to ``logits``.
    """
    x = _as_tensor(logits)
    # Scalar labels adopt the logits' dtype (a float64 0-d tensor would
    # silently promote a float32 tape under NEP 50 promotion rules).
    t = targets if isinstance(targets, Tensor) else x._wrap(targets)
    per_element = x.softplus() - x * t
    return per_element.mean()


def mse_loss(prediction, target) -> Tensor:
    """Mean squared error (the least-squares GAN criterion)."""
    p = _as_tensor(prediction)
    t = target if isinstance(target, Tensor) else p._wrap(target)
    diff = p - t
    return (diff * diff).mean()


def softmax(logits, axis: int = -1) -> Tensor:
    """Stable softmax along ``axis``."""
    x = _as_tensor(logits)
    shifted = x - Tensor(np.max(x.data, axis=axis, keepdims=True))
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(logits, axis: int = -1) -> Tensor:
    """Stable ``log(softmax(x))`` via the log-sum-exp trick."""
    x = _as_tensor(logits)
    shifted = x - Tensor(np.max(x.data, axis=axis, keepdims=True))
    lse = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - lse


def cross_entropy_with_logits(logits, labels) -> Tensor:
    """Mean categorical cross-entropy for integer ``labels``.

    Used to train the feature classifier behind the inception-score
    substitute (see :mod:`repro.metrics`).
    """
    x = _as_tensor(logits)
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    logp = log_softmax(x, axis=-1)
    picked = logp[np.arange(labels.shape[0]), labels]
    return -(picked.mean())
