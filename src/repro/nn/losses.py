"""The three GAN loss formulations used by Lipizzaner/Mustangs.

Mustangs [6] extends Lipizzaner [5] by letting each grid cell train with a
loss function drawn from a pool, increasing genome diversity.  The pool is
the same trio used in the Mustangs paper:

* :class:`BCELoss` — the original minimax GAN objective [3],
* :class:`LeastSquaresLoss` — the LSGAN objective (MSE against labels),
* :class:`HeuristicLoss` — the non-saturating heuristic where the generator
  maximizes ``log D(G(z))`` instead of minimizing ``log(1 - D(G(z)))``.

All losses operate on **discriminator logits** (pre-sigmoid) so they can use
the numerically stable formulations in :mod:`repro.nn.functional`.
"""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.autograd import Tensor

__all__ = [
    "GANLoss",
    "BCELoss",
    "LeastSquaresLoss",
    "HeuristicLoss",
    "MUSTANGS_LOSSES",
    "loss_by_name",
]


class GANLoss:
    """Interface: a pair of objectives for the two adversaries.

    ``discriminator_loss`` receives the discriminator's logits on a real
    batch and on a fake batch and returns the scalar to minimize;
    ``generator_loss`` receives the discriminator's logits on the
    generator's output and returns the scalar the *generator* minimizes.
    """

    name: str = "abstract"

    def discriminator_loss(self, real_logits: Tensor, fake_logits: Tensor) -> Tensor:
        raise NotImplementedError

    def generator_loss(self, fake_logits: Tensor) -> Tensor:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class BCELoss(GANLoss):
    """Original GAN objective: ``min_G max_D E[log D(x)] + E[log(1-D(G(z)))]``.

    The generator term is the *saturating* form ``E[log(1 - D(G(z)))]``,
    minimized directly (equivalently: BCE of fake logits against the
    fake-label 0, negated).
    """

    name = "bce"

    def discriminator_loss(self, real_logits: Tensor, fake_logits: Tensor) -> Tensor:
        real_term = F.binary_cross_entropy_with_logits(real_logits, 1.0)
        fake_term = F.binary_cross_entropy_with_logits(fake_logits, 0.0)
        return real_term + fake_term

    def generator_loss(self, fake_logits: Tensor) -> Tensor:
        # minimize E[log(1 - D(G(z)))]  ==  -BCE(fake_logits, 0)
        return -(F.binary_cross_entropy_with_logits(fake_logits, 0.0))


class HeuristicLoss(GANLoss):
    """Non-saturating heuristic: the generator minimizes ``-E[log D(G(z))]``.

    The discriminator objective matches :class:`BCELoss`; only the generator
    side differs, avoiding the vanishing-gradient regime early in training.
    """

    name = "heuristic"

    def discriminator_loss(self, real_logits: Tensor, fake_logits: Tensor) -> Tensor:
        real_term = F.binary_cross_entropy_with_logits(real_logits, 1.0)
        fake_term = F.binary_cross_entropy_with_logits(fake_logits, 0.0)
        return real_term + fake_term

    def generator_loss(self, fake_logits: Tensor) -> Tensor:
        return F.binary_cross_entropy_with_logits(fake_logits, 1.0)


class LeastSquaresLoss(GANLoss):
    """LSGAN: squared error of ``sigmoid(logits)`` against the target labels."""

    name = "mse"

    def discriminator_loss(self, real_logits: Tensor, fake_logits: Tensor) -> Tensor:
        real_term = F.mse_loss(real_logits.sigmoid(), 1.0)
        fake_term = F.mse_loss(fake_logits.sigmoid(), 0.0)
        return real_term + fake_term

    def generator_loss(self, fake_logits: Tensor) -> Tensor:
        return F.mse_loss(fake_logits.sigmoid(), 1.0)


#: The Mustangs loss pool, in the order used for per-cell random assignment.
#: Deliberately fixed to the paper's trio (not "every registered loss") so
#: that registering a custom loss never shifts the RNG-driven assignment.
MUSTANGS_LOSSES: tuple[type[GANLoss], ...] = (BCELoss, LeastSquaresLoss, HeuristicLoss)


def loss_by_name(name: str) -> GANLoss:
    """Instantiate a loss from its configuration name.

    Resolves against :data:`repro.registry.LOSSES`, so losses registered
    there (``LOSSES.register("wgan", WassersteinLoss)``) are constructible
    everywhere this function is used — cells, checkpoint restore, the
    serving layer.
    """
    from repro.registry import LOSSES, RegistryError

    try:
        return LOSSES.create(name)
    except RegistryError:
        raise ValueError(
            f"unknown GAN loss {name!r}; known: {sorted(LOSSES.known())}") from None
