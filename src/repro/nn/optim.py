"""Gradient-descent optimizers: Adam (Table I default), SGD, RMSprop.

Optimizers hold per-parameter state in preallocated buffers and update
parameters **in place** (``param.data`` is mutated) so that no reallocation
happens inside the training loop — the hot path of the whole system.

The learning rate is a mutable attribute: the coevolutionary algorithm's
hyperparameter mutation (Table I: Gaussian noise, rate 1e-4, probability
0.5) adjusts ``optimizer.learning_rate`` between epochs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.autograd import Tensor

__all__ = ["Optimizer", "SGD", "Adam", "RMSprop", "optimizer_by_name"]


class Optimizer:
    """Base class storing the parameter list and the mutable learning rate."""

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float):
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = float(learning_rate)

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- state (de)serialization; used when genomes migrate between cells ----

    def state_arrays(self) -> dict[str, list[np.ndarray] | float | int]:
        """Return a picklable snapshot of the optimizer state."""
        return {"learning_rate": self.learning_rate}

    def load_state_arrays(self, state: dict) -> None:
        self.learning_rate = float(state["learning_rate"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    name = "sgd"

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float, momentum: float = 0.0):
        super().__init__(parameters, learning_rate)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters] if momentum else None

    def step(self) -> None:
        lr = self.learning_rate
        if self._velocity is None:
            for p in self.parameters:
                if p.grad is not None:
                    p.data -= lr * p.grad
            return
        mu = self.momentum
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= mu
            v += p.grad
            p.data -= lr * v

    def state_arrays(self) -> dict:
        state = super().state_arrays()
        state["momentum"] = self.momentum
        if self._velocity is not None:
            state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_arrays(self, state: dict) -> None:
        super().load_state_arrays(state)
        if "velocity" in state and self._velocity is not None:
            for v, saved in zip(self._velocity, state["velocity"]):
                v[...] = saved


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015) — the paper's optimizer."""

    name = "adam"

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8):
        super().__init__(parameters, learning_rate)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        # Fold both bias corrections into one scalar step size.
        corrected_lr = self.learning_rate * np.sqrt(1.0 - b2 ** self.t) / (1.0 - b1 ** self.t)
        eps = self.eps
        for p, m, v in zip(self.parameters, self._m, self._v):
            g = p.grad
            if g is None:
                continue
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            p.data -= corrected_lr * m / (np.sqrt(v) + eps)

    def state_arrays(self) -> dict:
        state = super().state_arrays()
        state.update(
            t=self.t,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
            betas=(self.beta1, self.beta2),
            eps=self.eps,
        )
        return state

    def load_state_arrays(self, state: dict) -> None:
        super().load_state_arrays(state)
        self.t = int(state["t"])
        for m, saved in zip(self._m, state["m"]):
            m[...] = saved
        for v, saved in zip(self._v, state["v"]):
            v[...] = saved


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton), the optimizer used by the original Lipizzaner code."""

    name = "rmsprop"

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float,
                 alpha: float = 0.99, eps: float = 1e-8):
        super().__init__(parameters, learning_rate)
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        lr, alpha, eps = self.learning_rate, self.alpha, self.eps
        for p, sq in zip(self.parameters, self._sq):
            g = p.grad
            if g is None:
                continue
            sq *= alpha
            sq += (1.0 - alpha) * (g * g)
            p.data -= lr * g / (np.sqrt(sq) + eps)

    def state_arrays(self) -> dict:
        state = super().state_arrays()
        state["sq"] = [s.copy() for s in self._sq]
        return state

    def load_state_arrays(self, state: dict) -> None:
        super().load_state_arrays(state)
        for s, saved in zip(self._sq, state["sq"]):
            s[...] = saved


_OPTIMIZERS = {"sgd": SGD, "adam": Adam, "rmsprop": RMSprop}


def optimizer_by_name(name: str, parameters: Sequence[Tensor], learning_rate: float) -> Optimizer:
    """Instantiate the optimizer named in the configuration (Table I)."""
    try:
        cls = _OPTIMIZERS[name]
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}; known: {sorted(_OPTIMIZERS)}") from None
    return cls(parameters, learning_rate)
