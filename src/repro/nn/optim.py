"""Gradient-descent optimizers: Adam (Table I default), SGD, RMSprop.

Optimizers hold per-parameter state in preallocated buffers and update
parameters **in place** (``param.data`` is mutated) so that no reallocation
happens inside the training loop — the hot path of the whole system.

Fused path: constructed with the :class:`~repro.nn.arena.ParameterArena`
that backs its parameters, an optimizer performs its whole update as a few
vectorized sweeps over the flat parameter/gradient slabs — no per-tensor
Python loop, no per-step temporaries (scratch buffers are preallocated).
The fused update applies exactly the same elementwise operations in the
same order as the per-tensor loop, so trajectories are bit-identical; the
per-tensor loop remains for arena-less parameter lists and as the measured
"before" path of ``benchmarks/test_genome_path.py``.

The learning rate is a mutable attribute: the coevolutionary algorithm's
hyperparameter mutation (Table I: Gaussian noise, rate 1e-4, probability
0.5) adjusts ``optimizer.learning_rate`` between epochs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.nn.arena import ParameterArena
from repro.nn.autograd import Tensor
from repro.telemetry import bus as telemetry

__all__ = ["Optimizer", "SGD", "Adam", "RMSprop", "optimizer_by_name"]


class Optimizer:
    """Base class storing the parameter list and the mutable learning rate.

    ``arena`` opts into the fused slab update; it must be exactly the arena
    backing ``parameters`` (validated here, loudly) and implies eager
    gradient-slab allocation so ``step()`` can read one flat vector.
    """

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float,
                 arena: ParameterArena | None = None):
        self.parameters: list[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer needs at least one parameter")
        if learning_rate <= 0:
            raise ValueError("learning rate must be positive")
        self.learning_rate = float(learning_rate)
        if arena is not None and not arena.backs(self.parameters):
            raise ValueError(
                "arena does not back this parameter list; pass "
                "arena_of(module) together with module.parameters()")
        self.arena = arena
        if arena is not None:
            arena.ensure_grads()

    #: span length (elements) of :meth:`step_blocked`; ~256 KiB per slab
    #: slice at float64 (half that at float32) keeps one span's working
    #: set cache-resident.
    BLOCK_ELEMS = 32_768

    def zero_grad(self) -> None:
        if self.arena is not None:
            self.arena.zero_grads()
            return
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def step_blocked(self, block: int | None = None) -> None:
        """The fused slab update, swept in cache-sized spans.

        Bit-identical to :meth:`step`: the update is purely elementwise, so
        processing the slabs span by span performs exactly the same scalar
        operations per element — it only changes memory traffic (each span's
        slabs are touched while still cache-hot instead of streaming the
        whole network through every pass).  This is the optimizer half of
        the fused train-step kernels; without an arena it simply delegates
        to :meth:`step`.
        """
        if self.arena is None:
            self.step()
            return
        if telemetry.enabled():
            telemetry.count("optim.steps")
        scalars = self._prepare_update()
        size = self.arena.size
        block = block or self.BLOCK_ELEMS
        for lo in range(0, size, block):
            self._span_update(lo, min(lo + block, size), scalars)

    # -- fused update pieces (arena path only) -------------------------------

    def _prepare_update(self):
        """Advance per-step state (e.g. Adam's ``t``) and return the scalars
        the span update needs.  Called exactly once per step."""
        raise NotImplementedError

    def _span_update(self, lo: int, hi: int, scalars) -> None:
        """Apply the elementwise update to slab span ``[lo, hi)``."""
        raise NotImplementedError

    # -- fused-state helpers ---------------------------------------------------

    def _flat_state(self) -> tuple[np.ndarray, list[np.ndarray]]:
        """A zeroed slab sized like the arena plus its per-parameter views.

        The views give fused state the same per-parameter structure as the
        legacy buffers, keeping :meth:`state_arrays` snapshots (used when
        genomes migrate between cells) format-compatible either way.
        """
        assert self.arena is not None
        flat = np.zeros(self.arena.size, dtype=self.arena.data.dtype)
        return flat, self.arena.views_of(flat)

    # -- state (de)serialization; used when genomes migrate between cells ----

    def state_arrays(self) -> dict[str, list[np.ndarray] | float | int]:
        """Return a picklable snapshot of the optimizer state."""
        return {"learning_rate": self.learning_rate}

    def load_state_arrays(self, state: dict) -> None:
        self.learning_rate = float(state["learning_rate"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    name = "sgd"

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float,
                 momentum: float = 0.0, arena: ParameterArena | None = None):
        super().__init__(parameters, learning_rate, arena=arena)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._velocity_flat: np.ndarray | None = None
        if not momentum:
            self._velocity = None
        elif self.arena is not None:
            self._velocity_flat, self._velocity = self._flat_state()
        else:
            self._velocity = [np.zeros_like(p.data) for p in self.parameters]
        if self.arena is not None:
            self._scratch = np.empty(self.arena.size, dtype=self.arena.data.dtype)

    def _prepare_update(self):
        return self.learning_rate

    def _span_update(self, lo: int, hi: int, lr: float) -> None:
        # Each line mirrors one elementwise op of the per-tensor loop below,
        # in the same order, so the update is bit-identical.
        g = self.arena.grad[lo:hi]
        s = self._scratch[lo:hi]
        data = self.arena.data[lo:hi]
        if self._velocity_flat is None:
            np.multiply(g, lr, out=s)           # == lr * grad elementwise
            data -= s
            return
        v = self._velocity_flat[lo:hi]
        v *= self.momentum
        v += g
        np.multiply(v, lr, out=s)
        data -= s

    def step(self) -> None:
        if telemetry.enabled():
            telemetry.count("optim.steps")
        if self.arena is not None:
            self._span_update(0, self.arena.size, self._prepare_update())
            return
        lr = self.learning_rate
        if self._velocity is None:
            for p in self.parameters:
                if p.grad is not None:
                    p.data -= lr * p.grad
            return
        mu = self.momentum
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            v *= mu
            v += p.grad
            p.data -= lr * v

    def state_arrays(self) -> dict:
        state = super().state_arrays()
        state["momentum"] = self.momentum
        if self._velocity is not None:
            state["velocity"] = [v.copy() for v in self._velocity]
        return state

    def load_state_arrays(self, state: dict) -> None:
        super().load_state_arrays(state)
        if "velocity" in state and self._velocity is not None:
            for v, saved in zip(self._velocity, state["velocity"]):
                v[...] = saved


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015) — the paper's optimizer."""

    name = "adam"

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 arena: ParameterArena | None = None):
        super().__init__(parameters, learning_rate, arena=arena)
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.t = 0
        if self.arena is not None:
            self._m_flat, self._m = self._flat_state()
            self._v_flat, self._v = self._flat_state()
            self._scratch = np.empty(self.arena.size, dtype=self.arena.data.dtype)
            self._scratch2 = np.empty(self.arena.size, dtype=self.arena.data.dtype)
        else:
            self._m = [np.zeros_like(p.data) for p in self.parameters]
            self._v = [np.zeros_like(p.data) for p in self.parameters]

    def _prepare_update(self):
        self.t += 1
        # Fold both bias corrections into one scalar step size.
        return self.learning_rate * np.sqrt(1.0 - self.beta2 ** self.t) \
            / (1.0 - self.beta1 ** self.t)

    def _span_update(self, lo: int, hi: int, corrected_lr: float) -> None:
        # The fused sweep over one slab span; each line mirrors one
        # elementwise operation of the per-tensor loop below, in the
        # same order, so the update is bit-identical.
        b1, b2, eps = self.beta1, self.beta2, self.eps
        g = self.arena.grad[lo:hi]
        m, v = self._m_flat[lo:hi], self._v_flat[lo:hi]
        s, s2 = self._scratch[lo:hi], self._scratch2[lo:hi]
        m *= b1
        np.multiply(g, 1.0 - b1, out=s)         # == (1 - b1) * g
        m += s
        v *= b2
        np.multiply(g, g, out=s)
        s *= 1.0 - b2                           # == (1 - b2) * (g * g)
        v += s
        np.sqrt(v, out=s)
        s += eps                                # == sqrt(v) + eps
        np.multiply(m, corrected_lr, out=s2)
        s2 /= s                                 # == corrected_lr * m / (...)
        data = self.arena.data[lo:hi]
        data -= s2

    def step(self) -> None:
        if telemetry.enabled():
            telemetry.count("optim.steps")
        if self.arena is not None:
            self._span_update(0, self.arena.size, self._prepare_update())
            return
        self.t += 1
        b1, b2 = self.beta1, self.beta2
        corrected_lr = self.learning_rate * np.sqrt(1.0 - b2 ** self.t) / (1.0 - b1 ** self.t)
        eps = self.eps
        for p, m, v in zip(self.parameters, self._m, self._v):
            g = p.grad
            if g is None:
                continue
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * (g * g)
            p.data -= corrected_lr * m / (np.sqrt(v) + eps)

    def state_arrays(self) -> dict:
        state = super().state_arrays()
        state.update(
            t=self.t,
            m=[m.copy() for m in self._m],
            v=[v.copy() for v in self._v],
            betas=(self.beta1, self.beta2),
            eps=self.eps,
        )
        return state

    def load_state_arrays(self, state: dict) -> None:
        super().load_state_arrays(state)
        self.t = int(state["t"])
        for m, saved in zip(self._m, state["m"]):
            m[...] = saved
        for v, saved in zip(self._v, state["v"]):
            v[...] = saved


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton), the optimizer used by the original Lipizzaner code."""

    name = "rmsprop"

    def __init__(self, parameters: Iterable[Tensor], learning_rate: float,
                 alpha: float = 0.99, eps: float = 1e-8,
                 arena: ParameterArena | None = None):
        super().__init__(parameters, learning_rate, arena=arena)
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        self.alpha = alpha
        self.eps = eps
        if self.arena is not None:
            self._sq_flat, self._sq = self._flat_state()
            self._scratch = np.empty(self.arena.size, dtype=self.arena.data.dtype)
            self._scratch2 = np.empty(self.arena.size, dtype=self.arena.data.dtype)
        else:
            self._sq = [np.zeros_like(p.data) for p in self.parameters]

    def _prepare_update(self):
        return self.learning_rate

    def _span_update(self, lo: int, hi: int, lr: float) -> None:
        # Mirrors the per-tensor loop below op for op (bit-identical).
        alpha, eps = self.alpha, self.eps
        g = self.arena.grad[lo:hi]
        sq = self._sq_flat[lo:hi]
        s, s2 = self._scratch[lo:hi], self._scratch2[lo:hi]
        sq *= alpha
        np.multiply(g, g, out=s)
        s *= 1.0 - alpha                        # == (1 - alpha) * (g * g)
        sq += s
        np.sqrt(sq, out=s)
        s += eps                                # == sqrt(sq) + eps
        np.multiply(g, lr, out=s2)              # == lr * g
        s2 /= s
        data = self.arena.data[lo:hi]
        data -= s2

    def step(self) -> None:
        if telemetry.enabled():
            telemetry.count("optim.steps")
        if self.arena is not None:
            self._span_update(0, self.arena.size, self._prepare_update())
            return
        lr, alpha, eps = self.learning_rate, self.alpha, self.eps
        for p, sq in zip(self.parameters, self._sq):
            g = p.grad
            if g is None:
                continue
            sq *= alpha
            sq += (1.0 - alpha) * (g * g)
            p.data -= lr * g / (np.sqrt(sq) + eps)

    def state_arrays(self) -> dict:
        state = super().state_arrays()
        state["sq"] = [s.copy() for s in self._sq]
        return state

    def load_state_arrays(self, state: dict) -> None:
        super().load_state_arrays(state)
        for s, saved in zip(self._sq, state["sq"]):
            s[...] = saved


_OPTIMIZERS = {"sgd": SGD, "adam": Adam, "rmsprop": RMSprop}


def optimizer_by_name(name: str, parameters: Sequence[Tensor], learning_rate: float,
                      arena: ParameterArena | None = None) -> Optimizer:
    """Instantiate the optimizer named in the configuration (Table I).

    Pass the :class:`~repro.nn.arena.ParameterArena` backing ``parameters``
    to get the fused slab update (bit-identical, one vectorized sweep).
    """
    try:
        cls = _OPTIMIZERS[name]
    except KeyError:
        raise ValueError(f"unknown optimizer {name!r}; known: {sorted(_OPTIMIZERS)}") from None
    return cls(parameters, learning_rate, arena=arena)
