"""Parameter initializers.

Each initializer takes an explicit :class:`numpy.random.Generator` — the
whole project threads RNGs explicitly so distributed runs are reproducible
(each grid cell derives its generator from the experiment seed and its cell
index via ``numpy.random.SeedSequence.spawn``).

Contract: every initializer returns an **owned, C-contiguous**
:data:`PARAM_DTYPE` (float64) array.  :class:`~repro.nn.arena.ParameterArena`
relies on this when it adopts freshly initialized parameters into a
network's contiguous slab — a single dtype means one ``memcpy`` per tensor
at attach time and exactly one slab dtype forever after.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PARAM_DTYPE", "normal_init", "xavier_uniform", "xavier_normal",
           "kaiming_normal", "zeros_init"]

#: The one parameter dtype of the whole system (autograd, arenas, genomes).
PARAM_DTYPE = np.float64


def _as_param(values: np.ndarray) -> np.ndarray:
    """Normalize an initializer's draw to the arena-adoptable form."""
    return np.ascontiguousarray(values, dtype=PARAM_DTYPE)


def normal_init(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Gaussian init with fixed standard deviation (DCGAN-style default)."""
    return _as_param(rng.normal(0.0, std, size=shape))


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform init; assumes ``shape == (fan_in, fan_out)``."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _as_param(rng.uniform(-limit, limit, size=shape))


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot normal init; assumes ``shape == (fan_in, fan_out)``."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return _as_param(rng.normal(0.0, std, size=shape))


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator, negative_slope: float = 0.0) -> np.ndarray:
    """He init for (leaky-)ReLU layers; assumes ``shape == (fan_in, fan_out)``."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope ** 2))
    std = gain / np.sqrt(fan_in)
    return _as_param(rng.normal(0.0, std, size=shape))


def zeros_init(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape, dtype=PARAM_DTYPE)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
