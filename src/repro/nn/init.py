"""Parameter initializers.

Each initializer takes an explicit :class:`numpy.random.Generator` — the
whole project threads RNGs explicitly so distributed runs are reproducible
(each grid cell derives its generator from the experiment seed and its cell
index via ``numpy.random.SeedSequence.spawn``).

Contract: every initializer returns an **owned, C-contiguous** array in the
requested ``dtype`` (default :data:`PARAM_DTYPE`, float64 — the reference
policy).  :class:`~repro.nn.arena.ParameterArena` relies on this when it
adopts freshly initialized parameters into a network's contiguous slab — a
single dtype per network means one ``memcpy`` per tensor at attach time and
exactly one slab dtype forever after.

Dtype discipline: every random draw happens in float64 and is *then* cast,
so the RNG stream consumption is identical across dtype policies — a
float32 run visits the exact same random sequence as the float64 reference.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PARAM_DTYPE", "normal_init", "xavier_uniform", "xavier_normal",
           "kaiming_normal", "zeros_init"]

#: The reference parameter dtype (the ``float64`` policy; see
#: :data:`repro.registry.DTYPES` for the others).
PARAM_DTYPE = np.float64


def _as_param(values: np.ndarray, dtype) -> np.ndarray:
    """Normalize an initializer's draw to the arena-adoptable form."""
    return np.ascontiguousarray(values, dtype=dtype)


def normal_init(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02,
                dtype=PARAM_DTYPE) -> np.ndarray:
    """Gaussian init with fixed standard deviation (DCGAN-style default)."""
    return _as_param(rng.normal(0.0, std, size=shape), dtype)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0,
                   dtype=PARAM_DTYPE) -> np.ndarray:
    """Glorot uniform init; assumes ``shape == (fan_in, fan_out)``."""
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _as_param(rng.uniform(-limit, limit, size=shape), dtype)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0,
                  dtype=PARAM_DTYPE) -> np.ndarray:
    """Glorot normal init; assumes ``shape == (fan_in, fan_out)``."""
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return _as_param(rng.normal(0.0, std, size=shape), dtype)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator,
                   negative_slope: float = 0.0, dtype=PARAM_DTYPE) -> np.ndarray:
    """He init for (leaky-)ReLU layers; assumes ``shape == (fan_in, fan_out)``."""
    fan_in, _ = _fans(shape)
    gain = np.sqrt(2.0 / (1.0 + negative_slope ** 2))
    std = gain / np.sqrt(fan_in)
    return _as_param(rng.normal(0.0, std, size=shape), dtype)


def zeros_init(shape: tuple[int, ...], rng: np.random.Generator | None = None,
               dtype=PARAM_DTYPE) -> np.ndarray:
    """All-zeros init (biases)."""
    return np.zeros(shape, dtype=dtype)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[1] * receptive, shape[0] * receptive
