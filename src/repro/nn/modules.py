"""Neural-network modules: ``Module``, ``Linear``, ``Sequential``, activations.

The paper's Table I networks are plain MLPs; this module provides exactly the
layer vocabulary they need with a PyTorch-like API (``parameters()``,
``named_parameters()``, ``__call__`` forwarding to ``forward``).
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.nn.arena import arena_of
from repro.nn.autograd import Tensor
from repro.nn.init import PARAM_DTYPE, xavier_normal, zeros_init

__all__ = [
    "Module",
    "Linear",
    "Sequential",
    "Tanh",
    "Sigmoid",
    "ReLU",
    "LeakyReLU",
    "Identity",
    "activation_module",
]


class Module:
    """Base class: containers of parameters and sub-modules.

    Sub-modules and parameters are discovered through attribute assignment,
    as in PyTorch.  Parameter order is deterministic (insertion order), which
    the genome flattening in :mod:`repro.nn.serialize` relies on.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Tensor) and value.requires_grad:
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal -------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def zero_grad(self) -> None:
        arena = arena_of(self)
        if arena is not None:
            # One fused fill over the gradient slab instead of a walk.
            arena.zero_grads()
            return
        for p in self.parameters():
            p.zero_grad()

    # -- execution ---------------------------------------------------------------

    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)


class Linear(Module):
    """Affine layer ``y = x W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 init: Callable[..., np.ndarray] = xavier_normal, bias: bool = True,
                 dtype=None):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        dtype = np.dtype(dtype) if dtype is not None else np.dtype(PARAM_DTYPE)
        # Only non-default dtypes pass the keyword, so arbitrary custom init
        # callables (the documented ``(shape, rng) -> ndarray`` contract)
        # keep working under the float64 reference policy.
        weight = (init((in_features, out_features), rng) if dtype == PARAM_DTYPE
                  else init((in_features, out_features), rng, dtype=dtype))
        self.weight = Tensor(np.ascontiguousarray(weight, dtype=dtype), requires_grad=True)
        self.bias = (Tensor(zeros_init((out_features,), dtype=dtype), requires_grad=True)
                     if bias else None)

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Linear({self.in_features}, {self.out_features})"


class Sequential(Module):
    """Container applying modules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, f"layer{i}", layer)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.2):
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


_ACTIVATIONS: dict[str, Callable[[], Module]] = {
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "relu": ReLU,
    "leaky_relu": LeakyReLU,
    "identity": Identity,
}


def activation_module(name: str) -> Module:
    """Instantiate the activation named in the configuration (Table I)."""
    try:
        return _ACTIVATIONS[name]()
    except KeyError:
        raise ValueError(f"unknown activation {name!r}; known: {sorted(_ACTIVATIONS)}") from None
