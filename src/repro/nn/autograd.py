"""Reverse-mode automatic differentiation on NumPy arrays.

Design
------
A :class:`Tensor` wraps a ``numpy.ndarray`` plus an optional gradient.  Every
differentiable operation eagerly computes its result and records, on the
result tensor, its parent tensors together with one vector-Jacobian product
(VJP) closure per parent.  :meth:`Tensor.backward` topologically sorts this
tape iteratively (deep MLP graphs would overflow Python's recursion limit)
and accumulates gradients leaf-ward.

Performance notes (following the HPC guides): all math is vectorized NumPy;
gradients are accumulated **in place** with ``+=``; broadcasting in the
forward pass is undone in the backward pass by :func:`_unbroadcast`
(sum-reduction over the broadcast axes) without intermediate copies where
possible; evaluation-only code paths run under :func:`no_grad` so no tape is
recorded at all.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Sequence

import numpy as np

__all__ = ["Tensor", "tensor", "no_grad", "is_grad_enabled", "concatenate", "stack"]

_DEFAULT_DTYPE = np.float64

Vjp = Callable[[np.ndarray], "np.ndarray | None"]


class _GradMode(threading.local):
    """Thread-local switch controlling whether the tape is recorded.

    Thread-local matters here: the slave process trains on its *execution
    thread* while the *main thread* answers the master's status requests
    (paper Section III-B); the two must not share grad-mode state.
    """

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _grad_mode.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape recording (e.g. for fitness evaluation)."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = False
    try:
        yield
    finally:
        _grad_mode.enabled = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` to ``shape``: the adjoint of NumPy broadcasting.

    Broadcasting either prepends axes or stretches size-1 axes; its adjoint
    is summation over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


#: Float dtypes a Tensor may carry.  Arrays already in one of these are
#: adopted as-is (the dtype policy decides what reaches us); anything else
#: (ints, bools, lists, scalars) normalizes to the float64 default.
_TENSOR_DTYPES = (np.dtype(np.float64), np.dtype(np.float32), np.dtype(np.float16))


def _as_array(value, dtype=None) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if dtype is None:
            return value if value.dtype in _TENSOR_DTYPES else value.astype(_DEFAULT_DTYPE)
        return value if value.dtype == dtype else value.astype(dtype)
    return np.asarray(value, dtype=dtype if dtype is not None else _DEFAULT_DTYPE)


class Tensor:
    """A NumPy array with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_vjps")

    def __init__(self, data, requires_grad: bool = False):
        self.data: np.ndarray = _as_array(data)
        self.requires_grad: bool = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._vjps: tuple[Vjp, ...] | None = None

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def zeros(shape: Sequence[int] | int, requires_grad: bool = False,
              dtype=None) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype or _DEFAULT_DTYPE), requires_grad)

    @staticmethod
    def ones(shape: Sequence[int] | int, requires_grad: bool = False,
             dtype=None) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype or _DEFAULT_DTYPE), requires_grad)

    # -- basic protocol --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        return self._vjps is None

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient in place (lazy allocation).

        ``fill`` rather than rebinding: for arena-backed parameters the
        gradient is a view into the module's shared gradient slab and the
        fused optimizer step depends on that binding staying intact.
        """
        if self.grad is not None:
            self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    # -- graph construction ----------------------------------------------------

    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], vjps: tuple[Vjp, ...]) -> "Tensor":
        """Create the result of an op, recording the tape if grad is enabled."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = parents
            out._vjps = vjps
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ``1`` for scalar outputs (the usual loss case).
        Gradients accumulate into ``.grad`` of leaf tensors that require grad;
        the tape is freed afterwards so intermediate buffers can be collected.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient requires a scalar")
            seed = np.ones_like(self.data)
        else:
            seed = _as_array(grad, self.data.dtype)
            if seed.shape != self.data.shape:
                raise ValueError(f"gradient shape {seed.shape} != tensor shape {self.data.shape}")

        # Iterative post-order DFS for a topological order of the tape.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): seed}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._vjps is None:
                # Leaf: accumulate into .grad strictly in place — a
                # preallocated gradient (an arena slab view) must keep its
                # binding, so the buffer is only ever written through.
                if node.grad is None:
                    node.grad = np.zeros_like(node.data)
                node.grad += _unbroadcast(node_grad, node.data.shape)
                continue
            for parent, vjp in zip(node._parents, node._vjps):
                if not parent.requires_grad:
                    continue
                contrib = vjp(node_grad)
                if contrib is None:
                    continue
                contrib = _unbroadcast(contrib, parent.data.shape)
                slot = grads.get(id(parent))
                if slot is None:
                    # Own the buffer before later in-place accumulation: the
                    # VJP may have returned `node_grad` itself or a view.
                    if contrib is node_grad or contrib.base is not None or not contrib.flags.owndata:
                        contrib = contrib.copy()
                    grads[id(parent)] = contrib
                else:
                    slot += contrib

        # Release the tape (breaks reference cycles, frees activations).
        for node in topo:
            if node._vjps is not None:
                node._parents = ()
                node._vjps = None

    # -- arithmetic -------------------------------------------------------------

    def _wrap(self, other) -> "Tensor":
        """Wrap a non-Tensor operand in this tensor's dtype.

        Plain scalars and lists would otherwise become float64 0-d arrays,
        which NEP 50 promotes against float32/float16 tapes — one stray
        ``t * 0.5`` would silently widen the whole graph.  For float64
        tensors this is bit-identical to the old unconditional wrap.
        """
        return Tensor(_as_array(other, self.data.dtype))

    def __add__(self, other) -> "Tensor":
        o = other if isinstance(other, Tensor) else self._wrap(other)
        return Tensor._make(self.data + o.data, (self, o), (lambda g: g, lambda g: g))

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        o = other if isinstance(other, Tensor) else self._wrap(other)
        return Tensor._make(self.data - o.data, (self, o), (lambda g: g, lambda g: -g))

    def __rsub__(self, other) -> "Tensor":
        o = other if isinstance(other, Tensor) else self._wrap(other)
        return o.__sub__(self)

    def __mul__(self, other) -> "Tensor":
        o = other if isinstance(other, Tensor) else self._wrap(other)
        a, b = self.data, o.data
        return Tensor._make(a * b, (self, o), (lambda g: g * b, lambda g: g * a))

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        o = other if isinstance(other, Tensor) else self._wrap(other)
        a, b = self.data, o.data
        out = a / b
        return Tensor._make(out, (self, o), (lambda g: g / b, lambda g: -g * out / b))

    def __rtruediv__(self, other) -> "Tensor":
        o = other if isinstance(other, Tensor) else self._wrap(other)
        return o.__truediv__(self)

    def __neg__(self) -> "Tensor":
        return Tensor._make(-self.data, (self,), (lambda g: -g,))

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        p = float(exponent)
        a = self.data
        out = a ** p
        return Tensor._make(out, (self,), (lambda g: g * p * a ** (p - 1.0),))

    def __matmul__(self, other) -> "Tensor":
        o = other if isinstance(other, Tensor) else self._wrap(other)
        a, b = self.data, o.data
        if a.ndim != 2 or b.ndim != 2:
            raise ValueError(
                f"matmul supports 2-D operands only, got {a.shape} @ {b.shape}"
            )
        return Tensor._make(a @ b, (self, o), (lambda g: g @ b.T, lambda g: a.T @ g))

    # -- elementwise functions ---------------------------------------------------

    def exp(self) -> "Tensor":
        out = np.exp(self.data)
        return Tensor._make(out, (self,), (lambda g: g * out,))

    def log(self) -> "Tensor":
        a = self.data
        return Tensor._make(np.log(a), (self,), (lambda g: g / a,))

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)
        return Tensor._make(out, (self,), (lambda g: g * 0.5 / out,))

    def abs(self) -> "Tensor":
        a = self.data
        return Tensor._make(np.abs(a), (self,), (lambda g: g * np.sign(a),))

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)
        return Tensor._make(out, (self,), (lambda g: g * (1.0 - out * out),))

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic: scipy-style piecewise via np.where on
        # exp of the negative magnitude.
        a = self.data
        out = np.empty_like(a)
        pos = a >= 0
        neg = ~pos
        out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
        ea = np.exp(a[neg])
        out[neg] = ea / (1.0 + ea)
        return Tensor._make(out, (self,), (lambda g: g * out * (1.0 - out),))

    def relu(self) -> "Tensor":
        a = self.data
        mask = a > 0
        return Tensor._make(a * mask, (self,), (lambda g: g * mask,))

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        a = self.data
        # np.where over a bool mask and two python floats yields float64;
        # fold back to the tape's dtype (a no-op copy=False for float64).
        scale = np.where(a > 0, 1.0, negative_slope).astype(a.dtype, copy=False)
        return Tensor._make(a * scale, (self,), (lambda g: g * scale,))

    def softplus(self) -> "Tensor":
        """Numerically stable ``log(1 + exp(x))``; gradient is ``sigmoid(x)``."""
        a = self.data
        out = np.maximum(a, 0.0) + np.log1p(np.exp(-np.abs(a)))

        def vjp(g: np.ndarray) -> np.ndarray:
            s = np.empty_like(a)
            pos = a >= 0
            neg = ~pos
            s[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
            ea = np.exp(a[neg])
            s[neg] = ea / (1.0 + ea)
            return g * s

        return Tensor._make(out, (self,), (vjp,))

    def clip(self, low: float, high: float) -> "Tensor":
        a = self.data
        mask = (a >= low) & (a <= high)
        return Tensor._make(np.clip(a, low, high), (self,), (lambda g: g * mask,))

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        a = self.data
        out = a.sum(axis=axis, keepdims=keepdims)

        def vjp(g: np.ndarray) -> np.ndarray:
            if axis is None:
                return np.broadcast_to(g, a.shape)
            if keepdims:
                return np.broadcast_to(g, a.shape)
            g_expanded = np.expand_dims(g, axis)
            return np.broadcast_to(g_expanded, a.shape)

        return Tensor._make(np.asarray(out), (self,), (vjp,))

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        a = self.data
        if axis is None:
            count = a.size
        elif isinstance(axis, tuple):
            count = int(np.prod([a.shape[ax] for ax in axis]))
        else:
            count = a.shape[axis]
        scaled = self.sum(axis=axis, keepdims=keepdims)
        return scaled * (1.0 / count)

    # -- shape manipulation ---------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        a = self.data
        return Tensor._make(a.reshape(shape), (self,), (lambda g: g.reshape(a.shape),))

    @property
    def T(self) -> "Tensor":
        return Tensor._make(self.data.T, (self,), (lambda g: g.T,))

    def __getitem__(self, index) -> "Tensor":
        a = self.data
        out = a[index]

        def vjp(g: np.ndarray) -> np.ndarray:
            full = np.zeros_like(a)
            np.add.at(full, index, g)
            return full

        return Tensor._make(np.asarray(out), (self,), (vjp,))


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.concatenate`` over a sequence of tensors."""
    datas = [t.data for t in tensors]
    out = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def make_vjp(i: int) -> Vjp:
        lo, hi = offsets[i], offsets[i + 1]

        def vjp(g: np.ndarray) -> np.ndarray:
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(lo, hi)
            return g[tuple(slicer)]

        return vjp

    return Tensor._make(out, tuple(tensors), tuple(make_vjp(i) for i in range(len(tensors))))


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable ``np.stack``."""
    out = np.stack([t.data for t in tensors], axis=axis)

    def make_vjp(i: int) -> Vjp:
        def vjp(g: np.ndarray) -> np.ndarray:
            return np.take(g, i, axis=axis)

        return vjp

    return Tensor._make(out, tuple(tensors), tuple(make_vjp(i) for i in range(len(tensors))))


def tensor(data, requires_grad: bool = False) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad)
