"""Fused, graph-free train-step kernels for the fixed Linear+activation MLPs.

The autograd :class:`~repro.nn.autograd.Tensor` path builds, per batch, a
tape of ~100 nodes (one heap allocation plus a closure pair per op) for
networks whose structure never changes: the paper's Table I stacks are plain
``Linear -> activation`` chains.  A :class:`FusedStepKernel` is built once
per network from its :meth:`layer recipe <repro.gan.networks.Generator.
layer_recipe>`: it preallocates activation/gradient workspaces sized to the
batch, runs the forward with ``np.matmul(..., out=)`` and in-place
activations, and runs the hand-derived backward writing gradients *directly
into the arena's gradient slab* — no graph, no per-op allocation.

Bit-identity contract
---------------------
The kernels replay **exactly the same NumPy operations in the same order**
as the autograd path, so with the same seed they produce the same genome
bytes (asserted by ``tests/test_nn_kernels.py`` down to a 50-iteration
training trajectory).  The rules that make this work:

* every elementwise/GEMM op mirrors one autograd forward op or one recorded
  VJP closure, operand order included (``out=`` buffers do not change
  result bits — verified for this BLAS by the test suite);
* row-blocking stability: with a contiguous weight operand and an output
  width >= 8, GEMM results are bitwise row-independent of the batch
  dimension (probed across this BLAS's kernel-dispatch regimes and
  asserted by the tests), so the real and fake batches of a discriminator
  step may ride one stacked forward; narrow (GEMV-path) output layers,
  every transposed-operand backward GEMM (``g @ W.T``), and the reduction
  GEMMs (``x.T @ g``) run per branch — exactly as the tape did — because
  there stability either fails empirically or would merge sums;
* gradient accumulation replays autograd's leaf order (real-branch
  contribution first, then fake) writing straight into the arena grad slab;
* the optimizer update runs through :meth:`repro.nn.optim.Optimizer.
  step_blocked` — the same elementwise pipeline, cache-blocked (elementwise
  ops have no cross-element interaction, so blocking cannot change bits).

Precision: kernels inherit the network's compute dtype from its arena slab
(the configured dtype policy; see :data:`repro.registry.DTYPES`).  The
tape-vs-kernel bit-identity above is asserted for the float64 reference
policy; float32/``mixed16`` runs instead pin *per-dtype determinism* —
same seed, same dtype, same trajectory across all backends — with their
own golden hashes.  Workspaces are keyed by dtype (it is part of the
kernel signature), so same-topology networks under different policies
never share buffers.

Fallback contract
-----------------
``kernel_for`` returns ``None`` — and every ``fused_*`` entry point
declines, letting the caller run the autograd path — when the network has
no :class:`~repro.nn.arena.ParameterArena` (e.g. it crossed a pickle
boundary), when its module stack is not a recognized Linear+activation
chain, or when the loss is not one of the three Mustangs losses.  Both
paths consume identical RNG streams, so mixed fused/fallback populations
stay trajectory-identical.

The kill switch ``REPRO_NO_FUSED_KERNELS=1`` (or
:func:`set_kernels_enabled`) disables the fused path globally; it is what
the before/after benchmark ``benchmarks/test_train_step.py`` toggles.
"""

from __future__ import annotations

import contextlib
import os
import threading
import weakref

import numpy as np

from repro.nn.arena import arena_of
from repro.nn.losses import BCELoss, GANLoss, HeuristicLoss, LeastSquaresLoss
from repro.nn.modules import (
    Identity,
    LeakyReLU,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.telemetry import bus as telemetry

__all__ = [
    "FusedStepKernel",
    "kernel_for",
    "loss_kernel_for",
    "kernels_enabled",
    "set_kernels_enabled",
    "kernels_disabled",
    "fused_discriminator_step",
    "fused_generator_step",
    "fused_fitness_table",
    "fused_generator_value",
    "fused_sample_images",
    "sequential_recipe",
]

# ---------------------------------------------------------------------------
# Global enable switch
# ---------------------------------------------------------------------------

_ENABLED = not bool(os.environ.get("REPRO_NO_FUSED_KERNELS"))  # repro: allow[R8] -- kill switch, read once before any kernel is built so every rank agrees


def kernels_enabled() -> bool:
    """Whether the fused kernels are globally enabled (default: yes)."""
    return _ENABLED


def set_kernels_enabled(enabled: bool) -> bool:
    """Toggle the fused kernels globally; returns the previous setting."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def kernels_disabled():
    """Context manager forcing the autograd path (benchmarks, A/B tests)."""
    previous = set_kernels_enabled(False)
    try:
        yield
    finally:
        set_kernels_enabled(previous)


# ---------------------------------------------------------------------------
# Layer recipes
# ---------------------------------------------------------------------------

#: activation tag per module type; the tag drives the in-place forward and
#: the hand-derived VJP in the backward sweep.
_ACTIVATION_TAGS = {
    Tanh: ("tanh", None),
    Sigmoid: ("sigmoid", None),
    ReLU: ("relu", None),
    Identity: (None, None),
}


def sequential_recipe(net: Module) -> list[tuple[Linear, str | None, float | None]] | None:
    """Flatten a ``Sequential`` into ``(linear, activation, slope)`` steps.

    Returns ``None`` when the stack contains anything but ``Linear`` (with
    bias) and the known activations — the signal to fall back to autograd.
    An activation folds onto the preceding linear step; a leading
    activation or two in a row have no step to fold onto and are likewise
    unsupported (``None``), except ``Identity``, which is simply dropped.
    """
    if not isinstance(net, Sequential):
        return None
    steps: list[tuple[Linear, str | None, float | None]] = []
    for layer in net:
        if isinstance(layer, Linear):
            if layer.bias is None:
                return None
            steps.append((layer, None, None))
            continue
        tag: str | None
        slope: float | None
        if isinstance(layer, LeakyReLU):
            tag, slope = "leaky_relu", float(layer.negative_slope)
        elif type(layer) in _ACTIVATION_TAGS:
            tag, slope = _ACTIVATION_TAGS[type(layer)]
        else:
            return None
        if tag is None:  # Identity: nothing to apply
            continue
        if not steps or steps[-1][1] is not None:
            # activation with no preceding linear (or two in a row)
            return None
        linear, _, _ = steps[-1]
        steps[-1] = (linear, tag, slope)
    return steps if steps else None


def _module_recipe(module: Module):
    """A network's layer recipe: its own hook when provided, else a walk."""
    recipe_fn = getattr(module, "layer_recipe", None)
    if recipe_fn is not None:
        return recipe_fn()
    if isinstance(module, Sequential):
        return sequential_recipe(module)
    inner = getattr(module, "net", None)
    if isinstance(inner, Sequential):
        return sequential_recipe(inner)
    return None


# ---------------------------------------------------------------------------
# Workspaces (thread-local: the threaded backend steps cells concurrently)
# ---------------------------------------------------------------------------


class _WorkspaceStore(threading.local):
    def __init__(self) -> None:
        from collections import OrderedDict

        self.pools: "OrderedDict[tuple, _Workspace]" = OrderedDict()


_WORKSPACES = _WorkspaceStore()

#: LRU cap on cached workspaces per thread.  The training hot path cycles
#: through a handful of ``(topology, batch)`` keys per cell, but callers
#: like ``sample_mixture`` request *data-dependent* batch sizes (multinomial
#: counts), so an unbounded cache would grow a new multi-MB workspace for
#: every distinct size a long-lived process ever sees.
_WORKSPACE_CACHE_LIMIT = 32


class _Workspace:
    """Per-(topology, batch) activation/gradient buffers, shared by all
    same-shaped networks on one thread (buffers only live within one call).

    Only the forward activations are allocated eagerly; the backward-only
    buffers (gradients, the input stack, the reduction scratch) appear on
    first access so forward-only consumers — sampling, serving, the
    batched fitness table — pay half the footprint.
    """

    __slots__ = ("_in_dim", "_dims", "_n", "_dtype", "acts", "_grads",
                 "_x_stack", "_w_scratch", "_b_scratch")

    def __init__(self, in_dim: int, dims: tuple[int, ...], n: int,
                 dtype: np.dtype) -> None:
        self._in_dim = in_dim
        self._dims = dims
        self._n = n
        self._dtype = dtype
        self.acts = [np.empty((n, d), dtype=dtype) for d in dims]
        self._grads: list[np.ndarray] | None = None
        self._x_stack: np.ndarray | None = None
        self._w_scratch: list[np.ndarray] | None = None
        self._b_scratch: list[np.ndarray] | None = None

    @property
    def grads(self) -> list[np.ndarray]:
        if self._grads is None:
            self._grads = [np.empty((self._n, d), dtype=self._dtype)
                           for d in self._dims]
        return self._grads

    @property
    def x_stack(self) -> np.ndarray:
        if self._x_stack is None:
            self._x_stack = np.empty((self._n, self._in_dim), dtype=self._dtype)
        return self._x_stack

    @property
    def w_scratch(self) -> list[np.ndarray]:
        if self._w_scratch is None:
            self._w_scratch = [
                np.empty((prev, d), dtype=self._dtype)
                for prev, d in zip((self._in_dim,) + self._dims[:-1], self._dims)
            ]
        return self._w_scratch

    @property
    def b_scratch(self) -> list[np.ndarray]:
        if self._b_scratch is None:
            self._b_scratch = [np.empty(d, dtype=self._dtype) for d in self._dims]
        return self._b_scratch


def _workspace(signature: tuple, in_dim: int, dims: tuple[int, ...], n: int,
               dtype: np.dtype) -> _Workspace:
    # The dtype rides in ``signature`` (see ``FusedStepKernel.signature``),
    # so a float32 and a float64 network with the same topology never share
    # buffers; it is still passed here for the allocation itself.
    pools = _WORKSPACES.pools
    key = (signature, n)
    ws = pools.get(key)
    if ws is None:
        ws = _Workspace(in_dim, dims, n, dtype)
        pools[key] = ws
        while len(pools) > _WORKSPACE_CACHE_LIMIT:
            pools.popitem(last=False)
    else:
        pools.move_to_end(key)
    return ws


# ---------------------------------------------------------------------------
# The per-network kernel
# ---------------------------------------------------------------------------

#: module -> FusedStepKernel | None (None caches "not eligible")
_KERNELS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_KERNELS_LOCK = threading.Lock()


class FusedStepKernel:
    """Graph-free forward/backward for one fixed Linear+activation stack.

    Holds references to the live parameter tensors (arena views) and the
    arena itself; workspaces are fetched per batch size on first use.  The
    kernel stays valid across genome writes (``vector_to_parameters``
    mutates the slab in place, never rebinds).

    Deliberately does **not** reference the owning module: kernels are the
    *values* of a weak-keyed per-module registry, and a value that reached
    back to its key would pin every kernelized network (and its arena
    slabs) in memory forever.
    """

    __slots__ = ("arena", "steps", "in_dim", "dims", "dtype", "signature",
                 "__weakref__")

    def __init__(self, module: Module, recipe) -> None:
        arena = arena_of(module)
        if arena is None:
            raise ValueError("fused kernels require an arena-backed module")
        self.arena = arena
        self.steps = list(recipe)
        self.in_dim = self.steps[0][0].in_features
        self.dims = tuple(linear.out_features for linear, _, _ in self.steps)
        self.dtype = arena.data.dtype
        self.signature = (self.in_dim, str(self.dtype)) + tuple(
            (linear.out_features, act, slope) for linear, act, slope in self.steps
        )
        # The recipe must cover the arena exactly: the backward writes into
        # grad-slab views of precisely these tensors.
        params = []
        for linear, _, _ in self.steps:
            params.append(linear.weight)
            params.append(linear.bias)
        if not arena.backs(params):
            raise ValueError("layer recipe does not cover the module's arena")

    # -- forward ------------------------------------------------------------

    def workspace(self, n: int) -> _Workspace:
        return _workspace(self.signature, self.in_dim, self.dims, n, self.dtype)

    def as_compute(self, a: np.ndarray) -> np.ndarray:
        """Batches/latents are drawn float64 (RNG-stream parity across
        policies); narrow them here so every GEMM stays on the homogeneous
        BLAS path.  A no-op under the float64 reference policy."""
        return a if a.dtype == self.dtype else a.astype(self.dtype)

    def forward(self, x: np.ndarray, ws: _Workspace | None = None,
                final_out: np.ndarray | None = None,
                branches: tuple[slice, ...] | None = None) -> np.ndarray:
        """Forward ``x`` (``(n, in_dim)``) through the stack, no tape.

        Mirrors ``Linear.forward`` + the activation modules op for op:
        ``matmul``, ``+= bias``, in-place activation.  ``final_out``
        redirects the last layer's buffer (e.g. a slice of a stacked fake
        batch) so the caller avoids one copy.  Returns the output buffer —
        a workspace (or ``final_out``) that is overwritten by the next call.

        ``branches`` lists the row blocks of a *stacked* batch that the
        autograd path would forward as separate calls.  Wide GEMMs are
        bitwise row-block-stable, so they run stacked regardless; but
        narrow output layers (width < 8 — empirically width 1 and 2 on
        this BLAS) take GEMV-style paths whose per-row bits *do* depend on
        the batch size — those layers run per branch (a ~k-multiply-per-row
        triviality) to stay bit-identical.
        """
        if telemetry.enabled():
            telemetry.count("kernels.forward")
        n = x.shape[0]
        if ws is None:
            ws = self.workspace(n)
        h = x
        last = len(self.steps) - 1
        for i, (linear, act, slope) in enumerate(self.steps):
            out = ws.acts[i] if (final_out is None or i != last) else final_out
            if branches is not None and linear.out_features < 8:
                for rows in branches:
                    np.matmul(h[rows], linear.weight.data, out=out[rows])
            else:
                np.matmul(h, linear.weight.data, out=out)
            out += linear.bias.data
            _apply_activation(act, slope, out)
            h = out
        return h

    # -- backward -----------------------------------------------------------

    def backward(self, x: np.ndarray, ws: _Workspace, grad_out: np.ndarray,
                 *, param_grads: bool = True, input_grad: bool = False,
                 branches: tuple[slice, ...] | None = None) -> np.ndarray | None:
        """Hand-derived backward from ``grad_out`` = dL/d(stack output).

        ``grad_out`` is a caller-filled gradient buffer (typically
        ``ws.grads[-1]``); each step's activation VJP is applied first, so
        ``grad_out`` is for the *post*-activation output.  The activation
        buffers in ``ws.acts`` are consumed (overwritten) as scratch on the
        way down — a workspace supports exactly one backward per forward.

        ``branches`` splits the batch into row ranges whose weight/bias
        reductions must stay separate (the discriminator step stacks real
        and fake rows in one forward; autograd reduces them per branch and
        sums — merging the ``x.T @ g`` GEMMs would change summation order).
        Contributions land in the arena grad slab in autograd's leaf order:
        first branch written, later branches accumulated.  The caller must
        have the gradient slab allocated (``arena.ensure_grads()`` — any
        arena-constructed optimizer does this).

        ``param_grads=False`` skips the weight/bias reductions (adversary
        network in a generator step — autograd computes then discards them;
        the kernel never computes them).  ``input_grad=True`` returns
        dL/d input in ``ws.x_stack`` (overwritten by this workspace's next
        use).
        """
        if telemetry.enabled():
            telemetry.count("kernels.backward")
        if branches is None:
            branches = (slice(None),)
        g = grad_out
        for i in range(len(self.steps) - 1, -1, -1):
            linear, act, slope = self.steps[i]
            _activation_vjp(act, slope, ws.acts[i], g)
            if param_grads:
                # acts[i - 1] is still intact here: only step i's own
                # activation buffer has been consumed so far.
                h_in = x if i == 0 else ws.acts[i - 1]
                w_view = linear.weight.grad
                b_view = linear.bias.grad
                for b_idx, rows in enumerate(branches):
                    # VJP of ``x @ W``: x.T @ g ; of ``+ bias``: sum over
                    # the broadcast (batch) axis — same expressions, same
                    # per-branch order as the recorded closures.
                    if b_idx == 0:
                        np.matmul(h_in[rows].T, g[rows], out=w_view)
                        np.sum(g[rows], axis=0, out=b_view)
                    else:
                        np.matmul(h_in[rows].T, g[rows], out=ws.w_scratch[i])
                        w_view += ws.w_scratch[i]
                        np.sum(g[rows], axis=0, out=ws.b_scratch[i])
                        b_view += ws.b_scratch[i]
            if i == 0:
                if not input_grad:
                    return None
                for rows in branches:
                    np.matmul(g[rows], linear.weight.data.T, out=ws.x_stack[rows])
                return ws.x_stack
            # dL/d h_{i-1} = g @ W.T; the next loop turn applies act_{i-1}.
            # Per branch: ``W.T`` is a transposed (non-contiguous) BLAS
            # operand, and transposed-B GEMMs are *not* row-block-stable at
            # all shapes — running each branch exactly as the tape did makes
            # bit-identity hold by construction rather than by probing.
            g_prev = ws.grads[i - 1]
            for rows in branches:
                np.matmul(g[rows], linear.weight.data.T, out=g_prev[rows])
            g = g_prev
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FusedStepKernel({self.in_dim} -> {' -> '.join(map(str, self.dims))})"


def _apply_activation(act: str | None, slope: float | None, out: np.ndarray) -> None:
    """In-place activation mirroring the autograd forward bits-for-bits."""
    if act is None:
        return
    if act == "tanh":
        np.tanh(out, out=out)
    elif act == "sigmoid":
        _sigmoid_inplace(out)
    elif act == "relu":
        # autograd: a * (a > 0) — multiply, not clip, to keep bits equal
        out *= out > 0
    elif act == "leaky_relu":
        # autograd: a * np.where(a > 0, 1.0, slope)
        out *= np.where(out > 0, 1.0, slope)
    else:  # pragma: no cover - recipe construction filters unknown tags
        raise ValueError(f"unknown activation tag {act!r}")


def _sigmoid_inplace(a: np.ndarray) -> None:
    """The numerically stable piecewise logistic of ``Tensor.sigmoid``."""
    pos = a >= 0
    neg = ~pos
    ap = a[pos]
    a[pos] = 1.0 / (1.0 + np.exp(-ap))
    ea = np.exp(a[neg])
    a[neg] = ea / (1.0 + ea)


def _sigmoid_of(a: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Stable logistic into ``out`` (same ops as the autograd closures)."""
    pos = a >= 0
    neg = ~pos
    out[pos] = 1.0 / (1.0 + np.exp(-a[pos]))
    ea = np.exp(a[neg])
    out[neg] = ea / (1.0 + ea)
    return out


def _activation_vjp(act: str | None, slope: float | None, out_act: np.ndarray,
                    g: np.ndarray) -> None:
    """Multiply ``g`` in place by d(activation)/d(pre-activation).

    Each branch replays the exact expression of the recorded VJP closure;
    ``out_act`` is the *post*-activation buffer (for every supported
    activation the VJP is recoverable from it alone) and is **consumed** —
    it doubles as the scratch buffer, because by the time a step's VJP
    runs its activation values have no further reader.
    """
    if act is None:
        return
    if act == "tanh":
        # closure: g * (1.0 - out * out)
        np.multiply(out_act, out_act, out=out_act)
        np.subtract(1.0, out_act, out=out_act)
        g *= out_act
    elif act == "sigmoid":
        # closure: g * out * (1.0 - out) — evaluated left to right
        g *= out_act
        np.subtract(1.0, out_act, out=out_act)
        g *= out_act
    elif act == "relu":
        # closure: g * mask with mask = (a > 0); out > 0 iff a > 0
        g *= out_act > 0
    elif act == "leaky_relu":
        # closure: g * np.where(a > 0, 1.0, slope); sign(out) == sign(a)
        g *= np.where(out_act > 0, 1.0, slope)
    else:  # pragma: no cover
        raise ValueError(f"unknown activation tag {act!r}")


def kernel_for(module: Module) -> FusedStepKernel | None:
    """The cached fused kernel for ``module``, or ``None`` when ineligible.

    Ineligible: no parameter arena (the module crossed a pickle boundary),
    an unrecognized layer stack, or a recipe that does not exactly cover
    the arena.  The verdict is cached either way (weakly, per module).
    """
    with _KERNELS_LOCK:
        if module in _KERNELS:
            return _KERNELS[module]
    kernel: FusedStepKernel | None = None
    recipe = _module_recipe(module)
    if recipe and arena_of(module) is not None:
        try:
            kernel = FusedStepKernel(module, recipe)
        except ValueError:
            kernel = None
    with _KERNELS_LOCK:
        _KERNELS[module] = kernel
    return kernel


# ---------------------------------------------------------------------------
# Loss kernels (exact-type dispatch; custom losses fall back to autograd)
# ---------------------------------------------------------------------------


class _LossKernel:
    """Scalar values and logits-gradients for one GAN loss formulation.

    Every method replays the autograd ops of the corresponding
    ``GANLoss``/``functional`` code path (see the derivations in
    ``tests/test_nn_kernels.py``); gradients fold the constant
    ``1/count`` mean factor the way the recorded tape does.
    """

    def d_value(self, real_logits, fake_logits) -> float:
        raise NotImplementedError

    def g_value(self, fake_logits) -> float:
        raise NotImplementedError

    def d_grad(self, logits, n_real: int, out) -> None:
        """dL/d logits for the stacked ``[real; fake]`` discriminator loss."""
        raise NotImplementedError

    def g_grad(self, fake_logits, out) -> None:
        raise NotImplementedError

    # -- batched fitness-table helpers (rows = one generator's batch) ------

    def g_value_rows(self, logits_rows: np.ndarray) -> np.ndarray:
        """Generator loss per row-block: ``logits_rows`` is ``(s, n)``."""
        raise NotImplementedError

    def d_fake_value_rows(self, logits_rows: np.ndarray) -> np.ndarray:
        """Fake-term of the discriminator loss per row-block."""
        raise NotImplementedError

    def d_real_value(self, real_logits: np.ndarray) -> float:
        """Real-term of the discriminator loss (scalar per discriminator)."""
        raise NotImplementedError


def _softplus(a: np.ndarray) -> np.ndarray:
    """``log(1 + exp(a))`` exactly as ``Tensor.softplus`` computes it."""
    return np.maximum(a, 0.0) + np.log1p(np.exp(-np.abs(a)))


def _mean_all(per_element: np.ndarray) -> np.float64:
    """``Tensor.mean()``: full pairwise sum, then one multiply by 1/count."""
    return per_element.sum() * np.float64(1.0 / per_element.size)


def _mean_rows(per_element_rows: np.ndarray, count: int) -> np.ndarray:
    """Row-block means of an ``(s, n)`` array, same reduce order as 2-D sum."""
    return per_element_rows.sum(axis=1) * np.float64(1.0 / count)


class _BceDiscMixin(_LossKernel):
    """The BCE discriminator objective shared by ``bce`` and ``heuristic``.

    ``d_loss = mean(softplus(r) - r) + mean(softplus(f))`` (targets 1 and 0
    folded: ``x*1.0 == x`` bitwise and ``softplus(x) - x*0.0 == softplus(x)``
    for finite logits).
    """

    def d_value(self, real_logits, fake_logits) -> float:
        real_term = _mean_all(_softplus(real_logits) - real_logits)
        fake_term = _mean_all(_softplus(fake_logits))
        return float(real_term + fake_term)

    def d_grad(self, logits, n_real: int, out) -> None:
        # Per branch the tape yields grad = sigmoid(x) * c + (-c) * t with
        # c = 1/count; the fake branch's t == 0 term adds a signed zero,
        # which cannot change any downstream parameter bit.
        _sigmoid_of(logits, out)
        out[:n_real] *= np.float64(1.0 / n_real)
        n_fake = logits.shape[0] - n_real
        out[n_real:] *= np.float64(1.0 / n_fake)
        out[:n_real] += -np.float64(1.0 / n_real)

    def d_fake_value_rows(self, logits_rows: np.ndarray) -> np.ndarray:
        return _mean_rows(_softplus(logits_rows), logits_rows.shape[1])

    def d_real_value(self, real_logits: np.ndarray) -> float:
        return float(_mean_all(_softplus(real_logits) - real_logits))


class _BceLossKernel(_BceDiscMixin):
    """Original minimax objective: saturating generator term."""

    def g_value(self, fake_logits) -> float:
        # -(BCE(fake, 0)) == -(mean(softplus(f)))
        return float(-(_mean_all(_softplus(fake_logits))))

    def g_grad(self, fake_logits, out) -> None:
        # Tape: seed -> neg -> mean -> softplus VJP: grad = sigmoid(f) * (-c)
        _sigmoid_of(fake_logits, out)
        out *= -np.float64(1.0 / fake_logits.size)

    def g_value_rows(self, logits_rows: np.ndarray) -> np.ndarray:
        return -(_mean_rows(_softplus(logits_rows), logits_rows.shape[1]))


class _HeuristicLossKernel(_BceDiscMixin):
    """Non-saturating heuristic generator: ``BCE(fake, 1)``."""

    def g_value(self, fake_logits) -> float:
        return float(_mean_all(_softplus(fake_logits) - fake_logits))

    def g_grad(self, fake_logits, out) -> None:
        c = np.float64(1.0 / fake_logits.size)
        _sigmoid_of(fake_logits, out)
        out *= c
        out += -c

    def g_value_rows(self, logits_rows: np.ndarray) -> np.ndarray:
        return _mean_rows(_softplus(logits_rows) - logits_rows, logits_rows.shape[1])


class _LeastSquaresLossKernel(_LossKernel):
    """LSGAN: squared error of ``sigmoid(logits)`` against the labels."""

    @staticmethod
    def _mse_grad_through_sigmoid(p: np.ndarray, diff: np.ndarray, count: int,
                                  out: np.ndarray) -> None:
        # Tape: mean -> (diff*diff) both-parent accumulation (exact doubling)
        # -> subtract -> sigmoid VJP ((g * out) * (1 - out)).
        np.multiply(diff, np.float64(1.0 / count), out=out)
        out *= 2.0
        out *= p
        out *= 1.0 - p

    def d_value(self, real_logits, fake_logits) -> float:
        rp = np.empty_like(real_logits)
        fp = np.empty_like(fake_logits)
        _sigmoid_of(real_logits, rp)
        _sigmoid_of(fake_logits, fp)
        rd = rp - 1.0
        real_term = _mean_all(rd * rd)
        fake_term = _mean_all(fp * fp)
        return float(real_term + fake_term)

    def g_value(self, fake_logits) -> float:
        fp = np.empty_like(fake_logits)
        _sigmoid_of(fake_logits, fp)
        fd = fp - 1.0
        return float(_mean_all(fd * fd))

    def d_grad(self, logits, n_real: int, out) -> None:
        p = np.empty_like(logits)
        _sigmoid_of(logits, p)
        n_fake = logits.shape[0] - n_real
        self._mse_grad_through_sigmoid(
            p[:n_real], p[:n_real] - 1.0, n_real, out[:n_real])
        self._mse_grad_through_sigmoid(
            p[n_real:], p[n_real:] - 0.0, n_fake, out[n_real:])

    def g_grad(self, fake_logits, out) -> None:
        p = np.empty_like(fake_logits)
        _sigmoid_of(fake_logits, p)
        self._mse_grad_through_sigmoid(p, p - 1.0, fake_logits.size, out)

    def g_value_rows(self, logits_rows: np.ndarray) -> np.ndarray:
        p = np.empty_like(logits_rows)
        _sigmoid_of(logits_rows, p)
        d = p - 1.0
        return _mean_rows(d * d, logits_rows.shape[1])

    def d_fake_value_rows(self, logits_rows: np.ndarray) -> np.ndarray:
        p = np.empty_like(logits_rows)
        _sigmoid_of(logits_rows, p)
        return _mean_rows(p * p, logits_rows.shape[1])

    def d_real_value(self, real_logits: np.ndarray) -> float:
        p = np.empty_like(real_logits)
        _sigmoid_of(real_logits, p)
        d = p - 1.0
        return float(_mean_all(d * d))


_LOSS_KERNELS: dict[type, _LossKernel] = {
    BCELoss: _BceLossKernel(),
    HeuristicLoss: _HeuristicLossKernel(),
    LeastSquaresLoss: _LeastSquaresLossKernel(),
}


def loss_kernel_for(loss: GANLoss) -> _LossKernel | None:
    """Exact-type lookup: subclasses may override methods, so they fall back."""
    return _LOSS_KERNELS.get(type(loss))


# ---------------------------------------------------------------------------
# Fused train-step entry points (return None -> caller runs autograd path)
# ---------------------------------------------------------------------------


def fused_discriminator_step(discriminator, generator, loss: GANLoss,
                             optimizer, real_batch: np.ndarray,
                             rng: np.random.Generator) -> float | None:
    """One fused discriminator update; ``None`` if any piece is ineligible.

    Mirrors ``GANPair.train_discriminator_step``: draw latents, generate
    fakes (no grad), stack ``[real; fake]`` through one discriminator
    forward (row-blocking keeps bits equal to two passes), hand-derived
    backward into the arena grad slab with per-branch reductions, then the
    cache-blocked optimizer sweep.
    """
    if not _ENABLED:
        return None
    d_kernel = kernel_for(discriminator)
    g_kernel = kernel_for(generator)
    l_kernel = loss_kernel_for(loss)
    if d_kernel is None or g_kernel is None or l_kernel is None:
        return None
    if optimizer.arena is not d_kernel.arena:
        return None
    from repro.gan.sampling import sample_latent

    n = real_batch.shape[0]
    ws = d_kernel.workspace(2 * n)
    x = ws.x_stack
    x[:n] = real_batch  # assignment casts into the stack's compute dtype
    z = g_kernel.as_compute(sample_latent(n, g_kernel.in_dim, rng))
    # The generator writes its final activation straight into the stack.
    g_kernel.forward(z, final_out=x[n:])

    halves = (slice(0, n), slice(n, 2 * n))
    logits = d_kernel.forward(x, ws=ws, branches=halves)
    value = l_kernel.d_value(logits[:n], logits[n:])
    l_kernel.d_grad(logits, n, ws.grads[-1])
    d_kernel.backward(x, ws, ws.grads[-1], branches=halves)
    optimizer.step_blocked()
    return value


def fused_generator_step(generator, discriminator, loss: GANLoss,
                         optimizer, batch_size: int,
                         rng: np.random.Generator) -> float | None:
    """One fused generator update against ``discriminator`` (any adversary).

    The backward runs through the adversary *input-grads only*: autograd
    computes the adversary's weight gradients too, then throws them away
    (``adversary.zero_grad()``); the kernel computes neither and skips the
    clearing fill.  The adversary's grad-slab content differs from the
    autograd path's (stale vs zeroed) but is never read before being
    overwritten — both the fused and the tape path fully rewrite a
    network's gradients (overwrite resp. ``zero_grad``+accumulate) before
    its next optimizer step, and gradients are never serialized.
    """
    if not _ENABLED:
        return None
    g_kernel = kernel_for(generator)
    d_kernel = kernel_for(discriminator)
    l_kernel = loss_kernel_for(loss)
    if g_kernel is None or d_kernel is None or l_kernel is None:
        return None
    if optimizer.arena is not g_kernel.arena:
        return None
    from repro.gan.sampling import sample_latent

    n = batch_size
    g_ws = g_kernel.workspace(n)
    d_ws = d_kernel.workspace(n)
    if g_ws is d_ws:
        # Workspaces are shared by *signature*; two distinct networks with
        # identical recipes (impossible for the shipped Generator vs
        # Discriminator, but reachable through custom modules) would
        # clobber each other's live activations here — fall back.
        return None
    z = g_kernel.as_compute(sample_latent(n, g_kernel.in_dim, rng))
    fake = g_kernel.forward(z, ws=g_ws)
    logits = d_kernel.forward(fake, ws=d_ws)
    value = l_kernel.g_value(logits)
    l_kernel.g_grad(logits, d_ws.grads[-1])
    d_fake_grad = d_kernel.backward(fake, d_ws, d_ws.grads[-1],
                                    param_grads=False, input_grad=True)
    # dL/d fake continues straight into the generator backward (its first
    # move is the final activation's VJP, using the still-intact ``fake``).
    g_kernel.backward(z, g_ws, d_fake_grad)
    optimizer.step_blocked()
    return value


def fused_generator_value(discriminator, loss: GANLoss,
                          samples: np.ndarray) -> float | None:
    """Generator-loss of ``samples`` under ``discriminator``, no tape.

    The mixture-fitness proxy of ``Cell`` — one kernel forward plus the
    scalar loss, bit-identical to ``loss.generator_loss(disc(x)).item()``.
    ``None`` (fall back to autograd) under the usual eligibility rules.
    """
    if not _ENABLED:
        return None
    d_kernel = kernel_for(discriminator)
    l_kernel = loss_kernel_for(loss)
    if d_kernel is None or l_kernel is None:
        return None
    return l_kernel.g_value(d_kernel.forward(d_kernel.as_compute(samples)))


def fused_sample_images(generator, n: int, rng: np.random.Generator,
                        batch: int) -> np.ndarray | None:
    """Generate ``n`` images chunk by chunk through the kernel forward.

    Consumes the RNG exactly like the autograd chunk loop of
    ``repro.gan.sampling.generate_images`` (same ``sample_latent`` calls in
    the same order), writing each chunk straight into the output array.
    ``None`` (fall back) when the generator is ineligible.
    """
    if not _ENABLED:
        return None
    kernel = kernel_for(generator)
    if kernel is None:
        return None
    from repro.gan.sampling import sample_latent

    out = np.empty((n, kernel.dims[-1]), dtype=kernel.dtype)
    for lo in range(0, n, batch):
        count = min(batch, n - lo)
        z = kernel.as_compute(sample_latent(count, kernel.in_dim, rng))
        kernel.forward(z, final_out=out[lo:lo + count])
    return out


def fused_fitness_table(generators, discriminators, loss: GANLoss,
                        real_batch: np.ndarray, rng: np.random.Generator):
    """Batched all-pairs fitness; ``None`` if any network/loss is ineligible.

    Draws all ``s`` latent batches in one RNG call (stream-order-identical
    to ``s`` separate draws), stacks the fakes plus the real batch into one
    ``((s+1)*n, features)`` matrix and runs **one forward per
    discriminator**; the full ``s x s`` loss table comes from the stacked
    logits with vectorized NumPy instead of ``s**2`` Python-level loss
    calls.  Exactly equal (bitwise) to the loop — asserted by the tests.
    """
    if not _ENABLED:
        return None
    l_kernel = loss_kernel_for(loss)
    if l_kernel is None:
        return None
    g_kernels = [kernel_for(g) for g in generators]
    d_kernels = [kernel_for(d) for d in discriminators]
    if any(k is None for k in g_kernels) or any(k is None for k in d_kernels):
        return None
    latent = g_kernels[0].in_dim
    features = g_kernels[0].dims[-1]
    if any(k.in_dim != latent or k.dims[-1] != features for k in g_kernels):
        return None
    if any(k.in_dim != features or k.dims[-1] != 1 for k in d_kernels):
        return None
    if len({k.dtype for k in (*g_kernels, *d_kernels)}) != 1:
        return None  # mixed-precision neighborhoods take the autograd path

    s = len(g_kernels)
    n = real_batch.shape[0]
    # One draw for all s batches: same stream order as s separate draws.
    z_all = g_kernels[0].as_compute(rng.standard_normal((s, n, latent)))
    stack = np.empty((s * n + n, features), dtype=d_kernels[0].dtype)
    for i, gk in enumerate(g_kernels):
        gk.forward(z_all[i], final_out=stack[i * n:(i + 1) * n])
    stack[s * n:] = real_batch

    blocks = tuple(slice(i * n, (i + 1) * n) for i in range(s + 1))
    g_losses = np.empty((s, len(d_kernels)))
    d_losses = np.empty_like(g_losses)
    for j, dk in enumerate(d_kernels):
        # One wide GEMM chain per discriminator; the width-1 logit head
        # runs per row block (see ``forward``'s bit-stability note).
        logits = dk.forward(stack, branches=blocks)
        fake_rows = logits[:s * n].reshape(s, n)
        real_rows = logits[s * n:]
        g_losses[:, j] = l_kernel.g_value_rows(fake_rows)
        d_losses[:, j] = l_kernel.d_real_value(real_rows) \
            + l_kernel.d_fake_value_rows(fake_rows)
    from repro.coevolution.fitness import FitnessTable

    return FitnessTable(g_losses=g_losses, d_losses=d_losses)
