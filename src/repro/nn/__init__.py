"""A small, fast NumPy neural-network library (the PyTorch substitute).

The paper implements its GANs in PyTorch; this package provides the subset of
functionality the paper's networks need, built from scratch on NumPy:

* :mod:`repro.nn.arena` — :class:`ParameterArena`: one contiguous slab per
  network backing all parameters (and gradients), enabling single-memcpy
  genome flattening and fused optimizer steps.
* :mod:`repro.nn.autograd` — reverse-mode automatic differentiation on a
  dynamically built tape (:class:`Tensor`).
* :mod:`repro.nn.kernels` — graph-free fused train-step kernels for the
  fixed Linear+activation stacks (forward into preallocated workspaces,
  hand-derived backward straight into the arena's gradient slab), bit-
  identical to the tape and enabled by default with automatic fallback.
* :mod:`repro.nn.functional` — numerically stable composite ops
  (softplus, log-sigmoid, binary cross-entropy with logits, ...).
* :mod:`repro.nn.modules` — ``Module``/``Linear``/``Sequential`` and the
  activation layers used by Table I's MLPs.
* :mod:`repro.nn.init` — parameter initializers.
* :mod:`repro.nn.losses` — the three GAN loss formulations used by
  Lipizzaner/Mustangs (BCE, MSE/least-squares, heuristic non-saturating).
* :mod:`repro.nn.optim` — Adam (Table I), SGD and RMSprop.
* :mod:`repro.nn.serialize` — flattening parameters to/from genome vectors
  for exchange between grid cells.
"""

from repro.nn.arena import ParameterArena, arena_of, attach_arena
from repro.nn.autograd import Tensor, no_grad, tensor
from repro.nn import functional
from repro.nn import kernels
from repro.nn.kernels import (
    FusedStepKernel,
    kernel_for,
    kernels_disabled,
    kernels_enabled,
    set_kernels_enabled,
)
from repro.nn.init import (
    PARAM_DTYPE,
    kaiming_normal,
    normal_init,
    xavier_normal,
    xavier_uniform,
    zeros_init,
)
from repro.nn.modules import (
    LeakyReLU,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    activation_module,
)
from repro.nn.losses import (
    BCELoss,
    GANLoss,
    HeuristicLoss,
    LeastSquaresLoss,
    MUSTANGS_LOSSES,
    loss_by_name,
)
from repro.nn.optim import SGD, Adam, Optimizer, RMSprop, optimizer_by_name
from repro.nn.serialize import (
    count_parameters,
    load_state_dict,
    parameters_to_vector,
    state_dict,
    vector_to_parameters,
)

__all__ = [
    "ParameterArena",
    "arena_of",
    "attach_arena",
    "PARAM_DTYPE",
    "Tensor",
    "tensor",
    "no_grad",
    "functional",
    "kernels",
    "FusedStepKernel",
    "kernel_for",
    "kernels_enabled",
    "kernels_disabled",
    "set_kernels_enabled",
    "Module",
    "Linear",
    "Sequential",
    "Tanh",
    "Sigmoid",
    "ReLU",
    "LeakyReLU",
    "activation_module",
    "normal_init",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_normal",
    "zeros_init",
    "GANLoss",
    "BCELoss",
    "LeastSquaresLoss",
    "HeuristicLoss",
    "MUSTANGS_LOSSES",
    "loss_by_name",
    "Optimizer",
    "Adam",
    "SGD",
    "RMSprop",
    "optimizer_by_name",
    "parameters_to_vector",
    "vector_to_parameters",
    "state_dict",
    "load_state_dict",
    "count_parameters",
]
