"""Arena-backed parameters: one contiguous slab per network.

The hot loop of the whole system moves *flat parameter vectors*: every
iteration snapshots each network into a genome (``parameters_to_vector``),
ships it to neighbors, and writes gathered genomes back into the
sub-population networks (``vector_to_parameters`` — the paper's profiled
"update genomes" routine).  With parameters stored tensor-by-tensor those
operations are Python loops of small copies; with an arena they collapse to
**one contiguous slice copy per network**, and the optimizer update becomes
one fused vectorized sweep instead of a per-tensor loop.

:class:`ParameterArena` re-homes a module's parameters into a single
contiguous slab in the module's parameter dtype (the configured dtype
policy's compute dtype — float64 under the reference policy, float32 under
``float32``/``mixed16``): each parameter's ``.data`` becomes a reshaped view
into the slab (bit-identical values, same ``named_parameters()`` order the
genome layout already relies on).  A parallel *gradient slab* — allocated
lazily, because inference-only networks (e.g. serving ensembles) never need
it — gives ``.grad`` the same layout, which is what lets
:class:`~repro.nn.optim.Optimizer` fuse its update over the whole network.

Invariants the rest of the system depends on:

* **In-place discipline.** Arena-backed tensors must never have ``.data``
  or ``.grad`` rebound; all writes go *through* the views
  (``p.data[...] = ...``).  :mod:`repro.nn.serialize` and
  :mod:`repro.nn.optim` honor this; so does autograd's gradient
  accumulation.
* **Aliasing.** :attr:`ParameterArena.data` *is* the live parameter
  memory.  Callers that borrow it (``parameters_to_vector(alias=True)``)
  must copy before the network trains again, or hand it only to consumers
  that copy immediately (the zero-copy genome exchange path).
* **Pickling.** Arenas are deliberately *not* carried across pickling: the
  registry is keyed weakly by module identity, so an unpickled module
  (whose parameters pickled as standalone arrays) simply has no arena and
  every consumer falls back to the per-tensor path — slower, never wrong.
"""

from __future__ import annotations

import threading
import weakref

import numpy as np

__all__ = ["ParameterArena", "attach_arena", "arena_of"]

#: module -> arena; weak keys so arenas die with their networks and
#: unpickled module copies (new identities) transparently have none.
_REGISTRY: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_REGISTRY_LOCK = threading.Lock()


class ParameterArena:
    """One contiguous slab backing all parameters of one module.

    The slab adopts the parameters' own dtype (all of a module's parameters
    must share one — a mixed-dtype module is a configuration bug and fails
    loudly here).  The gradient slab always matches the parameter slab.
    """

    __slots__ = ("_data", "_grad", "_tensors", "_names", "_offsets", "_shapes",
                 "__weakref__")

    def __init__(self, module) -> None:
        named = list(module.named_parameters())
        if not named:
            raise ValueError("cannot build an arena for a module without parameters")
        total = sum(p.data.size for _, p in named)
        dtypes = {p.data.dtype for _, p in named}
        if len(dtypes) != 1:
            raise ValueError(
                f"module parameters span multiple dtypes {sorted(map(str, dtypes))}; "
                "an arena needs exactly one")
        slab = np.empty(total, dtype=dtypes.pop())
        names: list[str] = []
        offsets: list[int] = []
        shapes: list[tuple[int, ...]] = []
        tensors = []
        offset = 0
        for name, param in named:
            n = param.data.size
            view = slab[offset:offset + n].reshape(param.data.shape)
            view[...] = param.data  # adopt the initial values bit-exactly
            param.data = view
            names.append(name)
            offsets.append(offset)
            shapes.append(param.data.shape)
            tensors.append(param)
            offset += n
        self._data = slab
        self._grad: np.ndarray | None = None
        self._tensors = tensors
        self._names = tuple(names)
        self._offsets = tuple(offsets)
        self._shapes = tuple(shapes)

    # -- layout ----------------------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The live flat parameter vector (aliases every ``p.data``)."""
        return self._data

    @property
    def grad(self) -> np.ndarray | None:
        """The flat gradient vector, or ``None`` before :meth:`ensure_grads`."""
        return self._grad

    @property
    def size(self) -> int:
        return self._data.shape[0]

    @property
    def names(self) -> tuple[str, ...]:
        return self._names

    @property
    def tensors(self) -> list:
        return list(self._tensors)

    def views_of(self, flat: np.ndarray) -> list[np.ndarray]:
        """Per-parameter reshaped views of an external flat buffer.

        Used by the fused optimizers so their moment buffers expose the
        same per-parameter structure as the legacy path (state snapshots
        stay format-compatible) while living in one slab.
        """
        if flat.shape != (self.size,):
            raise ValueError(f"buffer shape {flat.shape} != ({self.size},)")
        return [flat[off:off + int(np.prod(shape, dtype=np.intp))].reshape(shape)
                for off, shape in zip(self._offsets, self._shapes)]

    # -- gradients ---------------------------------------------------------------

    def ensure_grads(self) -> np.ndarray:
        """Allocate the gradient slab and re-home every ``p.grad`` into it.

        Lazy on purpose: only networks that actually train (an optimizer is
        constructed over them) pay for the second slab.  Gradients already
        accumulated into per-tensor buffers are adopted bit-exactly.
        """
        if self._grad is None:
            grad = np.zeros(self.size, dtype=self._data.dtype)
            for tensor, view in zip(self._tensors, self.views_of(grad)):
                if tensor.grad is not None:
                    view[...] = tensor.grad
                tensor.grad = view
            self._grad = grad
        return self._grad

    def zero_grads(self) -> None:
        """Reset every gradient with one fused fill (no-op before allocation)."""
        if self._grad is not None:
            self._grad.fill(0.0)
        else:
            for tensor in self._tensors:
                tensor.zero_grad()

    # -- integrity ----------------------------------------------------------------

    def backs(self, parameters) -> bool:
        """True when ``parameters`` is exactly this arena's tensor list.

        Identity comparison, in order — the guarantee the fused optimizer
        step needs before it may treat ``data``/``grad`` as *the* parameter
        and gradient vectors.
        """
        params = list(parameters)
        return len(params) == len(self._tensors) and all(
            p is t for p, t in zip(params, self._tensors)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        grads = "with grads" if self._grad is not None else "no grads"
        return f"ParameterArena({len(self._tensors)} tensors, {self.size} params, {grads})"


def attach_arena(module) -> ParameterArena:
    """Re-home ``module``'s parameters into a fresh arena (idempotent)."""
    with _REGISTRY_LOCK:
        arena = _REGISTRY.get(module)
        if arena is None:
            arena = ParameterArena(module)
            _REGISTRY[module] = arena
    return arena


def arena_of(module) -> ParameterArena | None:
    """The arena backing ``module``, or ``None`` (then use per-tensor paths)."""
    return _REGISTRY.get(module)
