"""Per-rank transport accounting.

Every rank's :class:`~repro.mpi.endpoint.Endpoint` owns one
:class:`TransportStats` and increments it on each send and each pumped
receive, so the counters have identical semantics on every transport —
threads, forked processes and TCP sockets alike.  Message counts are exact.
Byte counts are *payload bytes*: the sizes of the NumPy buffers, byte blobs
and strings reachable from each message (via :func:`payload_nbytes`), not
serialized wire bytes — in-memory transports never serialize at all, and
using one metric everywhere keeps the backend-overhead benchmark an
apples-to-apples comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Iterable

from repro.telemetry import bus as telemetry

__all__ = [
    "TransportStats",
    "payload_nbytes",
    "merge_transport_stats",
    "transport_stats_from_telemetry",
]

#: How deep :func:`payload_nbytes` walks nested containers/dataclasses.
_MAX_DEPTH = 6


def payload_nbytes(obj: Any, _depth: int = _MAX_DEPTH) -> int:
    """Approximate payload size of one message in bytes.

    Counts NumPy buffers (``.nbytes``), byte blobs and strings, recursing
    through tuples, lists, dicts and dataclasses (genome exchange payloads
    are dataclasses of arrays).  Opaque objects count as zero — this is an
    accounting aid, not a serializer.
    """
    if _depth <= 0 or obj is None:
        return 0
    if isinstance(obj, memoryview):
        # Explicitly .nbytes, never len(): len() is the element count, so
        # a float64 view would read 8x small if it ever reached a len()
        # branch.  (The generic nbytes probe below would also catch it —
        # this branch exists so the distinction stays visible.)
        return obj.nbytes
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, int):  # numpy arrays and scalars
        return nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8", errors="replace"))
    if isinstance(obj, dict):
        return sum(payload_nbytes(v, _depth - 1) for v in obj.values())
    if isinstance(obj, (tuple, list)):
        return sum(payload_nbytes(v, _depth - 1) for v in obj)
    if is_dataclass(obj) and not isinstance(obj, type):
        return sum(
            payload_nbytes(getattr(obj, f.name), _depth - 1) for f in fields(obj)
        )
    return 0


@dataclass
class TransportStats:
    """Messages and payload bytes one rank moved through its endpoint."""

    rank: int
    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    ranks_lost: int = 0
    """Peer-loss notices this rank observed (``RANK_LOST`` frames, or the
    synthesized equivalent on in-process transports)."""
    reconnects: int = 0
    """Times this rank's hosting connection was (re-)established beyond the
    first — 1 for every rank of a respawned socket worker."""
    send_retries: int = 0
    """Transient transport operations retried through
    :mod:`repro.mpi.backoff` (connects and sends alike)."""

    def count_sent(self, payload: Any) -> None:
        self.messages_sent += 1
        nbytes = payload_nbytes(payload)
        self.bytes_sent += nbytes
        if telemetry.enabled():
            # Absorbed into the bus: the same counts, rank-tagged, so the
            # merged RunResult.telemetry carries transport traffic without
            # a second accounting path.
            telemetry.count("mpi.messages_sent", rank=self.rank)
            telemetry.count("mpi.bytes_sent", nbytes, rank=self.rank)

    def count_received(self, payload: Any) -> None:
        self.messages_received += 1
        nbytes = payload_nbytes(payload)
        self.bytes_received += nbytes
        if telemetry.enabled():
            telemetry.count("mpi.messages_received", rank=self.rank)
            telemetry.count("mpi.bytes_received", nbytes, rank=self.rank)

    def count_rank_lost(self, n: int = 1) -> None:
        self.ranks_lost += n
        if telemetry.enabled():
            telemetry.count("mpi.ranks_lost", n, rank=self.rank)

    def count_reconnect(self, n: int = 1) -> None:
        self.reconnects += n
        if telemetry.enabled():
            telemetry.count("mpi.reconnects", n, rank=self.rank)

    def count_send_retry(self, n: int = 1) -> None:
        self.send_retries += n
        if telemetry.enabled():
            telemetry.count("mpi.send_retries", n, rank=self.rank)

    def apply_carryover(self, *, reconnects: int = 0, ranks_lost: int = 0,
                        send_retries: int = 0) -> None:
        """Seed recovery counters carried across a rank's incarnations.

        A respawned or joining worker starts from fresh counters, but the
        rank's *history* — how many times its hosting connection was
        re-established, how many peer losses it lived through — must
        aggregate across incarnations, not reset.  The coordinator carries
        those totals in the START frame; the worker applies them here
        before the first message moves.
        """
        if reconnects:
            self.count_reconnect(reconnects)
        if ranks_lost:
            self.count_rank_lost(ranks_lost)
        if send_retries:
            self.count_send_retry(send_retries)

    def summary(self) -> str:
        """One line for CLI/log output."""
        line = (f"rank {self.rank}: sent {self.messages_sent} msg / "
                f"{_format_bytes(self.bytes_sent)}, received "
                f"{self.messages_received} msg / "
                f"{_format_bytes(self.bytes_received)}")
        if self.ranks_lost or self.reconnects or self.send_retries:
            line += (f", recovery: {self.ranks_lost} peer(s) lost, "
                     f"{self.reconnects} reconnect(s), "
                     f"{self.send_retries} retry(ies)")
        return line


def merge_transport_stats(stats: Iterable[TransportStats]) -> TransportStats:
    """Job-wide totals (``rank`` is set to -1 on the merged record)."""
    total = TransportStats(rank=-1)
    for record in stats:
        total.messages_sent += record.messages_sent
        total.messages_received += record.messages_received
        total.bytes_sent += record.bytes_sent
        total.bytes_received += record.bytes_received
        total.ranks_lost += record.ranks_lost
        total.reconnects += record.reconnects
        total.send_retries += record.send_retries
    return total


def transport_stats_from_telemetry(
    snapshot: "telemetry.TelemetrySnapshot",
) -> TransportStats:
    """Thin adapter: rebuild a :class:`TransportStats` view from the bus.

    The bus is the primary record when telemetry is enabled; this keeps the
    old reduction/reporting code paths working off a telemetry snapshot.
    """
    counters = snapshot.counters
    return TransportStats(
        rank=-1 if snapshot.rank is None else snapshot.rank,
        messages_sent=int(counters.get("mpi.messages_sent", 0)),
        messages_received=int(counters.get("mpi.messages_received", 0)),
        bytes_sent=int(counters.get("mpi.bytes_sent", 0)),
        bytes_received=int(counters.get("mpi.bytes_received", 0)),
        ranks_lost=int(counters.get("mpi.ranks_lost", 0)),
        reconnects=int(counters.get("mpi.reconnects", 0)),
        send_retries=int(counters.get("mpi.send_retries", 0)),
    )


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(n)} B"  # pragma: no cover - unreachable
