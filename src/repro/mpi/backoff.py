"""Bounded retry with exponential backoff and jitter for the transport layer.

This module is the **only** sanctioned home of socket retry loops in the
codebase (lint rule R9, :mod:`repro.analysis.rules`): a bare
``while True: try: sock.connect(...) except OSError: pass`` loop hides the
real failure forever and hammers the peer in lock-step with every other
retrier.  :func:`with_backoff` gives every retry site the same contract —
a bounded number of attempts, exponentially growing waits, and
*jitter* so a thundering herd of reconnecting workers spreads out instead
of synchronizing.

Jitter draws from a private :class:`random.Random` instance (never the
interpreter-global RNG — rule R2: transport timing must not perturb the
seeded training streams).
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

__all__ = ["BackoffPolicy", "with_backoff", "retry_connect", "DEFAULT_POLICY"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Shape of one bounded retry schedule."""

    attempts: int = 5
    """Total tries (first call included); 1 means no retry at all."""
    base_delay_s: float = 0.05
    """Wait before the first retry."""
    max_delay_s: float = 2.0
    """Ceiling on any single wait."""
    multiplier: float = 2.0
    """Exponential growth factor between retries."""
    jitter: float = 0.25
    """Fraction of each delay drawn uniformly at random (0 disables)."""
    deadline_s: float | None = None
    """Wall-clock budget for the whole schedule (``None`` = unbounded).
    When the budget runs out the *last underlying error* is re-raised —
    never a synthetic timeout, so the caller still sees what actually
    failed (connection refused vs. reset vs. ...)."""

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(
                f"attempts must be >= 1 (got {self.attempts}); an "
                f"attempts=0 policy would never call the operation at all")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1] (got {self.jitter})")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive when set (got {self.deadline_s})")

    def delays(self, rng: random.Random) -> Iterator[float]:
        """The ``attempts - 1`` waits of this schedule."""
        delay = self.base_delay_s
        for _ in range(max(0, self.attempts - 1)):
            jittered = delay
            if self.jitter:
                jittered *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            yield min(self.max_delay_s, max(0.0, jittered))
            delay = min(self.max_delay_s, delay * self.multiplier)


DEFAULT_POLICY = BackoffPolicy()


def _fresh_rng() -> random.Random:
    # Seeded from the monotonic clock so concurrent retriers (forked
    # workers share nothing else) de-synchronize; deliberately NOT the
    # global RNG, whose state belongs to seeded training streams.
    return random.Random(time.monotonic_ns())


def with_backoff(fn: Callable[[], Any], *,
                 policy: BackoffPolicy = DEFAULT_POLICY,
                 retryable: tuple[type[BaseException], ...] = (OSError,),
                 on_retry: Callable[[int, BaseException], None] | None = None,
                 rng: random.Random | None = None) -> Any:
    """Call ``fn`` under the policy; re-raise the last error when exhausted.

    ``on_retry(attempt, exc)`` fires before each wait — transports use it to
    bump their ``send_retries``/``reconnects`` counters so recovery work is
    visible in :class:`~repro.mpi.stats.TransportStats`.
    """
    rng = rng if rng is not None else _fresh_rng()
    delays = policy.delays(rng)
    deadline = (None if policy.deadline_s is None
                else time.monotonic() + policy.deadline_s)
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except retryable as exc:
            try:
                delay = next(delays)
            except StopIteration:
                raise exc from None
            if deadline is not None and time.monotonic() + delay > deadline:
                # Budget exhausted: surface the real failure, not a
                # synthetic timeout — the caller needs the actual errno.
                raise exc from None
            if on_retry is not None:
                on_retry(attempt, exc)
            time.sleep(delay)


def retry_connect(address: tuple[str, int], *, timeout: float,
                  policy: BackoffPolicy = DEFAULT_POLICY,
                  on_retry: Callable[[int, BaseException], None] | None = None,
                  ) -> socket.socket:
    """``socket.create_connection`` under backoff.

    Used by workers joining (or re-joining, after a respawn) a coordinator:
    a replacement worker often races the coordinator's late-accept loop, so
    its first connect can land on a queue the listener has not drained yet.
    """
    def connect() -> socket.socket:
        return socket.create_connection(address, timeout=timeout)

    return with_backoff(connect, policy=policy, on_retry=on_retry)
