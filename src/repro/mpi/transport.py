"""Transports: how ranks are hosted and how their mailboxes are realized.

:class:`Transport` is the explicit protocol the launcher drives — every
implementation hosts ``size`` ranks, runs the per-rank program on each, and
delivers one :class:`WorkerOutcome` per rank:

* :class:`ThreadTransport` — every rank is a thread in this process;
  mailboxes are ``queue.SimpleQueue`` (no pickling, objects move by
  reference).  Fast start-up and fully deterministic for tests, but compute
  shares one GIL — which is exactly what the backend ablation benchmark
  demonstrates.
* :class:`ProcessTransport` — every rank is a forked OS process; mailboxes
  are ``multiprocessing.SimpleQueue`` (OS pipes + pickle).  Gives the true
  multi-core parallelism used in all timing experiments; the fork start
  method lets children inherit the queue handles.
* :class:`~repro.mpi.socket_transport.SocketTransport` (registered lazily
  as ``"socket"``) — ranks live in ``repro worker`` processes connected
  over TCP, one coordinator routing length-prefixed pickle-5 frames.  The
  multi-node substrate; the per-rank program must be picklable.

New transports plug in through :func:`register_transport`; the launcher,
the distributed runner and the CLI all resolve names through
:func:`make_transport`, so a registered transport is immediately reachable
as an execution backend.
"""

from __future__ import annotations

import abc
import importlib
import multiprocessing
import queue
import threading
import time
import traceback
from typing import Any, Callable, Sequence

from repro.mpi.comm import Comm
from repro.mpi.constants import WORLD_CONTEXT
from repro.mpi.endpoint import SHUTDOWN, Endpoint
from repro.mpi.stats import TransportStats
from repro.telemetry import bus as telemetry

__all__ = [
    "Transport",
    "ThreadTransport",
    "ProcessTransport",
    "WorkerOutcome",
    "execute_rank",
    "make_transport",
    "register_transport",
    "available_transports",
]


class WorkerOutcome:
    """What a rank produced: a return value or a formatted traceback, plus
    the rank's transport counters and (when enabled) telemetry snapshot."""

    __slots__ = ("rank", "value", "error", "stats", "telemetry")

    def __init__(self, rank: int, value: Any = None, error: str | None = None,
                 stats: TransportStats | None = None,
                 telemetry: "telemetry.TelemetrySnapshot | None" = None):
        self.rank = rank
        self.value = value
        self.error = error
        self.stats = stats
        self.telemetry = telemetry

    @property
    def failed(self) -> bool:
        return self.error is not None


def execute_rank(rank: int, size: int, inbox, peers: dict[int, Callable[[Any], None]],
                 puts_block: bool, fn: Callable[..., Any],
                 args: Sequence[Any], *,
                 stats: TransportStats | None = None) -> WorkerOutcome:
    """Run one rank's program to completion (shared by every transport).

    Builds the rank's endpoint and WORLD communicator, runs
    ``fn(world, *args)``, and captures the outcome — value or traceback —
    together with the endpoint's transport counters.  A host that already
    accounts connection-level events (the socket worker hub counting
    reconnects and peer losses) passes its pre-seeded ``stats`` record in;
    by default a fresh one is created.
    """
    if stats is None:
        stats = TransportStats(rank)
    # Attribute this rank's telemetry (spans from the per-rank program,
    # counters from the endpoint) to its own buffer; the snapshot rides
    # back inside the outcome so the launcher merges all ranks time-aligned.
    telemetry.bind_rank(rank)
    endpoint = Endpoint(rank, inbox, peers, puts_block=puts_block, stats=stats)
    try:
        world = Comm(endpoint, WORLD_CONTEXT, range(size))
        value = fn(world, *args)
        return WorkerOutcome(rank, value=value, stats=stats,
                             telemetry=_rank_snapshot(rank))
    except BaseException:
        return WorkerOutcome(rank, error=traceback.format_exc(), stats=stats,
                             telemetry=_rank_snapshot(rank))
    finally:
        endpoint.close()
        telemetry.unbind_rank()


def _rank_snapshot(rank: int) -> "telemetry.TelemetrySnapshot | None":
    if not telemetry.enabled():
        return None
    snap = telemetry.snapshot(rank)
    return None if snap.empty else snap


class Transport(abc.ABC):
    """Protocol every rank-hosting substrate implements.

    Lifecycle: ``launch(fn, args)`` starts all ranks running
    ``fn(world, *args)``; ``collect(timeout)`` blocks for one
    :class:`WorkerOutcome` per rank (synthesizing failed outcomes for ranks
    that died without reporting); ``shutdown()`` releases every resource and
    is safe to call after an error.  ``kill_rank`` is the optional
    fault-injection hook.
    """

    name: str = "abstract"

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size

    @abc.abstractmethod
    def launch(self, fn: Callable[..., Any], args: Sequence[Any] = ()) -> None:
        """Start all ``size`` ranks running ``fn(world, *args)``."""

    @abc.abstractmethod
    def collect(self, timeout: float | None) -> list[WorkerOutcome]:
        """Wait for one outcome per rank; raises ``TimeoutError`` on expiry."""

    @abc.abstractmethod
    def shutdown(self) -> None:
        """Tear down ranks, connections and helper threads (idempotent)."""

    def kill_rank(self, rank: int) -> None:
        """Forcibly kill one rank (fault-injection tests); optional."""
        raise NotImplementedError(f"{self.name!r} transport cannot kill ranks")


class ThreadTransport(Transport):
    """Ranks as threads; in-process queues as mailboxes."""

    name = "threaded"

    def __init__(self, size: int):
        super().__init__(size)
        self.mailboxes = [queue.SimpleQueue() for _ in range(size)]
        self.results: "queue.SimpleQueue[WorkerOutcome]" = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []

    def launch(self, fn: Callable[..., Any], args: Sequence[Any] = ()) -> None:
        # In-memory queues never block on put; endpoints send directly.
        peers = {rank: mailbox.put for rank, mailbox in enumerate(self.mailboxes)}
        for rank in range(self.size):
            thread = threading.Thread(
                target=self._run_rank, args=(rank, peers, fn, args),
                name=f"mpi-rank-{rank}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _run_rank(self, rank: int, peers, fn, args) -> None:
        self.results.put(execute_rank(rank, self.size, self.mailboxes[rank],
                                      peers, False, fn, args))

    def collect(self, timeout: float | None) -> list[WorkerOutcome]:
        outcomes = []
        deadline = None if timeout is None else time.monotonic() + timeout
        for _ in range(self.size):
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            try:
                outcomes.append(self.results.get(timeout=remaining))
            except queue.Empty:
                raise TimeoutError("timed out waiting for worker results") from None
        return outcomes

    def shutdown(self) -> None:
        for mailbox in self.mailboxes:
            mailbox.put(SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=5.0)


class ProcessTransport(Transport):
    """Ranks as forked processes; multiprocessing queues as mailboxes."""

    name = "process"

    def __init__(self, size: int):
        super().__init__(size)
        self._ctx = multiprocessing.get_context("fork")
        # SimpleQueue: a plain pipe + lock; one pickling hop, no feeder
        # thread of its own (the Endpoint relay provides the async layer).
        self.mailboxes = [self._ctx.SimpleQueue() for _ in range(size)]
        self.results = self._ctx.SimpleQueue()
        self._processes: list[multiprocessing.process.BaseProcess] = []

    def launch(self, fn: Callable[..., Any], args: Sequence[Any] = ()) -> None:
        peers = {rank: mailbox.put for rank, mailbox in enumerate(self.mailboxes)}
        for rank in range(self.size):
            process = self._ctx.Process(
                target=self._run_rank, args=(rank, peers, fn, args),
                name=f"mpi-rank-{rank}", daemon=True,
            )
            self._processes.append(process)
            process.start()

    def _run_rank(self, rank: int, peers, fn, args) -> None:
        # Pipe-backed mailboxes have finite kernel buffers: a put can block
        # once a dead rank's pipe fills, so endpoints route sends through
        # non-blocking per-destination relay threads (puts_block=True).
        self.results.put(execute_rank(rank, self.size, self.mailboxes[rank],
                                      peers, True, fn, args))

    def collect(self, timeout: float | None) -> list[WorkerOutcome]:
        """Wait for one outcome per rank.

        A rank killed before posting (fault injection, OOM kill, ...) is
        detected through its exit code and synthesized as a failed outcome —
        otherwise one dead slave would hang the whole job collection.
        ``multiprocessing.SimpleQueue`` has no timeout, so the underlying
        pipe reader is polled directly.
        """
        outcomes: dict[int, WorkerOutcome] = {}
        deadline = None if timeout is None else time.monotonic() + timeout
        while len(outcomes) < self.size:
            if self.results._reader.poll(0.25):
                outcome: WorkerOutcome = self.results.get()
                outcomes[outcome.rank] = outcome
                continue
            for rank, process in enumerate(self._processes):
                if rank in outcomes or process.exitcode is None:
                    continue
                # Exited without a buffered result? Give the pipe one last
                # grace poll, then declare the rank dead.
                if self.results._reader.poll(0.2):
                    break
                outcomes[rank] = WorkerOutcome(
                    rank,
                    error=(f"process exited with code {process.exitcode} "
                           "before posting a result"),
                )
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("timed out waiting for worker results")
        return [outcomes[rank] for rank in range(self.size)]

    def shutdown(self) -> None:
        for process in self._processes:
            process.join(timeout=5.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def kill_rank(self, rank: int) -> None:
        """Forcibly kill one rank (fault-injection tests)."""
        process = self._processes[rank]
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)


# -- transport registry -------------------------------------------------------

_TRANSPORTS: dict[str, Callable[..., Transport]] = {
    "threaded": ThreadTransport,
    "process": ProcessTransport,
}

#: Built-ins resolved on first use so importing the runtime never pulls in
#: the socket stack.
_LAZY_TRANSPORTS: dict[str, str] = {
    "socket": "repro.mpi.socket_transport:SocketTransport",
}


def register_transport(name: str, factory: Callable[..., Transport], *,
                       overwrite: bool = False) -> Callable[..., Transport]:
    """Register a transport factory ``(size, **options) -> Transport``."""
    if not name or not isinstance(name, str):
        raise ValueError("transport name must be a non-empty string")
    if not overwrite and (name in _TRANSPORTS or name in _LAZY_TRANSPORTS):
        raise ValueError(f"transport {name!r} is already registered")
    _LAZY_TRANSPORTS.pop(name, None)
    _TRANSPORTS[name] = factory
    return factory


def available_transports() -> set[str]:
    """Every registered transport name."""
    return set(_TRANSPORTS) | set(_LAZY_TRANSPORTS)


def make_transport(backend: str, size: int, **options: Any) -> Transport:
    """Factory used by the launcher; ``options`` go to the constructor."""
    factory = _TRANSPORTS.get(backend)
    if factory is None and backend in _LAZY_TRANSPORTS:
        module_name, _, attr = _LAZY_TRANSPORTS[backend].partition(":")
        factory = getattr(importlib.import_module(module_name), attr)
        _TRANSPORTS[backend] = factory
        # pop, not del: two threads may race the first resolution.
        _LAZY_TRANSPORTS.pop(backend, None)
    if factory is None:
        raise ValueError(f"unknown backend {backend!r}; expected one of "
                         f"{sorted(available_transports())}")
    return factory(size, **options)
