"""Transports: how rank mailboxes are realized.

Two implementations with identical semantics:

* :class:`ThreadTransport` — every rank is a thread in this process;
  mailboxes are ``queue.SimpleQueue`` (no pickling, objects move by
  reference).  Fast start-up and fully deterministic for tests, but compute
  shares one GIL — which is exactly what the backend ablation benchmark
  demonstrates.
* :class:`ProcessTransport` — every rank is a forked OS process; mailboxes
  are ``multiprocessing.SimpleQueue`` (OS pipes + pickle).  Gives the true
  multi-core parallelism used in all timing experiments; the fork start
  method lets children inherit the queue handles.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
import time
import traceback
from typing import Any, Callable, Sequence

from repro.mpi.endpoint import SHUTDOWN

__all__ = ["ThreadTransport", "ProcessTransport", "WorkerOutcome"]


class WorkerOutcome:
    """What a rank produced: a return value or a formatted traceback."""

    __slots__ = ("rank", "value", "error")

    def __init__(self, rank: int, value: Any = None, error: str | None = None):
        self.rank = rank
        self.value = value
        self.error = error

    @property
    def failed(self) -> bool:
        return self.error is not None


class ThreadTransport:
    """Ranks as threads; in-process queues as mailboxes."""

    name = "threaded"
    #: In-memory queues never block on put; endpoints send directly.
    puts_block = False

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self.mailboxes = [queue.SimpleQueue() for _ in range(size)]
        self.results: "queue.SimpleQueue[WorkerOutcome]" = queue.SimpleQueue()
        self._threads: list[threading.Thread] = []

    def peer_putters(self) -> dict[int, Callable[[Any], None]]:
        return {rank: mailbox.put for rank, mailbox in enumerate(self.mailboxes)}

    def start(self, worker: Callable[[int], None]) -> None:
        for rank in range(self.size):
            thread = threading.Thread(
                target=self._run_worker, args=(worker, rank),
                name=f"mpi-rank-{rank}", daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _run_worker(self, worker: Callable[[int], Any], rank: int) -> None:
        try:
            value = worker(rank)
            self.results.put(WorkerOutcome(rank, value=value))
        except BaseException:
            self.results.put(WorkerOutcome(rank, error=traceback.format_exc()))

    def collect(self, timeout: float | None) -> list[WorkerOutcome]:
        outcomes = []
        deadline = None if timeout is None else time.monotonic() + timeout
        for _ in range(self.size):
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            try:
                outcomes.append(self.results.get(timeout=remaining))
            except queue.Empty:
                raise TimeoutError("timed out waiting for worker results") from None
        return outcomes

    def shutdown(self) -> None:
        for mailbox in self.mailboxes:
            mailbox.put(SHUTDOWN)
        for thread in self._threads:
            thread.join(timeout=5.0)


class ProcessTransport:
    """Ranks as forked processes; multiprocessing queues as mailboxes."""

    name = "process"

    #: Pipe-backed mailboxes have finite kernel buffers: a put can block
    #: once a dead rank's pipe fills.  Endpoints therefore route sends
    #: through non-blocking per-destination relay threads.
    puts_block = True

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("world size must be >= 1")
        self.size = size
        self._ctx = multiprocessing.get_context("fork")
        # SimpleQueue: a plain pipe + lock; one pickling hop, no feeder
        # thread of its own (the Endpoint relay provides the async layer).
        self.mailboxes = [self._ctx.SimpleQueue() for _ in range(size)]
        self.results = self._ctx.SimpleQueue()
        self._processes: list[multiprocessing.process.BaseProcess] = []

    def peer_putters(self) -> dict[int, Callable[[Any], None]]:
        return {rank: mailbox.put for rank, mailbox in enumerate(self.mailboxes)}

    def start(self, worker: Callable[[int], None]) -> None:
        for rank in range(self.size):
            process = self._ctx.Process(
                target=self._run_worker, args=(worker, rank),
                name=f"mpi-rank-{rank}", daemon=True,
            )
            self._processes.append(process)
            process.start()

    def _run_worker(self, worker: Callable[[int], Any], rank: int) -> None:
        try:
            value = worker(rank)
            self.results.put(WorkerOutcome(rank, value=value))
        except BaseException:
            self.results.put(WorkerOutcome(rank, error=traceback.format_exc()))

    def collect(self, timeout: float | None) -> list[WorkerOutcome]:
        """Wait for one outcome per rank.

        A rank killed before posting (fault injection, OOM kill, ...) is
        detected through its exit code and synthesized as a failed outcome —
        otherwise one dead slave would hang the whole job collection.
        ``multiprocessing.SimpleQueue`` has no timeout, so the underlying
        pipe reader is polled directly.
        """
        outcomes: dict[int, WorkerOutcome] = {}
        deadline = None if timeout is None else time.monotonic() + timeout
        while len(outcomes) < self.size:
            if self.results._reader.poll(0.25):
                outcome: WorkerOutcome = self.results.get()
                outcomes[outcome.rank] = outcome
                continue
            for rank, process in enumerate(self._processes):
                if rank in outcomes or process.exitcode is None:
                    continue
                # Exited without a buffered result? Give the pipe one last
                # grace poll, then declare the rank dead.
                if self.results._reader.poll(0.2):
                    break
                outcomes[rank] = WorkerOutcome(
                    rank,
                    error=(f"process exited with code {process.exitcode} "
                           "before posting a result"),
                )
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("timed out waiting for worker results")
        return [outcomes[rank] for rank in range(self.size)]

    def shutdown(self) -> None:
        for process in self._processes:
            process.join(timeout=5.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)

    def kill_rank(self, rank: int) -> None:
        """Forcibly kill one rank (fault-injection tests)."""
        process = self._processes[rank]
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)


def make_transport(backend: str, size: int):
    """Factory used by the launcher."""
    if backend == "threaded":
        return ThreadTransport(size)
    if backend == "process":
        return ProcessTransport(size)
    raise ValueError(f"unknown backend {backend!r}; expected 'threaded' or 'process'")
