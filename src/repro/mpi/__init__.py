"""Message-passing runtime with an mpi4py-style API (the MPI substitute).

The paper parallelizes Lipizzaner with MPI (mpi4py) on a cluster.  This
package provides the MPI subset the paper's implementation uses, built from
scratch:

* point-to-point ``send``/``recv``/``isend``/``irecv``/``probe``/``iprobe``
  with tags and wildcards (pickled Python objects, like mpi4py's lowercase
  methods);
* collectives: ``bcast``, ``gather``, ``allgather``, ``scatter``,
  ``reduce``, ``allreduce``, ``barrier``;
* communicator management: ``Split`` (builds the paper's LOCAL and GLOBAL
  communicators out of WORLD) and ``Create_cart`` (the Cartesian topology
  the paper suggests via ``MPI_CART_CREATE``);
* pluggable transports with identical semantics behind the
  :class:`~repro.mpi.transport.Transport` protocol: **threads** (one rank
  per thread, for fast deterministic tests), **processes** (one rank per OS
  process via ``fork``, true multi-core parallelism — the configuration
  used for all timing experiments) and **sockets** (ranks hosted by
  ``repro worker`` processes over TCP — the multi-node mode, with
  length-prefixed pickle-5 frames and out-of-band NumPy buffers).

Entry point: :func:`repro.mpi.launcher.run_mpi` — the ``mpiexec`` of this
runtime.
"""

from repro.mpi.backoff import BackoffPolicy, retry_connect, with_backoff
from repro.mpi.constants import ANY_SOURCE, ANY_TAG, MAX_USER_TAG
from repro.mpi.comm import CartComm, Comm, Status
from repro.mpi.errors import MpiError, MpiTimeoutError, MpiWorkerError
from repro.mpi.launcher import run_mpi
from repro.mpi.stats import (
    TransportStats,
    merge_transport_stats,
    transport_stats_from_telemetry,
)
from repro.mpi.transport import (
    Transport,
    available_transports,
    make_transport,
    register_transport,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX_USER_TAG",
    "BackoffPolicy",
    "retry_connect",
    "with_backoff",
    "Comm",
    "CartComm",
    "Status",
    "MpiError",
    "MpiTimeoutError",
    "MpiWorkerError",
    "run_mpi",
    "Transport",
    "TransportStats",
    "merge_transport_stats",
    "transport_stats_from_telemetry",
    "available_transports",
    "make_transport",
    "register_transport",
]
