"""Job launcher — the ``mpiexec`` of this runtime.

:func:`run_mpi` starts ``size`` ranks on the named transport (threads,
forked processes, or TCP worker processes), builds each rank's WORLD
communicator, runs the user function and returns the per-rank results in
rank order.  Failures in any rank surface as
:class:`~repro.mpi.errors.MpiWorkerError` with full tracebacks; a global
``timeout`` turns distributed deadlocks into clean
:class:`~repro.mpi.errors.MpiTimeoutError` instead of hung test suites.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.mpi.errors import MpiTimeoutError, MpiWorkerError
from repro.mpi.stats import TransportStats
from repro.mpi.transport import make_transport

__all__ = ["run_mpi", "RankResults"]


def run_mpi(size: int, fn: Callable[..., Any], args: Sequence[Any] = (),
            backend: str = "process", timeout: float | None = 300.0,
            allow_failures: bool = False,
            transport_options: dict[str, Any] | None = None) -> list[Any]:
    """Run ``fn(comm, *args)`` on every rank; return values in rank order.

    Parameters
    ----------
    size:
        World size (the paper's "number of tasks": 1 master + m*m slaves).
    fn:
        The per-rank program.  Receives the WORLD :class:`Comm` first.
        With the process backend it must be picklable-by-fork (defined at
        import time; closures are fine since fork inherits memory).  With
        the socket backend it is pickled to remote workers, so it must be a
        module-level callable and ``args`` must be picklable.
    backend:
        Any name in :func:`~repro.mpi.transport.available_transports`:
        ``"process"`` (true parallelism, used for all measurements),
        ``"threaded"`` (deterministic in-process execution for tests) or
        ``"socket"`` (TCP worker processes, the multi-node mode).
    timeout:
        Seconds to wait for all ranks; ``None`` waits forever.
    allow_failures:
        When True, failed ranks yield ``None`` in the result list instead
        of raising (their tracebacks are attached to the list as the
        ``failures`` attribute via :class:`RankResults`).  Used by the
        fault-tolerance path, where an injected crash is expected.
    transport_options:
        Extra keyword options for the transport constructor — e.g.
        ``{"hosts": "nodeA:5,nodeB:4", "bind": "0.0.0.0:5555"}`` for the
        socket transport's host-spec launch mode.
    """
    transport = make_transport(backend, size, **(transport_options or {}))
    try:
        transport.launch(fn, args)
        outcomes = transport.collect(timeout)
    except TimeoutError as exc:
        raise MpiTimeoutError(f"job did not finish within {timeout}s") from exc
    finally:
        # Covers launch-time failures too (a worker dying mid-handshake
        # must not leak spawned subprocesses or the listener socket).
        transport.shutdown()

    failures = {o.rank: o.error for o in outcomes if o.failed}
    if failures and not allow_failures:
        raise MpiWorkerError(failures)
    ordered = sorted(outcomes, key=lambda o: o.rank)
    by_rank = RankResults([None] * size)
    by_rank.failures = failures
    by_rank.transport_stats = [
        outcome.stats if outcome.stats is not None else TransportStats(outcome.rank)
        for outcome in ordered
    ]
    # Telemetry snapshots ride the same path as the transport counters:
    # one per rank (None for ranks that recorded nothing or died).
    by_rank.telemetry = [
        getattr(outcome, "telemetry", None) for outcome in ordered
    ]
    for outcome in outcomes:
        if not outcome.failed:
            by_rank[outcome.rank] = outcome.value
    return by_rank


class RankResults(list):
    """Per-rank results; ``failures`` maps failed ranks to tracebacks,
    ``transport_stats`` carries each rank's message/byte counters, and
    ``telemetry`` the per-rank bus snapshots (``None`` when disabled)."""

    failures: dict[int, str]
    transport_stats: list[TransportStats]
    telemetry: list[Any]
