"""Job launcher — the ``mpiexec`` of this runtime.

:func:`run_mpi` starts ``size`` ranks (threads or forked processes), builds
each rank's WORLD communicator, runs the user function and returns the
per-rank results in rank order.  Failures in any rank surface as
:class:`~repro.mpi.errors.MpiWorkerError` with full tracebacks; a global
``timeout`` turns distributed deadlocks into clean
:class:`~repro.mpi.errors.MpiTimeoutError` instead of hung test suites.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.mpi.comm import Comm
from repro.mpi.constants import WORLD_CONTEXT
from repro.mpi.endpoint import Endpoint
from repro.mpi.errors import MpiTimeoutError, MpiWorkerError
from repro.mpi.transport import make_transport

__all__ = ["run_mpi"]


def run_mpi(size: int, fn: Callable[..., Any], args: Sequence[Any] = (),
            backend: str = "process", timeout: float | None = 300.0,
            allow_failures: bool = False) -> list[Any]:
    """Run ``fn(comm, *args)`` on every rank; return values in rank order.

    Parameters
    ----------
    size:
        World size (the paper's "number of tasks": 1 master + m*m slaves).
    fn:
        The per-rank program.  Receives the WORLD :class:`Comm` first.
        With the process backend it must be picklable-by-fork (defined at
        import time; closures are fine since fork inherits memory).
    backend:
        ``"process"`` (true parallelism, used for all measurements) or
        ``"threaded"`` (deterministic in-process execution for tests).
    timeout:
        Seconds to wait for all ranks; ``None`` waits forever.
    allow_failures:
        When True, failed ranks yield ``None`` in the result list instead
        of raising (their tracebacks are attached to the list as the
        ``failures`` attribute via :class:`RankResults`).  Used by the
        fault-tolerance path, where an injected crash is expected.
    """
    transport = make_transport(backend, size)
    putters = transport.peer_putters()

    def worker(rank: int) -> Any:
        endpoint = Endpoint(rank, transport.mailboxes[rank], putters,
                            puts_block=transport.puts_block)
        try:
            world = Comm(endpoint, WORLD_CONTEXT, range(size))
            return fn(world, *args)
        finally:
            endpoint.close()

    transport.start(worker)
    try:
        outcomes = transport.collect(timeout)
    except TimeoutError as exc:
        transport.shutdown()
        raise MpiTimeoutError(f"job did not finish within {timeout}s") from exc
    transport.shutdown()

    failures = {o.rank: o.error for o in outcomes if o.failed}
    if failures and not allow_failures:
        raise MpiWorkerError(failures)
    by_rank = RankResults([None] * size)
    by_rank.failures = failures
    for outcome in outcomes:
        if not outcome.failed:
            by_rank[outcome.rank] = outcome.value
    return by_rank


class RankResults(list):
    """Per-rank results; ``failures`` maps failed ranks to tracebacks."""

    failures: dict[int, str]
