"""Communicators: point-to-point, collectives, ``Split`` and Cartesian grids.

A :class:`Comm` is a *view* of the rank's :class:`~repro.mpi.endpoint.Endpoint`
scoped by a context id — the standard MPI trick that keeps traffic of
different communicators from interfering.  ``Split`` derives the paper's
LOCAL (active slaves) and GLOBAL (master + slaves) communicators from WORLD.

Collectives are implemented over point-to-point messages in the reserved
negative tag space, with a per-communicator operation counter so that
back-to-back collectives never cross-match.  Algorithms are linear (root
relays); world sizes here are ≤ 26 (1 master + 25 slaves for the 5x5
ablation), where linear beats tree algorithms' extra latency hops.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

import numpy as np

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, MAX_USER_TAG
from repro.mpi.endpoint import Endpoint, Envelope
from repro.mpi.errors import MpiError

__all__ = ["Comm", "CartComm", "Status", "Request"]

# Collective kinds get distinct sub-tags so one operation's messages can
# never match another's, even at the same sequence number.
_KIND_BARRIER = 1
_KIND_BCAST = 2
_KIND_GATHER = 3
_KIND_SCATTER = 4
_KIND_ALLGATHER = 5
_KIND_REDUCE = 6
_KIND_SPLIT = 7
_KIND_ALLTOALL = 8
_N_KINDS = 9


class Status:
    """Source/tag of a received message (mpi4py-style out-parameter)."""

    __slots__ = ("source", "tag")

    def __init__(self) -> None:
        self.source = ANY_SOURCE
        self.tag = ANY_TAG

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag


class Request:
    """Handle for a non-blocking operation.

    Sends complete eagerly (mailboxes are buffered), so ``isend`` returns an
    already-completed request; ``irecv`` requests complete on ``wait``/
    ``test``.
    """

    def __init__(self, complete_fn: Callable[[float | None], Any], done: bool = False,
                 value: Any = None):
        self._complete = complete_fn
        self._done = done
        self._value = value

    def wait(self, timeout: float | None = None) -> Any:
        if not self._done:
            self._value = self._complete(timeout)
            self._done = True
        return self._value

    def test(self) -> tuple[bool, Any]:
        if self._done:
            return True, self._value
        try:
            self._value = self._complete(0.0)
        except Exception:
            return False, None
        self._done = True
        return True, self._value


class Comm:
    """One communicator as seen from one rank.

    Context ids are *tuples* forming a tree: WORLD is ``(0,)`` and the k-th
    ``Split`` of a communicator with context ``ctx`` yields
    ``ctx + (k, color)``.  Every member derives the same id with no shared
    state — crucial for the process transport, where ranks share nothing.
    """

    def __init__(self, endpoint: Endpoint, context: tuple[int, ...], group: Sequence[int]):
        """``group`` lists the *global* rank of every member, indexed by the
        communicator rank."""
        self._endpoint = endpoint
        self._context = tuple(context)
        self._group = list(group)
        if endpoint.rank not in self._group:
            raise MpiError(f"rank {endpoint.rank} not in communicator group {group}")
        self._rank = self._group.index(endpoint.rank)
        self._coll_seq = 0
        self._derive_seq = 0
        self._coll_lock = threading.Lock()

    # -- introspection -----------------------------------------------------------

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return len(self._group)

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._group)

    @property
    def context(self) -> tuple[int, ...]:
        return self._context

    def global_rank_of(self, comm_rank: int) -> int:
        """Translate a communicator rank to the job-wide rank."""
        return self._group[comm_rank]

    # -- point-to-point -------------------------------------------------------------

    def _check_user_tag(self, tag: int) -> None:
        if not 0 <= tag <= MAX_USER_TAG:
            raise ValueError(f"user tags must be in 0..{MAX_USER_TAG}, got {tag}")

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Send a pickled Python object (buffered, returns immediately)."""
        self._check_user_tag(tag)
        self._send_raw(obj, dest, tag)

    def _send_raw(self, obj: Any, dest: int, tag: int) -> None:
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} outside communicator of size {self.size}")
        envelope = Envelope(self._context, self._rank, tag, obj)
        self._endpoint.send_to(self._group[dest], envelope)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None, timeout: float | None = None) -> Any:
        """Blocking receive; wildcards allowed; optional timeout (extension)."""
        if tag != ANY_TAG:
            self._check_user_tag(tag)
        return self._recv_raw(source, tag, status, timeout)

    def _recv_raw(self, source: int, tag: int, status: Status | None = None,
                  timeout: float | None = None) -> Any:
        envelope = self._endpoint.recv(self._context, source, tag, timeout)
        if status is not None:
            status.source = envelope.source
            status.tag = envelope.tag
        return envelope.payload

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        self.send(obj, dest, tag)
        return Request(lambda _t: None, done=True)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        return Request(lambda t: self.recv(source, tag, timeout=t))

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
               status: Status | None = None) -> bool:
        """Non-blocking probe for a matching message."""
        envelope = self._endpoint.iprobe(self._context, source, tag)
        if envelope is None:
            return False
        if status is not None:
            status.source = envelope.source
            status.tag = envelope.tag
        return True

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              status: Status | None = None, timeout: float | None = None) -> None:
        """Blocking probe (implemented as recv + requeue-free peek loop)."""
        envelope = self._endpoint.recv(self._context, source, tag, timeout)
        # Requeue at the front by re-inserting; Endpoint guarantees order by
        # arrival, and a probed message must stay receivable.
        with self._endpoint._cond:
            self._endpoint._buffer.insert(0, envelope)
        if status is not None:
            status.source = envelope.source
            status.tag = envelope.tag

    # -- buffer-style API (mpi4py's uppercase methods) ---------------------------------
    # The lowercase methods pickle arbitrary objects; these operate on
    # NumPy arrays with receiver-provided, preallocated buffers — the
    # allocation-free hot path for large genome vectors.

    def Send(self, array, dest: int, tag: int = 0) -> None:
        """Send a contiguous NumPy array (buffer semantics)."""
        arr = np.ascontiguousarray(array)
        self._check_user_tag(tag)
        self._send_raw(arr, dest, tag)

    def Recv(self, buffer, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None, timeout: float | None = None) -> None:
        """Receive **into** a preallocated array (in place, no allocation).

        Shape and dtype of ``buffer`` must match the incoming array.
        """
        if tag != ANY_TAG:
            self._check_user_tag(tag)
        incoming = self._recv_raw(source, tag, status, timeout)
        incoming = np.asarray(incoming)
        if incoming.shape != buffer.shape or incoming.dtype != buffer.dtype:
            raise ValueError(
                f"buffer mismatch: got {incoming.dtype}{incoming.shape}, "
                f"buffer is {buffer.dtype}{buffer.shape}"
            )
        buffer[...] = incoming

    def Bcast(self, buffer, root: int = 0, timeout: float | None = None) -> None:
        """In-place broadcast of a NumPy array from ``root``."""
        tag = self._coll_tag(_KIND_BCAST)
        if self._rank == root:
            payload = np.ascontiguousarray(buffer)
            for dest in range(self.size):
                if dest != root:
                    self._send_raw(payload, dest, tag)
        else:
            incoming = np.asarray(self._recv_raw(root, tag, timeout=timeout))
            if incoming.shape != buffer.shape or incoming.dtype != buffer.dtype:
                raise ValueError(
                    f"buffer mismatch: got {incoming.dtype}{incoming.shape}, "
                    f"buffer is {buffer.dtype}{buffer.shape}"
                )
            buffer[...] = incoming

    def Allgather(self, sendbuf, recvbuf, timeout: float | None = None) -> None:
        """Gather one array per rank into ``recvbuf[rank] = contribution``.

        ``recvbuf`` must be preallocated with shape ``(size, *sendbuf.shape)``
        — the neighbor-exchange pattern with reused per-iteration buffers.
        """
        send = np.ascontiguousarray(sendbuf)
        expected = (self.size,) + send.shape
        if recvbuf.shape != expected:
            raise ValueError(f"recvbuf must have shape {expected}, got {recvbuf.shape}")
        gathered = self.allgather(send, timeout=timeout)
        for rank, part in enumerate(gathered):
            recvbuf[rank] = part

    # -- combined and all-to-all operations ----------------------------------------------

    def sendrecv(self, obj: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG,
                 status: Status | None = None, timeout: float | None = None) -> Any:
        """Combined send+receive (deadlock-free ring shifts)."""
        self.send(obj, dest, sendtag)
        if recvtag != ANY_TAG:
            self._check_user_tag(recvtag)
        return self._recv_raw(source, recvtag, status, timeout)

    def alltoall(self, objs: Sequence[Any], timeout: float | None = None) -> list[Any]:
        """Personalized all-to-all: send ``objs[i]`` to rank ``i``; return
        the list of items addressed to this rank, in source-rank order."""
        tag = self._coll_tag(_KIND_ALLTOALL)
        if objs is None or len(objs) != self.size:
            raise ValueError(f"alltoall needs exactly {self.size} items")
        for dest in range(self.size):
            if dest != self._rank:
                self._send_raw(objs[dest], dest, tag)
        received: list[Any] = [None] * self.size
        received[self._rank] = objs[self._rank]
        for _ in range(self.size - 1):
            status = Status()
            payload = self._recv_raw(ANY_SOURCE, tag, status, timeout)
            received[status.source] = payload
        return received

    # -- collectives ------------------------------------------------------------------

    def _coll_tag(self, kind: int) -> int:
        """Reserve a fresh negative tag for one collective operation.

        Every member calls collectives in the same order (an MPI
        requirement), so the per-communicator sequence numbers agree.
        """
        with self._coll_lock:
            seq = self._coll_seq
            self._coll_seq += 1
        return -(seq * _N_KINDS + kind) - 2  # -1 is ANY_TAG; start at -2

    def barrier(self, timeout: float | None = None) -> None:
        """All members wait until everyone arrived (gather + release)."""
        tag = self._coll_tag(_KIND_BARRIER)
        if self._rank == 0:
            for _ in range(self.size - 1):
                self._recv_raw(ANY_SOURCE, tag, timeout=timeout)
            for dest in range(1, self.size):
                self._send_raw(None, dest, tag)
        else:
            self._send_raw(None, 0, tag)
            self._recv_raw(0, tag, timeout=timeout)

    def bcast(self, obj: Any, root: int = 0, timeout: float | None = None) -> Any:
        """Broadcast from ``root``; every member returns the object."""
        tag = self._coll_tag(_KIND_BCAST)
        if self._rank == root:
            for dest in range(self.size):
                if dest != root:
                    self._send_raw(obj, dest, tag)
            return obj
        return self._recv_raw(root, tag, timeout=timeout)

    def gather(self, obj: Any, root: int = 0, timeout: float | None = None) -> list[Any] | None:
        """Gather one object per member at ``root`` (rank order); others get None."""
        tag = self._coll_tag(_KIND_GATHER)
        if self._rank == root:
            results: list[Any] = [None] * self.size
            results[root] = obj
            for _ in range(self.size - 1):
                status = Status()
                payload = self._recv_raw(ANY_SOURCE, tag, status, timeout)
                results[status.source] = payload
            return results
        self._send_raw(obj, root, tag)
        return None

    def allgather(self, obj: Any, timeout: float | None = None) -> list[Any]:
        """Gather at rank 0 then broadcast the full list to every member."""
        tag = self._coll_tag(_KIND_ALLGATHER)
        if self._rank == 0:
            results: list[Any] = [None] * self.size
            results[0] = obj
            for _ in range(self.size - 1):
                status = Status()
                payload = self._recv_raw(ANY_SOURCE, tag, status, timeout)
                results[status.source] = payload
            for dest in range(1, self.size):
                self._send_raw(results, dest, tag)
            return results
        self._send_raw(obj, 0, tag)
        return self._recv_raw(0, tag, timeout=timeout)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0,
                timeout: float | None = None) -> Any:
        """Distribute ``objs[i]`` to member ``i`` from ``root``."""
        tag = self._coll_tag(_KIND_SCATTER)
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise ValueError(f"scatter needs exactly {self.size} items at the root")
            for dest in range(self.size):
                if dest != root:
                    self._send_raw(objs[dest], dest, tag)
            return objs[root]
        return self._recv_raw(root, tag, timeout=timeout)

    def reduce(self, obj: Any, op: Callable[[Any, Any], Any], root: int = 0,
               timeout: float | None = None) -> Any | None:
        """Left-fold ``op`` over contributions in rank order at ``root``."""
        tag = self._coll_tag(_KIND_REDUCE)
        if self._rank == root:
            parts: list[Any] = [None] * self.size
            parts[root] = obj
            for _ in range(self.size - 1):
                status = Status()
                payload = self._recv_raw(ANY_SOURCE, tag, status, timeout)
                parts[status.source] = payload
            accumulator = parts[0]
            for value in parts[1:]:
                accumulator = op(accumulator, value)
            return accumulator
        self._send_raw(obj, root, tag)
        return None

    def allreduce(self, obj: Any, op: Callable[[Any, Any], Any],
                  timeout: float | None = None) -> Any:
        """Reduce at rank 0, then broadcast the result."""
        reduced = self.reduce(obj, op, root=0, timeout=timeout)
        return self.bcast(reduced, root=0, timeout=timeout)

    # -- communicator management ----------------------------------------------------------

    def Split(self, color: int | None, key: int = 0,
              timeout: float | None = None) -> "Comm | None":
        """Partition members by ``color`` into disjoint sub-communicators.

        ``color=None`` (MPI_UNDEFINED) opts out and returns ``None``.  Member
        order inside each part follows ``(key, parent rank)``.  All members
        must call this collectively.
        """
        tag = self._coll_tag(_KIND_SPLIT)
        entry = (color, key, self._rank)
        # allgather of (color, key, rank) triples over a dedicated tag.
        if self._rank == 0:
            entries: list[Any] = [None] * self.size
            entries[0] = entry
            for _ in range(self.size - 1):
                status = Status()
                payload = self._recv_raw(ANY_SOURCE, tag, status, timeout)
                entries[status.source] = payload
            for dest in range(1, self.size):
                self._send_raw(entries, dest, tag)
        else:
            self._send_raw(entry, 0, tag)
            entries = self._recv_raw(0, tag, timeout=timeout)

        # Every member advances the derivation counter identically (Split is
        # collective), so the derived context tuple agrees without any
        # shared state.
        with self._coll_lock:
            seq = self._derive_seq
            self._derive_seq += 1
        if color is None:
            return None
        members = sorted(
            ((k, r) for c, k, r in entries if c == color),
            key=lambda pair: pair,
        )
        group = [self._group[r] for _, r in members]
        return Comm(self._endpoint, self._context + (seq, color), group)

    def Dup(self, timeout: float | None = None) -> "Comm":
        """Duplicate this communicator with a fresh context."""
        duplicate = self.Split(color=0, key=self._rank, timeout=timeout)
        assert duplicate is not None
        return duplicate

    def Attach_derived(self, suffix: Sequence[int], group: Sequence[int]) -> "Comm":
        """Re-attach to an already-derived sub-communicator, non-collectively.

        Context tuples are pure functions of the derivation order (see
        :meth:`Split`), so a rank that knows which collectives its peers ran
        — e.g. a respawned worker rejoining a job whose ``Split``/``Dup``
        happened before it was born — can reconstruct the derived
        communicator from ``(derivation seq, color)`` and the member list
        without making anyone re-enter a collective.  The caller is
        responsible for passing the same suffix and group order the original
        derivation produced.
        """
        return Comm(self._endpoint, self._context + tuple(suffix), list(group))

    def Create_cart(self, dims: Sequence[int], periods: Sequence[bool] | bool = True,
                    timeout: float | None = None) -> "CartComm":
        """Create a Cartesian view of this communicator (row-major ranks)."""
        return CartComm(self, dims, periods, timeout=timeout)


class CartComm:
    """Cartesian topology over an existing communicator.

    Mirrors ``MPI_CART_CREATE`` with all-periodic-by-default dimensions (the
    training grid is a torus).  Rank ``r`` sits at row-major coordinates.
    """

    def __init__(self, comm: Comm, dims: Sequence[int], periods: Sequence[bool] | bool = True,
                 timeout: float | None = None):
        self.comm = comm.Dup(timeout=timeout)
        self.dims = tuple(int(d) for d in dims)
        if any(d < 1 for d in self.dims):
            raise ValueError("all dimensions must be >= 1")
        total = 1
        for d in self.dims:
            total *= d
        if total != comm.size:
            raise ValueError(f"dims {self.dims} need {total} ranks, communicator has {comm.size}")
        if isinstance(periods, bool):
            self.periods = tuple(periods for _ in self.dims)
        else:
            self.periods = tuple(bool(p) for p in periods)
            if len(self.periods) != len(self.dims):
                raise ValueError("periods must match dims length")

    # -- delegation --------------------------------------------------------------

    def Get_rank(self) -> int:
        return self.comm.Get_rank()

    def Get_size(self) -> int:
        return self.comm.Get_size()

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self.comm.send(obj, dest, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None, timeout: float | None = None) -> Any:
        return self.comm.recv(source, tag, status, timeout)

    def barrier(self, timeout: float | None = None) -> None:
        self.comm.barrier(timeout)

    def allgather(self, obj: Any, timeout: float | None = None) -> list[Any]:
        return self.comm.allgather(obj, timeout)

    # -- topology ------------------------------------------------------------------

    def Get_coords(self, rank: int) -> tuple[int, ...]:
        if not 0 <= rank < self.comm.size:
            raise ValueError(f"rank {rank} outside communicator")
        coords = []
        remainder = rank
        for extent in reversed(self.dims):
            coords.append(remainder % extent)
            remainder //= extent
        return tuple(reversed(coords))

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        if len(coords) != len(self.dims):
            raise ValueError("coordinate arity mismatch")
        rank = 0
        for coord, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                coord = coord % extent
            elif not 0 <= coord < extent:
                raise ValueError(f"coordinate {coord} outside non-periodic extent {extent}")
            rank = rank * extent + coord
        return rank

    def Shift(self, direction: int, displacement: int) -> tuple[int | None, int | None]:
        """Source/destination ranks for a shift along one dimension.

        Returns ``(source, dest)``; ``None`` replaces MPI_PROC_NULL at
        non-periodic boundaries.
        """
        if not 0 <= direction < len(self.dims):
            raise ValueError("direction outside topology arity")
        me = list(self.Get_coords(self.comm.rank))

        def moved(delta: int) -> int | None:
            coords = list(me)
            coords[direction] += delta
            extent = self.dims[direction]
            if self.periods[direction]:
                coords[direction] %= extent
            elif not 0 <= coords[direction] < extent:
                return None
            return self.Get_cart_rank(coords)

        return moved(-displacement), moved(+displacement)
