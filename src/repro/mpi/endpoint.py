"""Per-rank receive endpoint: mailbox pump and message matching.

Every rank owns one :class:`Endpoint`.  A background *pump thread* drains
the rank's transport mailbox into an in-memory buffer and notifies a
condition variable; ``recv``/``probe`` then match on ``(context, source,
tag)`` against that buffer.  This single-consumer design makes the endpoint
safe for multiple user threads — exactly what the paper's slaves need, where
the main thread (master communication) and the execution thread (training)
share one MPI rank.

Matching preserves MPI's non-overtaking guarantee: the buffer keeps arrival
order and matching always takes the *earliest* matching envelope.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis import lockcheck
from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.errors import MpiError, MpiTimeoutError
from repro.mpi.stats import TransportStats

__all__ = ["Envelope", "Endpoint", "SHUTDOWN"]

#: Sentinel object understood by the pump thread as "stop".
SHUTDOWN = ("__shutdown__",)


@dataclass
class Envelope:
    """One message in flight.

    ``context`` is the communicator's tree-structured tuple id (see
    :class:`repro.mpi.comm.Comm`), keeping traffic of different
    communicators from ever matching each other.
    """

    context: tuple[int, ...]
    source: int
    tag: int
    payload: Any


class _DestinationRelay:
    """Outbound lane to one peer: a deque drained by a daemon sender thread.

    ``send`` never blocks the caller.  The sender thread performs the
    (possibly blocking, for pipe-backed process mailboxes) ``put``; a rank
    whose peer died therefore keeps running — the paper's heartbeat/abort
    path depends on exactly this.  Per-destination lanes with one thread
    each preserve MPI's per-pair FIFO order.
    """

    __slots__ = ("put", "deque", "cond", "in_flight", "closing", "thread")

    def __init__(self, name: str, put: Callable[[Any], None]):
        from collections import deque

        self.put = put
        self.deque = deque()
        self.cond = threading.Condition()
        self.in_flight = False
        self.closing = False
        self.thread = threading.Thread(target=self._loop, name=name, daemon=True)
        self.thread.start()

    def send(self, item: Any) -> None:
        with self.cond:
            if self.closing:
                raise MpiError("endpoint closed; cannot send")
            self.deque.append(item)
            self.cond.notify_all()

    def _loop(self) -> None:
        while True:
            with self.cond:
                while not self.deque and not self.closing:
                    self.cond.wait()
                if not self.deque and self.closing:
                    self.cond.notify_all()
                    return
                item = self.deque.popleft()
                self.in_flight = True
            self.put(item)  # may block; never holds the lock
            with self.cond:
                self.in_flight = False
                self.cond.notify_all()

    def flush(self, deadline: float) -> bool:
        """Wait until drained or ``deadline``; True when fully flushed."""
        with self.cond:
            self.closing = True
            self.cond.notify_all()
            while self.deque or self.in_flight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self.cond.wait(timeout=min(remaining, 0.1))
            return True


class Endpoint:
    """Receive side of one rank; also routes sends to peer mailboxes."""

    def __init__(self, rank: int, inbox, peers: dict[int, Callable[[Any], None]],
                 puts_block: bool = False, flush_timeout: float = 10.0,
                 stats: TransportStats | None = None):
        """``inbox`` must expose blocking ``get()``; ``peers`` maps global
        rank to a callable enqueueing into that rank's mailbox — a queue
        put, or a framed socket write on remote transports; the endpoint
        never assumes which.

        ``puts_block=True`` (transports whose put can stall: pipe-backed
        mailboxes with finite kernel buffers, TCP sockets with full send
        windows) routes sends through per-destination relays so user
        threads never block inside a send.  In-process transports put
        directly.
        """
        self.rank = rank
        self.stats = stats if stats is not None else TransportStats(rank)
        self._inbox = inbox
        self._peers = peers
        self._puts_block = puts_block
        self._flush_timeout = flush_timeout
        self._relays: dict[int, _DestinationRelay] = {}
        self._relay_lock = threading.Lock()
        self._buffer: list[Envelope] = []
        self._cond = threading.Condition()
        self._closed = False
        self._pump = threading.Thread(
            target=self._pump_loop, name=f"mpi-pump-{rank}", daemon=True
        )
        self._pump.start()

    # -- pump ------------------------------------------------------------------

    def _pump_loop(self) -> None:
        while True:
            item = self._inbox.get()
            if item == SHUTDOWN:
                with self._cond:
                    self._closed = True
                    self._cond.notify_all()
                return
            self.stats.count_received(item.payload)
            with self._cond:
                lockcheck.check_owned(self._cond, "Endpoint._buffer")
                self._buffer.append(item)
                self._cond.notify_all()

    # -- send ------------------------------------------------------------------

    def send_to(self, global_rank: int, envelope: Envelope) -> None:
        try:
            put = self._peers[global_rank]
        except KeyError:
            raise MpiError(f"unknown destination rank {global_rank}") from None
        self.stats.count_sent(envelope.payload)
        # Whatever crosses here is read by another thread (queue consumer
        # or background relay): a live arena alias inside is a data race.
        lockcheck.check_no_alias(
            envelope, f"Endpoint.send_to(rank {global_rank})")
        if not self._puts_block:
            put(envelope)
            return
        with self._relay_lock:
            relay = self._relays.get(global_rank)
            if relay is None:
                relay = _DestinationRelay(
                    f"mpi-send-{self.rank}->{global_rank}", put
                )
                self._relays[global_rank] = relay
        relay.send(envelope)

    # -- receive ------------------------------------------------------------------

    @staticmethod
    def _matches(env: Envelope, context: tuple, source: int, tag: int) -> bool:
        if env.context != context:
            return False
        if source != ANY_SOURCE and env.source != source:
            return False
        if tag != ANY_TAG and env.tag != tag:
            return False
        return True

    def recv(self, context: tuple, source: int, tag: int,
             timeout: float | None = None) -> Envelope:
        """Block until a matching envelope arrives (earliest-first)."""
        if timeout is not None and timeout < 0:
            raise ValueError("timeout must be None or >= 0")
        end = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                for i, env in enumerate(self._buffer):
                    if self._matches(env, context, source, tag):
                        lockcheck.check_owned(self._cond, "Endpoint._buffer")
                        return self._buffer.pop(i)
                if self._closed:
                    raise MpiError(f"rank {self.rank}: endpoint closed while receiving")
                if end is None:
                    self._cond.wait()
                else:
                    remaining = end - time.monotonic()
                    if remaining <= 0:
                        raise MpiTimeoutError(
                            f"rank {self.rank}: recv(context={context}, source={source}, "
                            f"tag={tag}) timed out after {timeout}s"
                        )
                    self._cond.wait(timeout=remaining)

    def iprobe(self, context: tuple, source: int, tag: int) -> Envelope | None:
        """Non-blocking probe: return the earliest match without removing it."""
        with self._cond:
            for env in self._buffer:
                if self._matches(env, context, source, tag):
                    return env
        return None

    def pending(self, context: tuple) -> int:
        """Number of buffered envelopes for one communicator (diagnostics)."""
        with self._cond:
            return sum(1 for env in self._buffer if env.context == context)

    # -- shutdown -----------------------------------------------------------------

    def close(self) -> None:
        """Flush outbound lanes, then stop the pump thread (idempotent).

        Messages still undeliverable after the flush timeout (their
        destination died and its pipe is full) are abandoned — their daemon
        sender threads die with the process.
        """
        with self._cond:
            if self._closed:
                return
        deadline = time.monotonic() + self._flush_timeout
        with self._relay_lock:
            relays = list(self._relays.values())
        for relay in relays:
            relay.flush(deadline)
        try:
            self._peers[self.rank](SHUTDOWN)
        except (KeyError, OSError, ValueError):
            pass
        self._pump.join(timeout=5.0)
