"""Error types raised by the message-passing runtime."""

from __future__ import annotations

__all__ = ["MpiError", "MpiTimeoutError", "MpiWorkerError"]


class MpiError(RuntimeError):
    """Base class for runtime failures."""


class MpiTimeoutError(MpiError):
    """A blocking operation (or the whole job) exceeded its deadline."""


class MpiWorkerError(MpiError):
    """One or more ranks raised; carries their formatted tracebacks."""

    def __init__(self, failures: dict[int, str]):
        self.failures = dict(failures)
        summary = "; ".join(f"rank {rank}" for rank in sorted(self.failures))
        details = "\n\n".join(
            f"--- rank {rank} ---\n{tb}" for rank, tb in sorted(self.failures.items())
        )
        super().__init__(f"{len(self.failures)} rank(s) failed ({summary})\n{details}")
