"""TCP transport: multi-node runs over length-prefixed pickle-5 frames.

Topology is hub-and-spoke.  One **coordinator** (the launching process —
:class:`SocketTransport`) binds a TCP port and runs the rendezvous: ``N``
worker processes (``repro worker --connect host:port``) connect, present a
hello frame, and receive a contiguous block of ranks plus the pickled
per-rank program.  After the rendezvous barrier the coordinator becomes a
pure router — ``MSG`` frames are forwarded to the destination rank's
connection *without re-pickling* (the frame body passes through opaque) —
and a results collector.

Each worker hosts its block of ranks as threads sharing one connection:
sends to co-hosted ranks short-circuit through in-process queues, sends to
remote ranks are framed onto the socket.  A worker that dies (process kill,
network partition) surfaces as synthesized failed outcomes for its ranks,
exactly like a forked rank dying under :class:`ProcessTransport` — the
master's heartbeat layer sees the silence and degrades the run the same
way on both substrates.

Host specs (``--hosts``) are ``host:slots`` entries; ``localhost`` /
``127.0.0.1`` / ``::1`` blocks are spawned automatically as local
subprocesses, anything else is waited for (the coordinator prints the
``repro worker`` command to start on that machine).
"""

from __future__ import annotations

import hmac
import json
import os
import queue
import secrets
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Sequence

from repro.mpi import wire
from repro.mpi.backoff import retry_connect
from repro.mpi.endpoint import SHUTDOWN
from repro.mpi.errors import MpiError
from repro.mpi.stats import TransportStats
from repro.mpi.transport import Transport, WorkerOutcome, execute_rank
from repro.telemetry import bus as telemetry

__all__ = [
    "SocketTransport",
    "worker_main",
    "drain_request",
    "parse_host_spec",
    "parse_address",
]

#: Hostnames the coordinator may spawn workers for by itself.
LOCAL_HOSTNAMES = {"localhost", "127.0.0.1", "::1"}

# v2: the hello body is JSON, not pickle.
# v3: the hello carries the run's dtype policy; the coordinator rejects
#     peers whose policy differs (mixed-dtype grids would corrupt genome
#     exchange silently — a float16 vector widening into a float64 arena
#     trains a different trajectory than every other cell).
# v4: elastic membership — the hello may carry "join" (fill a vacant slot
#     mid-run) or "cmd": "drain" (control client); the coordinator
#     broadcasts epoch-stamped MEMBERSHIP frames and START carries the
#     slot's incarnation count + cumulative peer losses so TransportStats
#     aggregate across incarnations instead of resetting.
_WIRE_VERSION = 4

#: Size cap on the pre-auth hello body.  A real hello is ~150 bytes; the
#: coordinator refuses to buffer more than this for a peer that has not
#: yet presented the rendezvous token.
_HELLO_MAX_BYTES = 4096


# -- spec parsing -------------------------------------------------------------

def parse_host_spec(spec: str | Sequence[str] | Sequence[tuple[str, int]] | None,
                    size: int) -> list[tuple[str, int]]:
    """Normalize a host spec into ``[(host, slots), ...]`` summing to ``size``.

    Accepts ``"hostA:3,hostB:2"``, a list of such entries, or ready pairs;
    a bare ``"host"`` means one slot.  ``None`` places everything in one
    local worker — the laptop mode of the socket backend.
    """
    if spec is None:
        return [("127.0.0.1", size)]
    if isinstance(spec, str):
        entries: Sequence[Any] = [e for e in spec.split(",") if e.strip()]
    else:
        entries = spec
    hosts: list[tuple[str, int]] = []
    for entry in entries:
        if isinstance(entry, tuple):
            host, slots = entry
        else:
            host, slots = _split_host_entry(str(entry).strip())
        if not host or slots < 1:
            raise ValueError(f"bad host entry {entry!r}; expected 'host:slots'")
        hosts.append((host, int(slots)))
    total = sum(slots for _, slots in hosts)
    if total != size:
        raise ValueError(
            f"host spec provides {total} slot(s) but the job needs {size} "
            f"rank(s); adjust --hosts so the slots sum to the world size")
    return hosts


def _split_numeric_suffix(text: str, default: int) -> tuple[str, int]:
    """``host[:n]`` into ``(host, n)`` — the shared parse behind host-spec
    slots and address ports.  IPv6 literals use ``[addr]:n``; an
    unbracketed multi-colon string (``::1``) is treated as a bare host.

    A single-colon suffix that is not a number (``nodeB:5x``,
    ``coord:555o``) is a typo, not a hostname — it fails loudly here
    instead of surfacing minutes later as a timeout on a host or port
    that never existed.
    """
    if text.startswith("["):
        addr, bracket, tail = text[1:].partition("]")
        if not bracket:
            raise ValueError(f"unterminated IPv6 literal in {text!r}")
        suffix = tail.lstrip(":")
        if suffix and not suffix.isdigit():
            raise ValueError(
                f"bad entry {text!r}: the value after ':' must be a number")
        return addr, int(suffix) if suffix else default
    head, colon, tail = text.rpartition(":")
    if colon and tail.isdigit() and ":" not in head:
        return head, int(tail)
    if colon and text.count(":") == 1:
        raise ValueError(
            f"bad entry {text!r}: the value after ':' must be a number")
    return text, default


def _split_host_entry(entry: str) -> tuple[str, int]:
    """One ``host[:slots]`` entry; a bare host means one slot."""
    return _split_numeric_suffix(entry, default=1)


def parse_address(text: str, default_port: int = 0) -> tuple[str, int]:
    """``"host:port"`` (or bare ``"host"``) into a connectable pair;
    IPv6 literals use ``[addr]:port``."""
    return _split_numeric_suffix(text, default=default_port)


def _is_local(host: str) -> bool:
    return host in LOCAL_HOSTNAMES


# -- coordinator --------------------------------------------------------------

class _WorkerConnection:
    """Coordinator-side view of one worker: socket, ranks, IO threads."""

    def __init__(self, index: int, host: str, sock: socket.socket,
                 ranks: list[int]):
        self.index = index
        self.host = host
        self.sock = sock
        self.ranks = ranks
        #: Packed frames, forwarded (header, body) parts, or None to stop.
        self.outbound: "queue.Queue[bytes | tuple[bytes, bytes] | None]" = queue.Queue()
        self.finished: set[int] = set()
        self.dead = False
        self.lock = threading.Lock()
        self.reader: threading.Thread | None = None
        self.writer: threading.Thread | None = None


class SocketTransport(Transport):
    """Rank hosting over TCP worker processes (the multi-node substrate).

    Options
    -------
    hosts:
        Host spec (see :func:`parse_host_spec`); ``None`` spawns one local
        worker hosting every rank.
    bind:
        ``host:port`` the coordinator listens on; port 0 picks a free one.
        Bind a routable address (e.g. ``0.0.0.0:5555``) for real clusters.
    token:
        Shared secret the hello frame must present; autogenerated when not
        given or empty — auth cannot be disabled (spawned workers receive
        the token on their command line, the hint printed for remote hosts
        includes it).
    start_timeout:
        Seconds the rendezvous may take before the launch fails.
    dtype:
        Dtype policy name of the run (``float64``/``float32``/``mixed16``).
        Advertised in the hello handshake; every peer of one run must
        present the same policy or the coordinator rejects it.
    max_restarts:
        Total replacement workers the coordinator may admit over the run
        (0, the default, keeps the legacy fail-fast behavior).  A lost
        connection to a *spawned* worker respawns its subprocess; an
        externally attached worker's replacement command is printed for the
        operator.  Either way the listener keeps accepting after the
        rendezvous and the reborn worker re-runs the per-rank program — the
        master's fault-recovery layer then resumes it from checkpoint.
    """

    name = "socket"

    def __init__(self, size: int, *, hosts: Any = None, bind: str = "127.0.0.1:0",
                 start_timeout: float = 60.0, token: str | None = None,
                 python: str | None = None, dtype: str = "float64",
                 max_restarts: int = 0):
        super().__init__(size)
        self.hosts = parse_host_spec(hosts, size)
        self.bind_host, self.bind_port = parse_address(bind, default_port=0)
        self.start_timeout = start_timeout
        # Falsy (None or "") auto-generates: an empty token must harden
        # into a random one, not silently disable rendezvous auth — the
        # token is the only thing standing between a routable bind and
        # arbitrary peers feeding the run pickled frames.
        self.token = token if token else secrets.token_hex(8)
        self.python = python or sys.executable
        self.dtype = dtype
        # Contiguous rank blocks in host-spec order: worker i gets
        # ranks[offsets[i] : offsets[i] + slots[i]].
        self._blocks: list[list[int]] = []
        offset = 0
        for _, slots in self.hosts:
            self._blocks.append(list(range(offset, offset + slots)))
            offset += slots
        self._connections: list[_WorkerConnection | None] = [None] * len(self.hosts)
        self._rank_conn: dict[int, _WorkerConnection] = {}
        self._results: "queue.Queue[WorkerOutcome]" = queue.Queue()
        self._listener: socket.socket | None = None
        self._procs: list[subprocess.Popen | None] = [None] * len(self.hosts)
        self._shut_down = False
        # Serializes slot assignment between concurrent admit threads, and
        # orders registration against shutdown(): a hello that completes
        # after the rendezvous gave up must be rejected, not registered
        # into a transport whose close loops already ran.
        self._admit_lock = threading.Lock()
        #: Cap on concurrent pre-auth admissions; connections beyond it are
        #: refused outright so a flood cannot exhaust threads or FDs.
        self._admit_slots = threading.BoundedSemaphore(32)
        # -- respawn state (all guarded by _admit_lock) ---------------------
        self.max_restarts = max_restarts
        self._restarts_used = 0
        self._program: bytes | None = None
        #: Worker indexes whose connection died and whose replacement is
        #: still awaited; frames to their ranks are parked, not dropped.
        self._respawn_pending: set[int] = set()
        #: Bounded per-index buffers of MSG frames addressed to a
        #: respawn-pending worker, flushed to the replacement on re-admit.
        self._parked: dict[int, deque] = {}
        self._late_thread: threading.Thread | None = None
        # -- elastic membership state (guarded by _admit_lock) --------------
        #: Wire-level membership epoch; bumped on every MEMBERSHIP
        #: broadcast.  Static runs never broadcast, so it stays 0.
        self._epoch = 0
        #: Times each worker slot's connection was established (1 = the
        #: original rendezvous).  Carried in late START frames so a
        #: replacement or joiner seeds ``reconnects`` with its slot's full
        #: history, not just "1 if respawn".
        self._index_incarnations: dict[int, int] = {}
        #: Cumulative ranks lost over the run — a joiner's ``ranks_lost``
        #: starts here instead of at zero.
        self._ranks_lost_total = 0

    # -- public address (for hints and spawned workers) --------------------

    @property
    def address(self) -> tuple[str, int]:
        assert self._listener is not None, "launch() binds the listener first"
        return self._advertised_host, self._listener.getsockname()[1]

    @property
    def _advertised_host(self) -> str:
        if self.bind_host in ("", "0.0.0.0", "::"):
            return socket.gethostname()
        return self.bind_host

    @staticmethod
    def _format_address(host: str, port: int) -> str:
        """Connectable ``host:port`` text; IPv6 literals get brackets."""
        return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"

    def worker_command(self, index: int) -> str:
        """The shell command that attaches host ``index``'s worker.

        Printed for the operator to paste on the remote machine; assumes
        the repo is importable there (``PYTHONPATH=src`` from a checkout,
        exactly like every other documented invocation).
        """
        host, port = self.address
        # --timeout mirrors the coordinator's rendezvous window: the START
        # frame only arrives once every worker joined, so a worker waiting
        # on its default 60s would abort long multi-operator rendezvous.
        return (f"PYTHONPATH=src python -m repro worker "
                f"--connect {self._format_address(host, port)} "
                f"--slots {len(self._blocks[index])} --index {index} "
                f"--token {self.token} --timeout {self.start_timeout} "
                f"--dtype {self.dtype}")

    # -- lifecycle ----------------------------------------------------------

    def launch(self, fn: Callable[..., Any], args: Sequence[Any] = ()) -> None:
        try:
            program = wire.encode_body((fn, tuple(args)))
        except Exception as exc:
            raise MpiError(
                "the socket transport sends the per-rank program to remote "
                "workers, so fn and args must be picklable (module-level "
                f"function, no closures): {exc}") from exc
        self._program = program

        # IPv6 literals ([::1], ::) get an AF_INET6 listener; everything
        # else (hostnames, IPv4, wildcard) stays AF_INET.
        family = (socket.AF_INET6 if ":" in self.bind_host
                  else socket.AF_INET)
        listener = socket.socket(family, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host if self.bind_host else "0.0.0.0",
                       self.bind_port))
        listener.listen(len(self.hosts))
        listener.settimeout(0.2)
        self._listener = listener

        self._spawn_local_workers()
        self._rendezvous()
        # Barrier passed: every rank is connected, routing is safe — send
        # each worker its rank block and the program, then start routing.
        for conn in self._connections:
            assert conn is not None
            frame = wire.pack_frame(wire.START, conn.index, {
                "ranks": conn.ranks,
                "size": self.size,
                "program": program,
            })
            wire.write_frame(conn.sock, frame)
            self._start_io_threads(conn)
        # The listener stays open past the rendezvous: replacement workers
        # for dead connections, elastic joiners filling vacant slots, and
        # `repro drain` control clients are all admitted here for the rest
        # of the run.
        self._late_thread = threading.Thread(
            target=self._late_accept_loop,
            name="mpi-late-accept", daemon=True)
        self._late_thread.start()

    def _start_io_threads(self, conn: _WorkerConnection) -> None:
        conn.reader = threading.Thread(
            target=self._reader_loop, args=(conn,),
            name=f"mpi-router-recv-{conn.index}", daemon=True)
        conn.writer = threading.Thread(
            target=self._writer_loop, args=(conn,),
            name=f"mpi-router-send-{conn.index}", daemon=True)
        conn.reader.start()
        conn.writer.start()

    @property
    def _local_connect_host(self) -> str:
        """Where spawned localhost workers connect: loopback of the
        listener's family when it accepts one (default/wildcard binds),
        otherwise the bound address itself — binding a specific routable
        IP must not strand the local entries on an unreachable loopback."""
        if self.bind_host in ("::", "::1"):
            return "::1"
        if self.bind_host in ("", "0.0.0.0", "localhost", "127.0.0.1"):
            return "127.0.0.1"
        return self.bind_host

    def _worker_popen(self, index: int) -> subprocess.Popen:
        port = self.address[1]
        connect = self._format_address(self._local_connect_host, port)
        env = dict(os.environ)
        # Spawned workers must resolve the same modules the program pickles
        # reference (repro itself, plus e.g. a test module defining fn) —
        # hand them the parent's import path verbatim.
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in sys.path if p) or env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [self.python, "-m", "repro", "worker",
             "--connect", connect,
             "--slots", str(len(self._blocks[index])), "--index", str(index),
             "--token", self.token, "--quiet",
             "--dtype", self.dtype,
             # The START frame only arrives once *all* workers joined,
             # so a spawned worker must wait out the same rendezvous
             # window as the coordinator, not its own 60s default.
             "--timeout", str(self.start_timeout)],
            env=env,
        )

    def _spawn_local_workers(self) -> None:
        for index, (hostname, _slots) in enumerate(self.hosts):
            if not _is_local(hostname):
                print(f"[socket] waiting for worker {index} on {hostname}: "
                      f"run `{self.worker_command(index)}`", file=sys.stderr)
                continue
            self._procs[index] = self._worker_popen(index)

    def _rendezvous(self) -> None:
        # Records how long the job sat waiting for workers to connect —
        # usually the dominant "startup" cost of a multi-node run.
        with telemetry.span("socket.rendezvous"):
            self._rendezvous_loop()

    def _rendezvous_loop(self) -> None:
        deadline = time.monotonic() + self.start_timeout
        pending = set(range(len(self.hosts)))
        lock = self._admit_lock
        assert self._listener is not None
        while True:
            with lock:
                if not pending:
                    return
                missing = sorted(pending)
            if time.monotonic() > deadline:
                self.shutdown()
                raise MpiError(
                    f"rendezvous timed out: worker(s) {missing} "
                    f"never connected within {self.start_timeout}s")
            for index in missing:
                proc = self._procs[index]
                if proc is not None and proc.poll() is not None:
                    self.shutdown()
                    raise MpiError(
                        f"spawned worker {index} exited with code "
                        f"{proc.returncode} before the rendezvous")
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            # Admit off-thread: a connection that stalls mid-hello (slow
            # network, or a hostile peer on a routable bind) must not
            # serialize behind the accept loop and starve the legitimate
            # workers out of the rendezvous window.  The semaphore bounds
            # how many stalled hellos can be in flight at once — a
            # connection flood is refused instead of growing one thread
            # and one held FD per connection.
            if not self._admit_slots.acquire(blocking=False):
                sock.close()
                continue
            threading.Thread(
                target=self._admit, args=(sock, pending, lock, deadline),
                name="mpi-rdv-admit", daemon=True).start()

    def _admit(self, sock: socket.socket, pending: set[int],
               lock: threading.Lock, deadline: float) -> None:
        """Validate one hello; assign a worker slot or reject the socket.

        The hello is the only frame read before the peer is authenticated,
        so it is held to a stricter standard than the rest of the protocol:
        a few-KiB size cap, a JSON body (never pickle — unpickling
        pre-auth bytes would hand arbitrary code execution to anyone who
        can reach a routable bind), and the token compared before any
        other field is interpreted.
        """
        try:
            # Short per-hello budget: a silent or hostile connection (port
            # scanner on a routable bind) must cost seconds, not the whole
            # rendezvous window — real workers send their hello instantly.
            sock.settimeout(min(5.0, max(0.1, deadline - time.monotonic())))
            frame = wire.read_frame(sock, max_body=_HELLO_MAX_BYTES)
            sock.settimeout(None)
            if frame.kind != wire.HELLO:
                raise wire.WireError(f"expected HELLO, got kind {frame.kind}")
            try:
                hello = json.loads(frame.body)
            except (ValueError, UnicodeDecodeError) as exc:
                raise wire.WireError(
                    f"hello is not valid JSON (a worker running wire "
                    f"version 1 sends pickle hellos — upgrade it to this "
                    f"release): {exc}") from exc
            if not isinstance(hello, dict):
                raise wire.WireError("hello is not a JSON object")
            if not hmac.compare_digest(
                    str(hello.get("token") or ""), self.token):
                raise wire.WireError("bad rendezvous token")
            if hello.get("version") != _WIRE_VERSION:
                raise wire.WireError(
                    f"wire version mismatch: coordinator {_WIRE_VERSION}, "
                    f"worker {hello.get('version')}")
            peer_dtype = hello.get("dtype", "float64")
            if peer_dtype != self.dtype:
                raise wire.WireError(
                    f"dtype policy mismatch: coordinator runs "
                    f"{self.dtype!r}, worker offers {peer_dtype!r} — every "
                    f"peer of one run must share the dtype policy (start "
                    f"the worker with --dtype {self.dtype})")
            with lock:
                if self._shut_down:
                    # The rendezvous timed out (or the job failed) while
                    # this hello was in flight: shutdown()'s close loops
                    # already ran, so registering now would leak the
                    # socket and strand the worker waiting for START.
                    raise wire.WireError("coordinator is shutting down")
                index = hello.get("index")
                if index is None:  # externally started without --index
                    # Local blocks are never up for grabs: each one already
                    # has a spawned worker carrying --index, so an index-less
                    # hello is by definition an external machine — letting it
                    # claim a localhost slot would strand the spawned worker
                    # and hang the rendezvous.
                    candidates = [i for i in sorted(pending)
                                  if len(self._blocks[i]) == hello.get("slots")
                                  and not _is_local(self.hosts[i][0])]
                    if not candidates:
                        raise wire.WireError(
                            f"no pending remote worker slot takes "
                            f"{hello.get('slots')} rank(s); check --slots "
                            "against --hosts (localhost entries are spawned "
                            "automatically and cannot be claimed externally)")
                    # Prefer the host-spec entry naming this machine, so the
                    # placement report stays the *actual* rank-to-host
                    # mapping even when two same-sized workers race to
                    # connect; fall back to spec order when nothing matches.
                    reported = str(hello.get("host", "")).casefold()
                    short = reported.partition(".")[0]
                    matching = [i for i in candidates
                                if self.hosts[i][0].casefold()
                                in (reported, short)]
                    index = (matching or candidates)[0]
                index = int(index)
                if index not in pending:
                    raise wire.WireError(f"worker slot {index} is not pending")
                if hello.get("slots") != len(self._blocks[index]):
                    raise wire.WireError(
                        f"worker {index} offered {hello.get('slots')} "
                        f"slot(s), host spec expects "
                        f"{len(self._blocks[index])}")
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                conn = _WorkerConnection(index, self.hosts[index][0], sock,
                                         self._blocks[index])
                self._connections[index] = conn
                for rank in conn.ranks:
                    self._rank_conn[rank] = conn
                # Last, so the rendezvous loop only completes once the
                # connection is fully registered.
                pending.discard(index)
            if telemetry.enabled():
                telemetry.count("socket.workers_admitted")
        except Exception as exc:  # noqa: BLE001 - anything a stranger sends
            # The listener may sit on a routable address: one garbage or
            # hostile connection (non-JSON hello, wrong token, absurd
            # index) must reject that socket, never abort the job.
            if telemetry.enabled():
                telemetry.count("socket.hello_rejected")
            print(f"[socket] rejected connection: {exc}", file=sys.stderr)
            sock.close()
        finally:
            self._admit_slots.release()

    # -- routing ------------------------------------------------------------

    def _reader_loop(self, conn: _WorkerConnection) -> None:
        try:
            while True:
                frame = wire.read_frame(conn.sock)
                if frame.kind == wire.MSG:
                    self._route(frame)
                elif frame.kind == wire.RESULT:
                    outcome: WorkerOutcome = frame.payload()
                    with conn.lock:  # races _mark_dead's unfinished snapshot
                        conn.finished.add(outcome.rank)
                    self._results.put(outcome)
                # Anything else from a worker is a protocol bug; ignore.
        except Exception:  # noqa: BLE001 - a dead demux = a dead connection
            # Includes decode failures (UnpicklingError, missing classes):
            # anything that stops this reader must degrade like a lost
            # connection, not hang the job until the global timeout.
            self._mark_dead(conn)

    def _route(self, frame: wire.Frame) -> None:
        """Forward a MSG frame to its destination rank's worker, untouched —
        the received header and body pass through verbatim (no re-pickle,
        no re-pack, no concatenation) on the exchange hot path.

        Frames addressed to a dead worker are dropped — the exact semantics
        of the process transport's abandoned relay lanes, which the
        heartbeat/abort path depends on.  Exception: a worker whose
        replacement is still awaited gets its frames *parked* (bounded) and
        flushed on re-admission, so the master's control messages sent into
        the respawn gap are delivered rather than lost.
        """
        conn = self._rank_conn.get(frame.rank)
        if conn is None or conn.dead:
            if conn is not None and not self._shut_down:
                with self._admit_lock:
                    if conn.index in self._respawn_pending:
                        self._parked.setdefault(
                            conn.index, deque(maxlen=512)).append(
                                (frame.rank, frame.header, frame.body))
            return
        conn.outbound.put(frame.parts)

    def _writer_loop(self, conn: _WorkerConnection) -> None:
        while True:
            frame = conn.outbound.get()
            if frame is None:
                return
            try:
                wire.write_frame(conn.sock, frame)
            except wire.WireError:
                self._mark_dead(conn)
                return

    def _mark_dead(self, conn: _WorkerConnection) -> None:
        """Synthesize failed outcomes for a worker's unreported ranks."""
        with conn.lock:
            if conn.dead:
                return
            conn.dead = True
            # Snapshot under the lock: a RESULT the reader is processing
            # concurrently must not also get a synthesized outcome.
            unreported = [rank for rank in conn.ranks
                          if rank not in conn.finished]
            conn.finished.update(unreported)
        # Wake the writer so it exits instead of blocking on an outbound
        # queue nothing will ever feed again (routing drops dead conns).
        conn.outbound.put(None)
        proc = self._procs[conn.index]
        exit_note = ""
        if proc is not None and proc.poll() is not None:
            exit_note = f" (worker process exited with code {proc.returncode})"
        for rank in unreported:
            self._results.put(WorkerOutcome(
                rank,
                error=(f"connection to worker {conn.index} on "
                       f"{conn.host} lost before rank {rank} reported a "
                       f"result{exit_note}"),
            ))
        if self._shut_down:
            return
        if unreported:
            # Silent socket death becomes an explicit liveness broadcast:
            # surviving workers learn which peer ranks are gone (and, after
            # a respawn, back) instead of inferring it from dropped frames.
            self._broadcast_membership(sorted(unreported), "lost")
            self._maybe_respawn(conn)
        else:
            # Every hosted rank reported before the connection closed: a
            # planned departure (drain), not a death.  Peers stop sending
            # to the ranks, the slot becomes vacant — a later
            # `repro worker --join` may fill it.
            self._broadcast_membership(sorted(conn.ranks), "left")

    def _broadcast_membership(self, ranks: list[int], state: str) -> None:
        """Epoch-stamped MEMBERSHIP broadcast (generalizes RANK_LOST).

        States: ``lost`` (death), ``back`` (respawned replacement),
        ``left`` (graceful drain), ``joined`` (elastic joiner).  Each
        broadcast bumps the wire-level epoch; static runs never get here,
        so their epoch stays 0 and no extra frame ever moves.
        """
        with self._admit_lock:
            self._epoch += 1
            epoch = self._epoch
            if state == "lost":
                self._ranks_lost_total += len(ranks)
        frame = wire.pack_frame(wire.MEMBERSHIP, 0,
                                {"epoch": epoch, "ranks": list(ranks),
                                 "state": state})
        for conn in self._connections:
            if conn is None or conn.dead:
                continue
            conn.outbound.put(frame)
        if telemetry.enabled():
            telemetry.count(f"socket.rank_{state}", len(ranks))

    def _maybe_respawn(self, conn: _WorkerConnection) -> None:
        """Queue a replacement worker for a dead connection, budget allowing."""
        with self._admit_lock:
            if (self._shut_down or self.max_restarts <= 0
                    or self._restarts_used >= self.max_restarts
                    or conn.index in self._respawn_pending):
                return
            self._restarts_used += 1
            self._respawn_pending.add(conn.index)
        if telemetry.enabled():
            telemetry.count("socket.respawns")
        if _is_local(conn.host):
            self._procs[conn.index] = self._worker_popen(conn.index)
            print(f"[socket] respawned worker {conn.index} for rank(s) "
                  f"{conn.ranks}", file=sys.stderr)
        else:
            print(f"[socket] worker {conn.index} on {conn.host} lost; to "
                  f"recover, run `{self.worker_command(conn.index)}`",
                  file=sys.stderr)

    # -- late admission (replacement workers) --------------------------------

    def _late_accept_loop(self) -> None:
        assert self._listener is not None
        while not self._shut_down:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:  # listener closed by shutdown()
                return
            if not self._admit_slots.acquire(blocking=False):
                sock.close()
                continue
            threading.Thread(
                target=self._admit_late, args=(sock,),
                name="mpi-late-admit", daemon=True).start()

    def _admit_late(self, sock: socket.socket) -> None:
        """Validate a late hello and splice the peer into the run.

        Same trust boundary as the rendezvous :meth:`_admit` — size-capped
        JSON hello, token compared first.  Three admissible shapes:

        * a **replacement** worker (``--index`` naming a connection marked
          dead with a respawn pending) — PR-9 semantics;
        * an **elastic joiner** (``--join``) — admitted into any vacant
          slot (a dead or drained connection with no respawn pending)
          whose rank count matches its ``--slots``;
        * a **drain control client** (``repro drain <rank>``) — asks the
          coordinator to request a graceful drain of the worker hosting
          the rank, gets a one-frame acknowledgement, and disconnects.
        """
        try:
            sock.settimeout(5.0)
            frame = wire.read_frame(sock, max_body=_HELLO_MAX_BYTES)
            sock.settimeout(None)
            if frame.kind != wire.HELLO:
                raise wire.WireError(f"expected HELLO, got kind {frame.kind}")
            hello = json.loads(frame.body)
            if not isinstance(hello, dict):
                raise wire.WireError("hello is not a JSON object")
            if not hmac.compare_digest(
                    str(hello.get("token") or ""), self.token):
                raise wire.WireError("bad rendezvous token")
            if hello.get("version") != _WIRE_VERSION:
                raise wire.WireError(
                    f"wire version mismatch: coordinator {_WIRE_VERSION}, "
                    f"worker {hello.get('version')}")
            if hello.get("cmd") == "drain":
                self._admit_drain_request(sock, hello)
                return
            if hello.get("dtype", "float64") != self.dtype:
                raise wire.WireError(
                    f"dtype policy mismatch: coordinator runs {self.dtype!r}")
            index = hello.get("index")
            joining = bool(hello.get("join"))
            if index is None and not joining:
                raise wire.WireError(
                    "replacement workers must present --index "
                    "(or --join to fill any vacant slot)")
            with self._admit_lock:
                if self._shut_down:
                    raise wire.WireError("coordinator is shutting down")
                if index is None:
                    index = self._vacant_slot_for(hello)
                index = int(index)
                respawning = index in self._respawn_pending
                if not respawning and not joining:
                    raise wire.WireError(
                        f"worker slot {index} is not awaiting a replacement")
                if joining and not respawning and not self._slot_vacant(index):
                    raise wire.WireError(
                        f"worker slot {index} is not vacant")
                if hello.get("slots") != len(self._blocks[index]):
                    raise wire.WireError(
                        f"worker {index} offered {hello.get('slots')} "
                        f"slot(s), host spec expects "
                        f"{len(self._blocks[index])}")
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                host = (str(hello.get("host")) if joining and hello.get("host")
                        else self.hosts[index][0])
                conn = _WorkerConnection(index, host, sock,
                                         self._blocks[index])
                self._connections[index] = conn
                for rank in conn.ranks:
                    self._rank_conn[rank] = conn
                parked = self._parked.pop(index, None)
                self._respawn_pending.discard(index)
                incarnation = self._index_incarnations.get(index, 1) + 1
                self._index_incarnations[index] = incarnation
                peer_losses = self._ranks_lost_total
            assert self._program is not None
            wire.write_frame(conn.sock, wire.pack_frame(wire.START, conn.index, {
                "ranks": conn.ranks,
                "size": self.size,
                "program": self._program,
                "respawn": respawning,
                "join": joining and not respawning,
                # Incarnation carryover: the worker seeds its ranks'
                # TransportStats from the slot's full history so counters
                # aggregate across incarnations instead of resetting.
                "incarnation": incarnation,
                "peer_losses": peer_losses,
            }))
            self._start_io_threads(conn)
            if parked:
                # Control frames the master sent into the respawn gap
                # (heartbeat requests, fault notices) arrive late, not never.
                for rank, header, body in parked:
                    conn.outbound.put((header, body))
            self._broadcast_membership(
                list(conn.ranks), "back" if respawning else "joined")
            if telemetry.enabled():
                telemetry.count("socket.workers_readmitted")
            verb = "re-admitted" if respawning else "joined"
            print(f"[socket] worker {index} {verb}, hosting rank(s) "
                  f"{conn.ranks}", file=sys.stderr)
        except Exception as exc:  # noqa: BLE001 - anything a stranger sends
            if telemetry.enabled():
                telemetry.count("socket.hello_rejected")
            print(f"[socket] rejected late connection: {exc}", file=sys.stderr)
            sock.close()
        finally:
            self._admit_slots.release()

    def _slot_vacant(self, index: int) -> bool:
        """A slot whose connection is gone and no replacement is pending
        (caller holds ``_admit_lock``)."""
        conn = self._connections[index]
        return (conn is not None and conn.dead
                and index not in self._respawn_pending)

    def _vacant_slot_for(self, hello: dict) -> int:
        """The lowest vacant slot matching a joiner's rank count
        (caller holds ``_admit_lock``)."""
        candidates = [
            i for i in range(len(self._blocks))
            if self._slot_vacant(i)
            and len(self._blocks[i]) == hello.get("slots")
        ]
        if not candidates:
            raise wire.WireError(
                f"no vacant worker slot takes {hello.get('slots')} rank(s); "
                f"joiners can only fill slots whose worker died or drained")
        return candidates[0]

    def _admit_drain_request(self, sock: socket.socket, hello: dict) -> None:
        """Handle a ``repro drain`` control client (post-auth).

        Queues a DRAIN frame for the worker hosting the target rank, then
        acknowledges and closes — the control connection never becomes a
        member of the run.
        """
        rank = int(hello.get("rank", -1))
        conn = self._rank_conn.get(rank)
        if conn is None or conn.dead:
            reply = {"ok": False,
                     "error": f"rank {rank} is not hosted by a live worker"}
        else:
            conn.outbound.put(wire.pack_frame(
                wire.DRAIN, rank,
                body=json.dumps({"rank": rank}).encode("utf-8")))
            reply = {"ok": True, "rank": rank}
            if telemetry.enabled():
                telemetry.count("socket.drain_requests")
        try:
            wire.write_frame(sock, wire.pack_frame(
                wire.DRAIN, rank, body=json.dumps(reply).encode("utf-8")))
        finally:
            sock.close()

    def drain_rank(self, rank: int) -> None:
        """Ask the worker hosting ``rank`` to drain it gracefully.

        The in-process twin of the ``repro drain`` control client (tests,
        embedding applications).  The request is advisory: the rank
        checkpoints its cells, hands them to the master, and its worker
        exits 0 once every hosted rank drained.
        """
        conn = self._rank_conn.get(rank)
        if conn is None or conn.dead:
            raise ValueError(f"rank {rank} is not hosted by a live worker")
        conn.outbound.put(wire.pack_frame(
            wire.DRAIN, rank, body=json.dumps({"rank": rank}).encode("utf-8")))

    # -- collection / teardown ----------------------------------------------

    def collect(self, timeout: float | None) -> list[WorkerOutcome]:
        outcomes: dict[int, WorkerOutcome] = {}
        deadline = None if timeout is None else time.monotonic() + timeout
        while len(outcomes) < self.size:
            remaining = 0.25
            if deadline is not None:
                remaining = min(remaining, deadline - time.monotonic())
                if remaining <= 0:
                    raise TimeoutError("timed out waiting for worker results")
            try:
                outcome = self._results.get(timeout=remaining)
            except queue.Empty:
                continue
            existing = outcomes.get(outcome.rank)
            # A real result beats an outcome synthesized from a half-dead
            # connection, whatever order the two threads raced in.
            if existing is None or (existing.failed and not outcome.failed):
                outcomes[outcome.rank] = outcome
        return [outcomes[rank] for rank in range(self.size)]

    def shutdown(self) -> None:
        # The flag flips under the admit lock so an in-flight hello either
        # registers before the close loops below run, or sees the flag and
        # rejects itself — never a connection registered into a transport
        # that already tore down.
        with self._admit_lock:
            if self._shut_down:
                return
            self._shut_down = True
        for conn in self._connections:
            if conn is None or conn.dead:
                continue
            if conn.writer is not None and conn.writer.is_alive():
                # Through the writer lane so the goodbye cannot interleave
                # with an in-flight routed frame.
                conn.outbound.put(wire.pack_frame(wire.SHUTDOWN, 0))
            else:
                try:
                    wire.write_frame(conn.sock, wire.pack_frame(wire.SHUTDOWN, 0))
                except wire.WireError:
                    pass
            conn.outbound.put(None)
        if self._listener is not None:
            self._listener.close()
        for conn in self._connections:
            if conn is None:
                continue
            for thread in (conn.writer,):
                if thread is not None and thread.is_alive():
                    thread.join(timeout=2.0)
            try:
                conn.sock.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc is None:
                continue
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                # shutdown() runs in run_mpi's finally block: a worker that
                # ignores even SIGKILL (kernel-stuck) must not raise here
                # and mask the error that actually failed the run.
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    print(f"[socket] worker process {proc.pid} did not exit "
                          "after kill; abandoning it", file=sys.stderr)

    def kill_rank(self, rank: int) -> None:
        """SIGKILL the worker process hosting ``rank`` (fault injection).

        Spawned workers are killed outright; externally attached workers
        have their connection severed instead, which is indistinguishable
        from a network partition.
        """
        conn = self._rank_conn.get(rank)
        if conn is None:
            raise ValueError(f"rank {rank} is not hosted by any worker")
        proc = self._procs[conn.index]
        if proc is not None:
            proc.kill()
        else:
            conn.sock.close()


# -- worker side --------------------------------------------------------------

class _WorkerHub:
    """One worker process's shared connection: demux inboxes + framed sends."""

    def __init__(self, sock: socket.socket, ranks: list[int], size: int,
                 stats_by_rank: dict[int, TransportStats] | None = None):
        self.sock = sock
        self.ranks = set(ranks)
        self.size = size
        self.inboxes: dict[int, queue.SimpleQueue] = {
            rank: queue.SimpleQueue() for rank in ranks
        }
        #: World ranks the coordinator declared lost (RANK_LOST frames);
        #: sends to them are dropped at the hub instead of burning a frame
        #: on a route the coordinator would discard anyway.
        self.lost_ranks: set[int] = set()
        self.stats_by_rank = stats_by_rank or {}
        self.shutdown_seen = threading.Event()
        self._send_lock = threading.Lock()
        self._closed = False
        self._reader = threading.Thread(target=self._reader_loop,
                                        name="mpi-worker-hub", daemon=True)
        self._reader.start()

    def peers_for(self, rank: int) -> dict[int, Callable[[Any], None]]:
        """Putters for one hosted rank: local queues for co-hosted ranks,
        framed sends for everyone else."""
        peers: dict[int, Callable[[Any], None]] = {}
        for dest in range(self.size):
            if dest in self.ranks:
                peers[dest] = self.inboxes[dest].put
            else:
                peers[dest] = self._remote_putter(dest)
        return peers

    def _remote_putter(self, dest: int) -> Callable[[Any], None]:
        def put(envelope: Any) -> None:
            if dest in self.lost_ranks:
                return  # declared dead by the coordinator: drop, fail-fast

            # Gather-write parts: the envelope's genome vectors ride as
            # live memoryviews straight into sendmsg — the first hop makes
            # zero payload copies, like the coordinator's forward path.
            # The views stay valid for the whole write: the envelope is
            # referenced here until write_frame returns.
            parts = wire.pack_frame_parts(wire.MSG, dest, envelope)
            try:
                with self._send_lock:
                    if self._closed:
                        return  # coordinator gone: drop, like a dead pipe
                    wire.write_frame(self.sock, parts)
            except wire.WireError:
                self._on_connection_lost()
        return put

    def send_result(self, outcome: WorkerOutcome) -> None:
        parts = wire.pack_frame_parts(wire.RESULT, outcome.rank, outcome)
        try:
            with self._send_lock:
                if not self._closed:
                    wire.write_frame(self.sock, parts)
        except wire.WireError:
            self._on_connection_lost()

    def _reader_loop(self) -> None:
        try:
            while True:
                frame = wire.read_frame(self.sock)
                if frame.kind == wire.MSG:
                    inbox = self.inboxes.get(frame.rank)
                    if inbox is not None:
                        inbox.put(frame.payload())
                elif frame.kind == wire.RANK_LOST:
                    self._on_rank_lost(frame.payload())
                elif frame.kind == wire.MEMBERSHIP:
                    self._on_membership(frame.payload())
                elif frame.kind == wire.DRAIN:
                    # Coordinator requests a graceful drain of one hosted
                    # rank: flag it in the process-wide registry; the
                    # rank's slave loop winds down at the next iteration
                    # boundary.
                    from repro.parallel import elastic

                    if frame.rank in self.ranks:
                        elastic.request_drain(frame.rank)
                elif frame.kind == wire.SHUTDOWN:
                    # The coordinator may shut down while hosted ranks are
                    # still mid-run (global timeout, launch failure): close
                    # their endpoints so blocked receives fail fast instead
                    # of hanging this worker forever.  After a normal
                    # finish the sentinel just sits in a drained queue.
                    for inbox in self.inboxes.values():
                        inbox.put(SHUTDOWN)
                    self.shutdown_seen.set()
                    return
        except Exception:  # noqa: BLE001 - a dead demux = a dead connection
            # Same rationale as the coordinator's reader: decode errors
            # (e.g. a payload class defined only in the launcher's
            # __main__) must fail the hosted ranks fast, not strand them.
            self._on_connection_lost()

    def _on_rank_lost(self, notice: Any) -> None:
        """Apply one RANK_LOST broadcast: track lost peers, count them."""
        ranks = set(notice.get("ranks", ())) - self.ranks
        if notice.get("state") == "back":
            self.lost_ranks -= ranks
            return
        fresh = ranks - self.lost_ranks
        self.lost_ranks |= fresh
        if fresh:
            for stats in self.stats_by_rank.values():
                stats.count_rank_lost(len(fresh))

    def _on_membership(self, notice: Any) -> None:
        """Apply one epoch-stamped MEMBERSHIP broadcast.

        ``lost`` keeps RANK_LOST semantics (peers dropped + counted);
        ``left`` is a *planned* departure — peers stop sending to the
        ranks but the loss counter stays untouched (a drain is not a
        fault); ``back``/``joined`` put the ranks back in play.
        """
        state = notice.get("state")
        ranks = set(notice.get("ranks", ())) - self.ranks
        if state in ("back", "joined"):
            self.lost_ranks -= ranks
            return
        fresh = ranks - self.lost_ranks
        self.lost_ranks |= fresh
        if fresh and state == "lost":
            for stats in self.stats_by_rank.values():
                stats.count_rank_lost(len(fresh))

    def _on_connection_lost(self) -> None:
        """Coordinator died: close every hosted endpoint so blocked receives
        fail fast instead of hanging the worker forever."""
        with self._send_lock:
            if self._closed:
                return
            self._closed = True
        for inbox in self.inboxes.values():
            inbox.put(SHUTDOWN)
        self.shutdown_seen.set()


def _seed_transport_stats(ranks: list[int], start: dict,
                          connect_retries: int) -> dict[int, TransportStats]:
    """One pre-seeded :class:`TransportStats` per hosted rank.

    Seeds each counter with what the connection itself already knows:
    the slot's incarnation history from the coordinator (``incarnation`` =
    total connections ever made for this slot, so ``reconnects`` =
    ``incarnation - 1`` — aggregated across every respawn/join, never
    reset), the run's cumulative peer losses (``peer_losses`` — a joiner
    admitted after a death must report the loss its slot lived through),
    and this process's own connect retries.  Pre-v4 coordinators send
    neither field; the legacy ``respawn`` flag then seeds one reconnect.
    """
    incarnation = int(start.get("incarnation", 0))
    if incarnation <= 0:
        incarnation = 2 if start.get("respawn") else 1
    peer_losses = int(start.get("peer_losses", 0))
    stats_by_rank: dict[int, TransportStats] = {}
    for rank in ranks:
        stats = TransportStats(rank)
        stats.apply_carryover(reconnects=incarnation - 1,
                              ranks_lost=peer_losses,
                              send_retries=connect_retries)
        stats_by_rank[rank] = stats
    return stats_by_rank


def drain_request(connect: str, *, rank: int, token: str | None = None,
                  timeout: float = 10.0) -> int:
    """The ``repro drain <rank>`` control client.

    Connects to a live coordinator, authenticates with the rendezvous
    token, and asks it to drain ``rank`` gracefully.  Returns a process
    exit code: 0 when the drain was requested, 2 on any failure.
    """
    host, port = parse_address(connect)
    if port < 1:
        print(f"[drain] bad --connect {connect!r}: expected host:port",
              file=sys.stderr)
        return 2
    try:
        sock = socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        print(f"[drain] cannot reach coordinator {host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    try:
        sock.settimeout(timeout)
        wire.write_frame(sock, wire.pack_frame(
            wire.HELLO, rank, body=json.dumps({
                "version": _WIRE_VERSION,
                "token": token,
                "cmd": "drain",
                "rank": rank,
            }).encode("utf-8")))
        frame = wire.read_frame(sock, max_body=_HELLO_MAX_BYTES)
        if frame.kind != wire.DRAIN:
            print(f"[drain] protocol error: expected DRAIN reply, got kind "
                  f"{frame.kind}", file=sys.stderr)
            return 2
        reply = json.loads(frame.body)
        if not reply.get("ok"):
            print(f"[drain] coordinator refused: "
                  f"{reply.get('error', 'unknown error')}", file=sys.stderr)
            return 2
        print(f"[drain] rank {rank} drain requested", file=sys.stderr)
        return 0
    except (wire.WireError, OSError, ValueError) as exc:
        print(f"[drain] failed: {exc}", file=sys.stderr)
        return 2
    finally:
        try:
            sock.close()
        except OSError:
            pass


def worker_main(connect: str, *, slots: int = 1, token: str | None = None,
                index: int | None = None, timeout: float = 60.0,
                quiet: bool = False, dtype: str = "float64",
                join: bool = False) -> int:
    """Entry point of ``repro worker``: host ``slots`` ranks of a socket job.

    Connects to the coordinator at ``connect`` (``host:port``), completes
    the rendezvous handshake, runs its assigned ranks, reports their
    outcomes, and exits 0 when every hosted rank succeeded.  With
    ``join=True`` the worker asks to be admitted *mid-run* into a vacant
    slot (a dead or drained worker's rank block) — elastic membership.
    SIGTERM/SIGINT are handled as "drain, then exit 0": hosted ranks
    checkpoint and hand off their cells instead of dying mid-frame.
    """
    host, port = parse_address(connect)
    if port < 1:  # the default_port=0 sentinel: no port in the address
        print(f"[worker] bad --connect {connect!r}: expected host:port "
              "(the coordinator prints the full address to connect to)",
              file=sys.stderr)
        return 2
    # Bounded backoff with jitter: a respawned worker races the
    # coordinator's late-accept loop, and fleets of workers starting
    # together must not hammer the listener in lock-step.
    connect_retries = [0]

    def _count_retry(_attempt: int, _exc: BaseException) -> None:
        connect_retries[0] += 1

    try:
        sock = retry_connect((host, port), timeout=timeout,
                             on_retry=_count_retry)
    except OSError as exc:
        print(f"[worker] cannot reach coordinator {host}:{port}: {exc}",
              file=sys.stderr)
        return 2
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    # JSON, not pickle: the coordinator authenticates this frame before it
    # trusts the connection enough to unpickle anything from it.
    wire.write_frame(sock, wire.pack_frame(wire.HELLO, slots, body=json.dumps({
        "version": _WIRE_VERSION,
        "token": token,
        "slots": slots,
        "index": index,
        "host": socket.gethostname(),
        "pid": os.getpid(),
        "dtype": dtype,
        "join": join,
    }).encode("utf-8")))
    sock.settimeout(timeout)
    try:
        frame = wire.read_frame(sock)
    except wire.WireError as exc:
        print(f"[worker] rejected by coordinator: {exc}", file=sys.stderr)
        return 2
    sock.settimeout(None)
    if frame.kind != wire.START:
        print(f"[worker] protocol error: expected START, got {frame.kind}",
              file=sys.stderr)
        return 2
    start = frame.payload()
    ranks, size = list(start["ranks"]), int(start["size"])
    respawn = bool(start.get("respawn", False))
    joined = bool(start.get("join", False))
    fn, args = wire.decode_body(start["program"])
    if not quiet:
        mode = ("joining as" if joined
                else "re-hosting" if respawn else "hosting")
        print(f"[worker] {mode} rank(s) {ranks} of {size} "
              f"(pid {os.getpid()})", file=sys.stderr)

    # SIGTERM/SIGINT mean "drain, then exit 0", not "die mid-frame": flag
    # every hosted rank in the drain registry; the slave loops checkpoint
    # and hand off their cells at the next iteration boundary.  Only
    # installable from the main thread — embedded callers (tests driving
    # worker_main from a thread) simply keep their own handlers.
    from repro.parallel import elastic

    def _drain_on_signal(_signum, _frame):  # pragma: no cover - signal path
        for rank in ranks:
            elastic.request_drain(rank)

    try:
        import signal

        signal.signal(signal.SIGTERM, _drain_on_signal)
        signal.signal(signal.SIGINT, _drain_on_signal)
    except ValueError:
        pass

    # Pre-seed each rank's transport counters with what the connection
    # itself already knows (incarnation history, run-wide peer losses,
    # connect retries), then hand them to execute_rank — one stats record
    # per rank, connection events included.
    stats_by_rank = _seed_transport_stats(ranks, start, connect_retries[0])
    hub = _WorkerHub(sock, ranks, size, stats_by_rank)
    outcomes: dict[int, WorkerOutcome] = {}

    def run_rank(rank: int) -> None:
        # puts_block=True: socket sends can stall on a full TCP window, so
        # endpoints route them through per-destination relays.
        outcomes[rank] = execute_rank(rank, size, hub.inboxes[rank],
                                      hub.peers_for(rank), True, fn, args,
                                      stats=stats_by_rank[rank])

    threads = [threading.Thread(target=run_rank, args=(rank,),
                                name=f"mpi-rank-{rank}", daemon=True)
               for rank in ranks]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    failed = 0
    for rank in ranks:
        outcome = outcomes.get(rank) or WorkerOutcome(
            rank, error="rank thread died without an outcome")
        if outcome.failed:
            failed += 1
        hub.send_result(outcome)
    # Linger for the coordinator's shutdown frame so the socket is not torn
    # down under the last result bytes.  A fully drained worker leaves much
    # sooner: its departure is planned, the master has acknowledged the
    # hand-off, and the coordinator treats the clean disconnect as "left"
    # (the slot becomes joinable) — only a short grace period protects the
    # final RESULT bytes in flight.
    drained = all(elastic.was_drained(rank) for rank in ranks)
    linger = min(2.0, timeout) if drained else timeout
    hub.shutdown_seen.wait(timeout=linger)
    try:
        sock.close()
    except OSError:
        pass
    if not quiet:
        verb = "drained" if drained else "done"
        print(f"[worker] {verb}: {len(ranks) - failed}/{len(ranks)} rank(s) "
              "succeeded", file=sys.stderr)
    return 0 if failed == 0 else 1
