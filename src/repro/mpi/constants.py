"""Wildcards and tag-space constants of the message-passing runtime."""

from __future__ import annotations

__all__ = ["ANY_SOURCE", "ANY_TAG", "MAX_USER_TAG", "WORLD_CONTEXT"]

#: Wildcard source for ``recv``/``probe`` (matches any sender).
ANY_SOURCE: int = -1

#: Wildcard tag for ``recv``/``probe`` (matches any tag).
ANY_TAG: int = -1

#: User tags must lie in ``0..MAX_USER_TAG``; the runtime reserves the
#: negative tag space for collective operations.
MAX_USER_TAG: int = 2 ** 30

#: Context id of the WORLD communicator (root of the context tree).
WORLD_CONTEXT: tuple = (0,)
