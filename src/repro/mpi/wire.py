"""Length-prefix framing for the TCP transport.

One frame is a fixed header followed by an opaque body::

    header := magic(2) kind(1) rank(4, signed) body_len(4)
    body   := nseg(4) seg_len(8)*nseg seg*nseg

``kind`` is the protocol verb (HELLO/START/MSG/RESULT/SHUTDOWN), ``rank``
its addressing field (destination rank for MSG, reporting rank for RESULT,
unused otherwise).  Segment 0 is the pickle (protocol 5); segments 1..n are
the out-of-band buffers pickle 5 extracted — NumPy genome vectors therefore
travel as raw buffer copies instead of being embedded (and escaped) inside
the pickle stream, which is the fast path the exchange loop lives on.

The one exception is HELLO: its body is a small UTF-8 JSON object, *not* a
pickle.  HELLO arrives before the sender has proven it knows the rendezvous
token, and unpickling attacker-controlled bytes is arbitrary code
execution — the coordinator must be able to authenticate the frame without
ever touching :mod:`pickle` (see ``SocketTransport._admit``).

The body is opaque to routers: the coordinator forwards MSG frames by
passing header and body through untouched (the destination rank is already
in the header), so relayed genomes are never re-pickled or re-copied.

The *first* hop is zero-copy too: :func:`pack_frame_parts` returns the
frame as gather-write parts — header+segment-table, pickle blob, and the
raw out-of-band buffers as live memoryviews — and :func:`write_frame`
hands them to ``socket.sendmsg`` without ever concatenating, so a genome
vector goes from the sender's arena snapshot to the kernel in one hop.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.mpi.errors import MpiError

__all__ = [
    "Frame",
    "WireError",
    "pack_frame",
    "pack_frame_parts",
    "encode_body",
    "encode_body_parts",
    "body_parts_nbytes",
    "decode_body",
    "read_frame",
    "write_frame",
    "HELLO",
    "START",
    "MSG",
    "RESULT",
    "SHUTDOWN",
    "RANK_LOST",
    "MEMBERSHIP",
    "DRAIN",
]

#: Protocol magic; bump when the frame layout changes.
MAGIC = b"\xc5\x01"

# Frame kinds.
HELLO = 1      #: worker -> coordinator: join the rendezvous
START = 2      #: coordinator -> worker: rank assignment + the program
MSG = 3        #: an Envelope in flight; ``rank`` = destination world rank
RESULT = 4     #: worker -> coordinator: one rank's outcome; ``rank`` = rank
SHUTDOWN = 5   #: coordinator -> worker: drain and exit
RANK_LOST = 6  #: coordinator -> workers: peer ranks lost (or back after a
               #: respawn) — replaces silent socket death with an explicit
               #: liveness broadcast; body = {"ranks": [...], "state": ...}
MEMBERSHIP = 7  #: coordinator -> workers: epoch-stamped membership change,
                #: generalizing RANK_LOST to elastic join/leave; body =
                #: {"epoch": int, "ranks": [...], "state": "lost"|"back"|
                #: "joined"|"left"}
DRAIN = 8      #: control verb: coordinator -> worker requests the named
               #: rank drain gracefully (checkpoint + hand off its cells);
               #: also the reply kind for the ``repro drain`` control
               #: client.  ``rank`` = target world rank; body carries the
               #: acknowledgement payload on replies.

_HEADER = struct.Struct("!2sBiI")   # magic, kind, rank, body_len
_SEG_LEN = struct.Struct("!Q")

#: Refuse frames above this size — a corrupted length prefix must not
#: trigger a multi-gigabyte allocation (or an endless blocking read).
MAX_FRAME_BYTES = 1 << 30


class WireError(MpiError):
    """Malformed frame, protocol mismatch, or a connection that died."""


class Frame:
    """One decoded frame header plus its still-serialized body.

    ``header`` keeps the raw received header bytes so routers can forward
    the frame verbatim (``write_frame(sock, frame.parts)``) without
    re-packing or concatenating anything.
    """

    __slots__ = ("kind", "rank", "body", "header")

    def __init__(self, kind: int, rank: int, body: bytes,
                 header: bytes | None = None):
        self.kind = kind
        self.rank = rank
        self.body = body
        self.header = (header if header is not None
                       else _HEADER.pack(MAGIC, kind, rank, len(body)))

    def payload(self) -> Any:
        return decode_body(self.body)

    @property
    def parts(self) -> tuple[bytes, bytes]:
        """Header and body, ready for a gather-write forward."""
        return self.header, self.body

    @property
    def nbytes(self) -> int:
        return _HEADER.size + len(self.body)


def encode_body_parts(obj: Any) -> list["bytes | memoryview"]:
    """Serialize ``obj`` into gather-write body parts — **zero buffer copies**.

    Returns ``[segment_table, pickle_blob, raw_buffer, ...]`` where the raw
    out-of-band buffers are the live :class:`memoryview`\\ s pickle 5
    extracted (e.g. a genome vector's own memory).  A sender passes the
    parts straight to :func:`write_frame`, which gather-writes them with
    ``socket.sendmsg`` — the first hop never concatenates or copies the
    payload, mirroring the coordinator's zero-copy forward path.

    The parts reference the source arrays: serialize-then-send must finish
    before the caller mutates them (every transport sender does).
    """
    buffers: list[pickle.PickleBuffer] = []
    blob = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    segments: list[Any] = [blob] + [buf.raw() for buf in buffers]
    table = bytearray(struct.pack("!I", len(segments)))
    for segment in segments:
        table += _SEG_LEN.pack(segment.nbytes if isinstance(segment, memoryview)
                               else len(segment))
    return [bytes(table), *segments]


def body_parts_nbytes(parts: list) -> int:
    """Total body length of :func:`encode_body_parts` output."""
    return sum(part.nbytes if isinstance(part, memoryview) else len(part)
               for part in parts)


def encode_body(obj: Any) -> bytes:
    """Serialize ``obj`` into one contiguous frame body.

    One ``join`` over :func:`encode_body_parts` — use the parts form on the
    send hot path; this form exists for callers that need a single buffer
    (e.g. the rendezvous program blob kept for late joiners).
    """
    return b"".join(encode_body_parts(obj))


def decode_body(body: bytes) -> Any:
    """Inverse of :func:`encode_body`."""
    view = memoryview(body)
    if len(view) < 4:
        raise WireError("truncated frame body")
    (nseg,) = struct.unpack_from("!I", view, 0)
    offset = 4
    lengths = []
    for _ in range(nseg):
        if offset + _SEG_LEN.size > len(view):
            raise WireError("truncated segment table")
        lengths.append(_SEG_LEN.unpack_from(view, offset)[0])
        offset += _SEG_LEN.size
    segments: list[Any] = []
    for index, length in enumerate(lengths):
        if offset + length > len(view):
            raise WireError("truncated segment data")
        chunk = view[offset:offset + length]
        # Out-of-band buffers must come back *writable*: NumPy arrays
        # reconstructed over a read-only view would refuse in-place math,
        # silently diverging from the thread/process transports' semantics.
        segments.append(chunk if index == 0 else bytearray(chunk))
        offset += length
    if not segments:
        raise WireError("frame body with no segments")
    return pickle.loads(segments[0], buffers=segments[1:])  # repro: allow[R1] -- post-auth: frames only decoded after the size-capped JSON hello verified the shared token


def _check_body_size(body_len: int) -> None:
    if body_len > MAX_FRAME_BYTES:
        # Fail at the sender with the real cause: otherwise the oversized
        # frame is only rejected by the receiver's read_frame (surfacing
        # as a misleading lost-connection failure), and a body over the
        # u32 header field would die as a struct.error inside a relay
        # thread, silently losing the message.
        raise WireError(
            f"frame body of {body_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit; send smaller payloads "
            "(e.g. a registry dataset rendered per node instead of an "
            "in-memory dataset on the wire)")


def pack_frame(kind: int, rank: int, obj: Any = None, *,
               body: bytes | None = None) -> bytes:
    """A complete wire frame; pass ``body`` to forward without re-pickling."""
    encoded = encode_body(obj) if body is None else body
    _check_body_size(len(encoded))
    return _HEADER.pack(MAGIC, kind, rank, len(encoded)) + encoded


def pack_frame_parts(kind: int, rank: int, obj: Any) -> list["bytes | memoryview"]:
    """A complete wire frame as gather-write parts (no payload copies).

    The header and the body's segment table are merged into one small
    ``bytes`` part; the pickle blob and each out-of-band buffer follow as
    their own parts.  Send with :func:`write_frame`; the out-of-band
    buffers go from their owner's memory to the kernel in one hop.
    """
    parts = encode_body_parts(obj)
    _check_body_size(body_parts_nbytes(parts))
    header = _HEADER.pack(MAGIC, kind, rank, body_parts_nbytes(parts))
    return [header + parts[0], *parts[1:]]


#: Conservative bound under every platform's IOV_MAX (Linux: 1024); frames
#: with more gather-write segments than this are joined before sending.
_MAX_IOV = 512


def write_frame(sock: socket.socket,
                frame: "bytes | tuple[bytes, ...] | list") -> int:
    """Send one frame: packed bytes, or gather-write parts — the (header,
    body) pair of a :class:`Frame` being forwarded, or the parts list from
    :func:`pack_frame_parts` — via ``sendmsg`` with no concatenation.

    Raises :class:`WireError` when the connection is gone — callers decide
    whether that is fatal (handshake) or a droppable send (dead peer).
    """
    try:
        if isinstance(frame, (tuple, list)):
            if len(frame) > _MAX_IOV:  # pragma: no cover - degenerate payloads
                frame = [b"".join(frame)]
            # len() == nbytes here: parts are bytes or 1-D uint8 memoryviews
            # (pickle 5's raw() form).
            total = sum(len(part) for part in frame)
            sent = sock.sendmsg(frame)
            while sent < total:  # pragma: no cover - huge-frame partial write
                rest = b"".join(frame)[sent:]
                sock.sendall(rest)
                sent = total
            return total
        sock.sendall(frame)
    except (OSError, ValueError) as exc:
        raise WireError(f"connection lost while sending: {exc}") from exc
    return len(frame)


def _read_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        try:
            chunk = sock.recv(n - len(chunks))
        except (OSError, ValueError) as exc:
            raise WireError(f"connection lost while receiving: {exc}") from exc
        if not chunk:
            raise WireError("connection closed mid-frame"
                            if chunks else "connection closed")
        chunks.extend(chunk)
    return bytes(chunks)


def read_frame(sock: socket.socket,
               max_body: int = MAX_FRAME_BYTES) -> Frame:
    """Block until one full frame arrives; validates magic and size.

    ``max_body`` tightens the size limit below :data:`MAX_FRAME_BYTES` —
    pre-auth reads (the rendezvous hello) use a few-KiB cap so a stranger
    on a routable bind cannot make the coordinator buffer near-gigabyte
    bodies before the token is ever checked.
    """
    header = _read_exact(sock, _HEADER.size)
    magic, kind, rank, body_len = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r} (protocol mismatch?)")
    if body_len > max_body:
        raise WireError(f"frame of {body_len} bytes exceeds the "
                        f"{max_body}-byte limit")
    return Frame(kind, rank, _read_exact(sock, body_len), header=header)
