"""Procedural synthetic MNIST: batched anti-aliased rendering of digit strokes.

Rendering pipeline (fully vectorized, chunked to bound memory):

1. Take the digit's stroke segments (:func:`repro.data.digits.digit_segments`).
2. Apply a per-image random affine jitter (rotation, scale, shear, shift).
3. Compute, for every pixel center, the distance to the nearest segment —
   a distance field evaluated as one broadcast expression per chunk.
4. Map distance to intensity through a soft threshold at a per-image stroke
   thickness, add speckle noise, clip to ``[0, 1]``.

The result is deterministic per ``(n_samples, seed)`` and cached on disk as
an ``.npz`` so the master and every slave process can load the same dataset
without re-rendering (the paper's flow diagram has a "Download data
(optional)" step in each slave; the cache plays that role).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass

import numpy as np

from repro.data.digits import NUM_CLASSES, digit_segments

__all__ = ["SyntheticMNIST", "load_synthetic_mnist", "render_digits", "default_cache_dir"]

IMAGE_SIDE = 28
IMAGE_PIXELS = IMAGE_SIDE * IMAGE_SIDE

# Pixel-center coordinates in the unit box, precomputed once.
_coords = (np.arange(IMAGE_SIDE, dtype=np.float64) + 0.5) / IMAGE_SIDE
_PIXEL_X, _PIXEL_Y = np.meshgrid(_coords, _coords)
_PIXELS = np.stack([_PIXEL_X.ravel(), _PIXEL_Y.ravel()], axis=1)  # (784, 2)
_PIXELS.setflags(write=False)


def default_cache_dir() -> str:
    """Directory for rendered-dataset caches (override with REPRO_CACHE_DIR)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(tempfile.gettempdir(), "repro-synthetic-mnist")


def _affine_matrices(n: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Random 2x2 linear parts and translations for ``n`` images.

    Jitter ranges follow typical MNIST variability: rotation up to ~12
    degrees, scale 0.9-1.1, slight shear, shift up to ~2 pixels.
    """
    angle = rng.uniform(-0.21, 0.21, size=n)  # radians
    scale = rng.uniform(0.9, 1.1, size=n)
    shear = rng.uniform(-0.12, 0.12, size=n)
    cos, sin = np.cos(angle), np.sin(angle)
    # linear = scale * rotation @ shear-x
    lin = np.empty((n, 2, 2), dtype=np.float64)
    lin[:, 0, 0] = scale * (cos + shear * -sin)
    lin[:, 0, 1] = scale * -sin
    lin[:, 1, 0] = scale * (sin + shear * cos)
    lin[:, 1, 1] = scale * cos
    shift = rng.uniform(-0.07, 0.07, size=(n, 2))
    return lin, shift


def render_digits(labels: np.ndarray, rng: np.random.Generator,
                  noise_std: float = 0.06, chunk: int = 256) -> np.ndarray:
    """Render one 28x28 image per label; returns ``(n, 784)`` in ``[0, 1]``.

    Images are processed in chunks of at most ``chunk`` so peak memory stays
    at ``chunk * max_segments * 784`` floats regardless of dataset size.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    if labels.size and (labels.min() < 0 or labels.max() >= NUM_CLASSES):
        raise ValueError("labels must be in 0..9")
    n = labels.shape[0]
    out = np.empty((n, IMAGE_PIXELS), dtype=np.float64)
    thickness = rng.uniform(0.035, 0.055, size=n)
    softness = 0.018
    lin, shift = _affine_matrices(n, rng)
    noise = rng.normal(0.0, noise_std, size=(n, IMAGE_PIXELS))

    center = np.array([0.5, 0.5])
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        idx = np.arange(lo, hi)
        # Group the chunk by digit class so each group shares base segments.
        for digit in np.unique(labels[idx]):
            rows = idx[labels[idx] == digit]
            segs = digit_segments(int(digit))  # (S, 2, 2)
            # Affine-transform segment endpoints per image:
            # p' = (p - c) @ L^T + c + t   -> shape (R, S, 2, 2)
            rel = segs[None, :, :, :] - center
            moved = np.einsum("nij,skj->nski", lin[rows], rel[0])
            pts = moved + center + shift[rows][:, None, None, :]
            a = pts[:, :, 0, :]  # (R, S, 2) segment starts
            b = pts[:, :, 1, :]  # (R, S, 2) segment ends
            ab = b - a
            denom = np.einsum("nsi,nsi->ns", ab, ab)
            np.maximum(denom, 1e-12, out=denom)
            # Vector from every segment start to every pixel: (R, S, P, 2)
            ap = _PIXELS[None, None, :, :] - a[:, :, None, :]
            t = np.einsum("nspi,nsi->nsp", ap, ab) / denom[:, :, None]
            np.clip(t, 0.0, 1.0, out=t)
            closest = a[:, :, None, :] + t[:, :, :, None] * ab[:, :, None, :]
            diff = _PIXELS[None, None, :, :] - closest
            dist2 = np.einsum("nspi,nspi->nsp", diff, diff)
            dist = np.sqrt(dist2.min(axis=1))  # (R, P) nearest-stroke distance
            intensity = 1.0 / (1.0 + np.exp((dist - thickness[rows, None]) / softness))
            out[rows] = intensity
    out += noise
    np.clip(out, 0.0, 1.0, out=out)
    return out


@dataclass
class SyntheticMNIST:
    """A rendered dataset: ``images`` in ``[0, 1]`` of shape ``(n, 784)``,
    integer ``labels`` of shape ``(n,)``."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.ndim != 2 or self.images.shape[1] != IMAGE_PIXELS:
            raise ValueError(f"images must be (n, {IMAGE_PIXELS})")
        if self.labels.shape != (self.images.shape[0],):
            raise ValueError("labels length must match images")

    def __len__(self) -> int:
        return self.images.shape[0]

    def as_grid(self, index: int) -> np.ndarray:
        """Return image ``index`` reshaped to 28x28."""
        return self.images[index].reshape(IMAGE_SIDE, IMAGE_SIDE)


def load_synthetic_mnist(n_samples: int, seed: int = 42, *, cache: bool = True,
                         noise_std: float = 0.06) -> SyntheticMNIST:
    """Render (or load from cache) a balanced synthetic-MNIST dataset.

    Labels cycle ``0..9`` before shuffling so every class has within-one-image
    balanced representation, mirroring MNIST's near-balanced classes.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    key = f"v1-{n_samples}-{seed}-{noise_std}"
    digest = hashlib.sha1(key.encode()).hexdigest()[:16]
    path = os.path.join(default_cache_dir(), f"synmnist-{digest}.npz")
    if cache and os.path.exists(path):
        try:
            with np.load(path) as archive:
                return SyntheticMNIST(archive["images"], archive["labels"])
        except (OSError, KeyError, ValueError):
            pass  # corrupted cache: fall through and re-render

    rng = np.random.default_rng(np.random.SeedSequence([seed, n_samples]))
    labels = np.arange(n_samples, dtype=np.int64) % NUM_CLASSES
    rng.shuffle(labels)
    images = render_digits(labels, rng, noise_std=noise_std)
    if cache:
        os.makedirs(default_cache_dir(), exist_ok=True)
        tmp = f"{path}.{os.getpid()}.tmp"
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, images=images, labels=labels)
        os.replace(tmp, path)  # atomic: concurrent slaves race benignly
    return SyntheticMNIST(images, labels)
