"""Datasets and loading utilities (the MNIST substitute).

The paper evaluates on MNIST (70,000 28x28 grayscale handwritten digits).
This environment has no network access, so :mod:`repro.data.synthetic`
provides a procedural *synthetic MNIST*: stroke-rendered digits 0-9 with
random affine jitter, noise and thickness variation.  The training pipeline
(784-dim flattened images in ``[-1, 1]``, batch size 100, ten balanced
classes/modes) is identical to the paper's, which is what the cellular GAN
training exercises.

:mod:`repro.data.mnist_idx` additionally reads/writes the original IDX file
format, so real MNIST files can be dropped in when available.
"""

from repro.data.dataset import ArrayDataset, DataLoader, train_test_split
from repro.data.synthetic import SyntheticMNIST, load_synthetic_mnist
from repro.data.mnist_idx import read_idx_file, read_idx_images, read_idx_labels, write_idx_file
from repro.data.transforms import flatten_images, to_tanh_range, from_tanh_range

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "SyntheticMNIST",
    "load_synthetic_mnist",
    "read_idx_file",
    "read_idx_images",
    "read_idx_labels",
    "write_idx_file",
    "flatten_images",
    "to_tanh_range",
    "from_tanh_range",
]
