"""Image-range transforms.

Table I's generators end in ``tanh``, so training images must live in
``[-1, 1]``; the renderer and the IDX loader both produce ``[0, 1]``.
These helpers convert between the two ranges (and are exact inverses,
which the property tests assert).
"""

from __future__ import annotations

import numpy as np

__all__ = ["to_tanh_range", "from_tanh_range", "flatten_images"]


def to_tanh_range(images: np.ndarray) -> np.ndarray:
    """Map ``[0, 1]`` pixel intensities to the generator's ``[-1, 1]`` range."""
    return images * 2.0 - 1.0


def from_tanh_range(images: np.ndarray) -> np.ndarray:
    """Map generator output in ``[-1, 1]`` back to ``[0, 1]`` intensities."""
    return (images + 1.0) * 0.5


def flatten_images(images: np.ndarray) -> np.ndarray:
    """Flatten ``(n, h, w)`` image stacks to ``(n, h*w)`` (no copy if possible)."""
    if images.ndim == 2:
        return images
    if images.ndim != 3:
        raise ValueError(f"expected (n, h, w) or (n, p), got shape {images.shape}")
    return images.reshape(images.shape[0], -1)
