"""Dataset container and batching loader.

:class:`DataLoader` reproduces the part of ``torch.utils.data.DataLoader``
the paper's training loop uses: shuffled mini-batches of a fixed size
(Table I: batch size 100), reshuffled every epoch from an explicit RNG so
distributed runs are reproducible.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "train_test_split"]


class ArrayDataset:
    """Pairs of (features, labels) stored as contiguous NumPy arrays."""

    def __init__(self, images: np.ndarray, labels: np.ndarray | None = None):
        images = np.ascontiguousarray(images, dtype=np.float64)
        if labels is not None:
            labels = np.ascontiguousarray(labels)
            if labels.shape[0] != images.shape[0]:
                raise ValueError("labels length must match images")
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index):
        if self.labels is None:
            return self.images[index]
        return self.images[index], self.labels[index]

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        labels = None if self.labels is None else self.labels[indices]
        return ArrayDataset(self.images[indices], labels)


class DataLoader:
    """Iterate mini-batches, reshuffling each epoch from an explicit RNG.

    ``drop_last=True`` (the default, matching the paper's fixed batch size)
    discards the final short batch so every gradient step sees exactly
    ``batch_size`` samples.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int, rng: np.random.Generator,
                 shuffle: bool = True, drop_last: bool = True):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if len(dataset) < batch_size and drop_last:
            raise ValueError(
                f"dataset of {len(dataset)} samples cannot produce a full batch of {batch_size}"
            )
        self.dataset = dataset
        self.batch_size = batch_size
        self.rng = rng
        self.shuffle = shuffle
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[np.ndarray]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for lo in range(0, stop, self.batch_size):
            batch_idx = order[lo:lo + self.batch_size]
            yield self.dataset.images[batch_idx]

    def batches_with_labels(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Like ``__iter__`` but also yields labels (classifier training)."""
        if self.dataset.labels is None:
            raise ValueError("dataset has no labels")
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for lo in range(0, stop, self.batch_size):
            batch_idx = order[lo:lo + self.batch_size]
            yield self.dataset.images[batch_idx], self.dataset.labels[batch_idx]


def train_test_split(dataset: ArrayDataset, test_fraction: float,
                     rng: np.random.Generator) -> tuple[ArrayDataset, ArrayDataset]:
    """Random split mirroring MNIST's 60k/10k train/test partition."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    n = len(dataset)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    if train_idx.size == 0:
        raise ValueError("split leaves no training samples")
    return dataset.subset(train_idx), dataset.subset(test_idx)
