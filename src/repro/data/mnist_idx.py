"""Reader/writer for the IDX file format used by the original MNIST files.

If the real ``train-images-idx3-ubyte`` / ``train-labels-idx1-ubyte`` files
are available locally, they can be loaded through this module and fed to the
same pipeline as the synthetic data.  The writer exists so tests can
round-trip the format without network access.

Format (http://yann.lecun.com/exdb/mnist/): big-endian; magic number
``0x00 0x00 <dtype> <ndim>`` followed by ``ndim`` uint32 dimension sizes and
the raw array data.
"""

from __future__ import annotations

import struct
from typing import BinaryIO

import numpy as np

__all__ = ["read_idx_file", "write_idx_file", "read_idx_images", "read_idx_labels"]

_DTYPE_CODES: dict[int, np.dtype] = {
    0x08: np.dtype(">u1"),
    0x09: np.dtype(">i1"),
    0x0B: np.dtype(">i2"),
    0x0C: np.dtype(">i4"),
    0x0D: np.dtype(">f4"),
    0x0E: np.dtype(">f8"),
}
_CODE_FOR_KIND = {v.newbyteorder("="): k for k, v in _DTYPE_CODES.items()}


class IdxFormatError(ValueError):
    """Raised when a file does not follow the IDX layout."""


def read_idx_file(path_or_file) -> np.ndarray:
    """Read any IDX file into a native-byte-order NumPy array."""
    if hasattr(path_or_file, "read"):
        return _read_idx(path_or_file)
    with open(path_or_file, "rb") as handle:
        return _read_idx(handle)


def _read_idx(handle: BinaryIO) -> np.ndarray:
    header = handle.read(4)
    if len(header) != 4 or header[0] != 0 or header[1] != 0:
        raise IdxFormatError("bad IDX magic number")
    code, ndim = header[2], header[3]
    if code not in _DTYPE_CODES:
        raise IdxFormatError(f"unknown IDX dtype code 0x{code:02x}")
    dims_raw = handle.read(4 * ndim)
    if len(dims_raw) != 4 * ndim:
        raise IdxFormatError("truncated IDX dimension header")
    dims = struct.unpack(f">{ndim}I", dims_raw)
    dtype = _DTYPE_CODES[code]
    count = int(np.prod(dims)) if dims else 1
    payload = handle.read(count * dtype.itemsize)
    if len(payload) != count * dtype.itemsize:
        raise IdxFormatError("truncated IDX payload")
    array = np.frombuffer(payload, dtype=dtype).reshape(dims)
    return array.astype(dtype.newbyteorder("="))


def write_idx_file(path_or_file, array: np.ndarray) -> None:
    """Write an array in IDX format (inverse of :func:`read_idx_file`)."""
    native = np.ascontiguousarray(array)
    key = native.dtype.newbyteorder("=")
    if key not in _CODE_FOR_KIND:
        raise IdxFormatError(f"dtype {native.dtype} not representable in IDX")
    code = _CODE_FOR_KIND[key]
    header = bytes([0, 0, code, native.ndim])
    dims = struct.pack(f">{native.ndim}I", *native.shape)
    payload = native.astype(native.dtype.newbyteorder(">")).tobytes()
    if hasattr(path_or_file, "write"):
        path_or_file.write(header + dims + payload)
    else:
        with open(path_or_file, "wb") as handle:
            handle.write(header + dims + payload)


def read_idx_images(path) -> np.ndarray:
    """Read an images IDX file into ``(n, rows*cols)`` floats in ``[0, 1]``."""
    raw = read_idx_file(path)
    if raw.ndim != 3:
        raise IdxFormatError(f"image file must be 3-D, got {raw.ndim}-D")
    n = raw.shape[0]
    return raw.reshape(n, -1).astype(np.float64) / 255.0


def read_idx_labels(path) -> np.ndarray:
    """Read a labels IDX file into an ``(n,)`` int64 array."""
    raw = read_idx_file(path)
    if raw.ndim != 1:
        raise IdxFormatError(f"label file must be 1-D, got {raw.ndim}-D")
    return raw.astype(np.int64)
