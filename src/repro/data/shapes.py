"""Synthetic 32x32 RGB shapes — the higher-dimensional dataset.

The paper's future work: "apply our method to train GANs to address the
generation of higher dimensional images, such as samples from CIFAR and
CelebA."  CIFAR itself is unavailable offline, so this module provides a
procedural color dataset with the properties that matter for the method:
3072-dimensional samples (32x32x3, four times MNIST's 784) and ten visually
distinct modes (five shapes x two palettes).

The cellular trainer is dimension-agnostic — only
:class:`~repro.config.NetworkSettings.output_neurons` changes — so this
dataset exercises the exact code path the authors name as future work.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SHAPE_CLASSES", "SHAPES_SIDE", "SHAPES_PIXELS", "render_shapes",
           "load_synthetic_shapes"]

SHAPES_SIDE = 32
SHAPES_PIXELS = SHAPES_SIDE * SHAPES_SIDE * 3

#: Ten classes: five shapes, each in a warm and a cool palette.
SHAPE_CLASSES = (
    "circle/warm", "circle/cool",
    "square/warm", "square/cool",
    "triangle/warm", "triangle/cool",
    "ring/warm", "ring/cool",
    "cross/warm", "cross/cool",
)

_coords = (np.arange(SHAPES_SIDE, dtype=np.float64) + 0.5) / SHAPES_SIDE
_X, _Y = np.meshgrid(_coords, _coords)

_WARM = np.array([0.95, 0.45, 0.15])
_COOL = np.array([0.15, 0.45, 0.95])


def _mask_for(shape: str, cx: float, cy: float, radius: float) -> np.ndarray:
    """Soft occupancy mask in [0, 1] for one shape instance."""
    dx, dy = _X - cx, _Y - cy
    if shape == "circle":
        dist = np.sqrt(dx * dx + dy * dy)
        return np.clip((radius - dist) / 0.04 + 0.5, 0.0, 1.0)
    if shape == "square":
        dist = np.maximum(np.abs(dx), np.abs(dy))
        return np.clip((radius - dist) / 0.04 + 0.5, 0.0, 1.0)
    if shape == "triangle":
        # Upward triangle: inside if below the two slanted edges and above
        # the base.
        base = cy + radius * 0.8
        left = dy * 0.5 - dx * 1.0 + radius * 0.8
        right = dy * 0.5 + dx * 1.0 + radius * 0.8
        inside = np.minimum(np.minimum(left, right), base - _Y)
        return np.clip(inside / 0.05 + 0.3, 0.0, 1.0)
    if shape == "ring":
        dist = np.sqrt(dx * dx + dy * dy)
        band = radius * 0.35
        return np.clip((band - np.abs(dist - radius * 0.8)) / 0.03 + 0.5, 0.0, 1.0)
    if shape == "cross":
        arm = radius * 0.35
        horizontal = (np.abs(dy) < arm) & (np.abs(dx) < radius)
        vertical = (np.abs(dx) < arm) & (np.abs(dy) < radius)
        return (horizontal | vertical).astype(np.float64)
    raise ValueError(f"unknown shape {shape!r}")


def render_shapes(labels: np.ndarray, rng: np.random.Generator,
                  noise_std: float = 0.04) -> np.ndarray:
    """Render one 32x32 RGB image per label; returns ``(n, 3072)`` in [0, 1]."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be 1-D")
    if labels.size and (labels.min() < 0 or labels.max() >= len(SHAPE_CLASSES)):
        raise ValueError(f"labels must be in 0..{len(SHAPE_CLASSES) - 1}")
    out = np.empty((labels.shape[0], SHAPES_PIXELS))
    for i, label in enumerate(labels):
        shape, palette = SHAPE_CLASSES[label].split("/")
        cx = 0.5 + rng.uniform(-0.08, 0.08)
        cy = 0.5 + rng.uniform(-0.08, 0.08)
        radius = rng.uniform(0.22, 0.3)
        mask = _mask_for(shape, cx, cy, radius)
        base = _WARM if palette == "warm" else _COOL
        color = np.clip(base + rng.normal(0.0, 0.05, size=3), 0.0, 1.0)
        background = rng.uniform(0.0, 0.12)
        image = background + mask[:, :, None] * (color - background)[None, None, :]
        image += rng.normal(0.0, noise_std, size=image.shape)
        out[i] = np.clip(image, 0.0, 1.0).ravel()
    return out


def load_synthetic_shapes(n_samples: int, seed: int = 42,
                          noise_std: float = 0.04) -> tuple[np.ndarray, np.ndarray]:
    """Balanced dataset of ``n_samples`` shapes; returns (images, labels)."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    rng = np.random.default_rng(np.random.SeedSequence([seed, n_samples, 3072]))
    labels = np.arange(n_samples, dtype=np.int64) % len(SHAPE_CLASSES)
    rng.shuffle(labels)
    return render_shapes(labels, rng, noise_std=noise_std), labels
