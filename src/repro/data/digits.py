"""Stroke geometry for the ten handwritten digits.

Each digit is described as a list of polylines in a unit box: ``x`` grows
rightward, ``y`` grows downward (image convention).  Curved glyph parts are
sampled into short line segments.  The renderer in
:mod:`repro.data.synthetic` turns these into anti-aliased 28x28 bitmaps.

The glyphs are deliberately simple — the point is a ten-mode, visually
digit-like distribution for the GAN to learn, with the same shape statistics
that make MNIST a good mode-collapse probe (limited target space, ten
balanced modes).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

__all__ = ["digit_segments", "NUM_CLASSES"]

NUM_CLASSES = 10


def _arc(cx: float, cy: float, rx: float, ry: float, start_deg: float, end_deg: float,
         steps: int = 14) -> list[tuple[float, float]]:
    """Sample an elliptical arc into a polyline.  Angles in image convention
    (0 degrees = +x axis, growing clockwise because y points down)."""
    pts = []
    for k in range(steps + 1):
        t = math.radians(start_deg + (end_deg - start_deg) * k / steps)
        pts.append((cx + rx * math.cos(t), cy + ry * math.sin(t)))
    return pts


def _polyline_to_segments(points: list[tuple[float, float]]) -> list[tuple[float, float, float, float]]:
    return [
        (points[i][0], points[i][1], points[i + 1][0], points[i + 1][1])
        for i in range(len(points) - 1)
    ]


def _strokes(digit: int) -> list[list[tuple[float, float]]]:
    """Polylines for one digit inside the unit box."""
    if digit == 0:
        return [_arc(0.5, 0.5, 0.26, 0.36, 0.0, 360.0, steps=20)]
    if digit == 1:
        return [[(0.38, 0.28), (0.52, 0.14), (0.52, 0.86)]]
    if digit == 2:
        top = _arc(0.5, 0.32, 0.22, 0.18, 170.0, 380.0, steps=10)
        return [top + [(0.30, 0.84), (0.74, 0.84)]]
    if digit == 3:
        upper = _arc(0.48, 0.32, 0.2, 0.17, 150.0, 395.0, steps=10)
        lower = _arc(0.48, 0.67, 0.22, 0.19, 325.0, 570.0, steps=10)
        return [upper, lower]
    if digit == 4:
        return [
            [(0.62, 0.86), (0.62, 0.14), (0.26, 0.62), (0.78, 0.62)],
        ]
    if digit == 5:
        hook = _arc(0.47, 0.64, 0.24, 0.21, 250.0, 480.0, steps=12)
        return [[(0.72, 0.16), (0.32, 0.16), (0.30, 0.46)] + hook]
    if digit == 6:
        # Sweeping stroke down into a closed lower loop.
        sweep = [(0.62, 0.14), (0.42, 0.32), (0.32, 0.52)]
        loop = _arc(0.5, 0.66, 0.19, 0.18, 0.0, 360.0, steps=16)
        return [sweep + [loop[len(loop) // 2]], loop]
    if digit == 7:
        return [[(0.26, 0.16), (0.74, 0.16), (0.44, 0.86)]]
    if digit == 8:
        upper = _arc(0.5, 0.32, 0.18, 0.16, 0.0, 360.0, steps=16)
        lower = _arc(0.5, 0.68, 0.21, 0.18, 0.0, 360.0, steps=16)
        return [upper, lower]
    if digit == 9:
        loop = _arc(0.5, 0.34, 0.19, 0.18, 0.0, 360.0, steps=16)
        tail = [(0.69, 0.34), (0.66, 0.62), (0.56, 0.86)]
        return [loop, tail]
    raise ValueError(f"digit must be in 0..9, got {digit}")


@lru_cache(maxsize=NUM_CLASSES)
def digit_segments(digit: int) -> np.ndarray:
    """Return the digit's strokes as an ``(S, 2, 2)`` array of segments.

    ``segments[s, 0]`` is the segment start ``(x, y)`` and ``segments[s, 1]``
    the end, both in the unit box.  Cached — geometry is immutable.
    """
    segs: list[tuple[float, float, float, float]] = []
    for stroke in _strokes(digit):
        segs.extend(_polyline_to_segments(stroke))
    arr = np.asarray(segs, dtype=np.float64).reshape(-1, 2, 2)
    arr.setflags(write=False)
    return arr
