"""One-time deprecation warnings for the pre-:mod:`repro.api` entry points.

:class:`~repro.coevolution.SequentialTrainer` and
:class:`~repro.parallel.DistributedRunner` remain fully supported, but new
code should go through :class:`repro.api.Experiment`.  Direct construction
warns **once per process per class**; the facade constructs them inside
:func:`suppressed`, so routed use stays silent.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager

__all__ = ["warn_once", "suppressed", "reset"]

_warned: set[str] = set()
_suppress = threading.local()


def _depth() -> int:
    return getattr(_suppress, "depth", 0)


@contextmanager
def suppressed():
    """Silence :func:`warn_once` for the duration (used by the facade)."""
    _suppress.depth = _depth() + 1
    try:
        yield
    finally:
        _suppress.depth = _depth() - 1


def warn_once(key: str, message: str) -> None:
    """Emit ``DeprecationWarning`` the first unsuppressed time ``key`` is seen."""
    if _depth() > 0 or key in _warned:
        return
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)


def reset() -> None:
    """Forget which warnings fired (for tests asserting the warning)."""
    _warned.clear()
