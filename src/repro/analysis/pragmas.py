"""Inline suppression pragmas: ``# repro: allow[RULE] -- reason``.

A finding is suppressed when the line it is reported on carries an allow
pragma naming its rule (by id, ``R3``, or slug, ``alias-escape``) **and**
the pragma states a reason after ``--``.  A pragma without a reason is
itself a finding (rule ``PRAGMA``): exemptions are part of the invariant
record, so "why is this line special" must be answerable from the line.

Several rules may share one pragma: ``# repro: allow[R2,R8] -- kill switch
read once at import, mirrored to workers``.  Unknown rule names are a
``PRAGMA`` finding too — a typo must not silently disable nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass

from repro.analysis.findings import Finding

__all__ = ["PragmaMap", "scan_pragmas", "PRAGMA_RE"]

PRAGMA_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:--\s*(?P<reason>.*))?$"
)


@dataclass
class PragmaMap:
    """Per-line rule suppressions for one file."""

    #: line number -> set of rule ids/slugs allowed there
    by_line: dict[int, set[str]]

    def allows(self, line: int, rule_id: str, slug: str) -> bool:
        allowed = self.by_line.get(line)
        return bool(allowed) and (rule_id in allowed or slug in allowed)


def scan_pragmas(source: str, path: str,
                 known: dict[str, str] | None = None) -> tuple[PragmaMap, list[Finding]]:
    """Extract pragmas; return the map plus PRAGMA meta-findings.

    ``known`` maps every acceptable token (rule id and slug) to its rule id;
    when given, unknown tokens are reported.
    """
    by_line: dict[int, set[str]] = {}
    problems: list[Finding] = []

    def problem(line: int, message: str) -> None:
        problems.append(Finding(rule="PRAGMA", slug="pragma-discipline",
                                severity="error", path=path, line=line,
                                message=message))

    for lineno, text in _comments(source):
        match = PRAGMA_RE.search(text)
        if match is None:
            if re.search(r"repro:\s*allow", text):
                problem(lineno, "malformed allow pragma (expected "
                                "'# repro: allow[<rule>] -- reason')")
            continue
        rules = {token.strip() for token in match.group("rules").split(",")
                 if token.strip()}
        reason = (match.group("reason") or "").strip()
        if not rules:
            problem(lineno, "allow pragma names no rules")
            continue
        if not reason:
            problem(lineno, "allow pragma without a reason — append "
                            "'-- <why this line is exempt>'")
            continue
        if known is not None:
            unknown = {r for r in rules if r not in known}
            if unknown:
                problem(lineno, f"allow pragma names unknown rules: "
                                f"{', '.join(sorted(unknown))}")
            rules -= unknown
        if rules:
            by_line.setdefault(lineno, set()).update(rules)
    return PragmaMap(by_line), problems


def _comments(source: str) -> list[tuple[int, str]]:
    """(line, text) for every comment token — docstrings never match."""
    out: list[tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return out
