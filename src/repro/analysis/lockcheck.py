"""Runtime concurrency checker: lock-order graph, blocked-wait watchdog,
guarded-mutation and alias-crossing assertions.

Enable with ``REPRO_LOCKCHECK=1`` (the env read lives in
:func:`repro.runtime.lockcheck_requested`; ``repro/__init__`` installs the
checker before any repro lock exists).  When off, every public entry point
is a single guarded return — the checker costs nothing in production.

What it checks
--------------

**Lock-acquisition-order graph.**  ``threading.Lock``/``RLock`` created by
repro code (creation site filtered by filename) are wrapped in counting
proxies.  Every *blocking* acquire records edges ``held -> acquiring`` into
a global digraph; an edge that closes a cycle is the ABBA pattern — two
threads interleaving those chains deadlock — and is reported immediately,
*before* any thread actually blocks.  Non-blocking (``blocking=False``)
attempts add no edges: trylock loops cannot deadlock.

**Blocked-wait watchdog.**  A blocking acquire that stalls longer than
``REPRO_LOCKCHECK_WATCHDOG`` seconds (default 60) dumps every thread's
stack, annotated with the instrumented locks each thread holds, then keeps
waiting.  This is the report that localizes distributed stalls like the
1x1-grid exchange deadlock: the dump shows who is parked and what they
hold.

**Guarded-mutation annotations.**  Structures with a documented protecting
lock call :func:`check_owned` at their mutation sites (``Endpoint``'s
receive buffer under its condition, ``BatchingEngine`` stats under its
lock, telemetry buffers under theirs).  With the checker on, a mutation
reached without holding the protecting lock is a violation; off, the call
is a no-op.

**Alias crossing.**  The PR-4 arena contract: live parameter-arena views
(``alias=True``) must never cross a thread or transport boundary.  The
arena registers live aliases here; :func:`check_no_alias` (called by
``Endpoint.send_to``) reports any registered alias found inside an outgoing
payload, and :func:`check_alias_use` reports use from a thread other than
the borrower.

Violations are recorded (:func:`violations`) and printed to stderr; the
test suite's autouse gate (``tests/conftest.py``) fails any test that
leaves new violations behind, which is how ``REPRO_LOCKCHECK=1`` CI runs
turn silent races into red builds.
"""

from __future__ import annotations

import sys
import threading
import traceback
import weakref
from dataclasses import dataclass, field

__all__ = [
    "Violation",
    "install",
    "install_if_enabled",
    "installed",
    "uninstall",
    "reset",
    "violations",
    "violation_count",
    "clear_violations",
    "check_owned",
    "register_alias",
    "check_alias_use",
    "check_no_alias",
    "dump_threads",
]

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_REAL_CONDITION = threading.Condition

_installed = False
_watchdog_s = 60.0
_state = _REAL_LOCK()           # guards everything below
_edges: dict[tuple[int, int], str] = {}      # (held, acquiring) -> first site
_adj: dict[int, set[int]] = {}
_names: dict[int, str] = {}
_held: dict[int, list[int]] = {}             # thread ident -> held lock ids
_violations: list["Violation"] = []
_aliases: dict[int, tuple[int, str, object]] = {}   # id(obj) -> (ident, label, ref)


@dataclass(frozen=True)
class Violation:
    kind: str        # lock-order | blocked-wait | unguarded-mutation | alias-escape
    message: str
    thread: str = ""
    stack: str = field(default="", compare=False)

    def __str__(self) -> str:
        return f"[lockcheck:{self.kind}] {self.message} (thread {self.thread})"


def _record(kind: str, message: str, *, stack: str | None = None) -> None:
    violation = Violation(
        kind=kind, message=message, thread=threading.current_thread().name,
        stack=stack if stack is not None else "".join(traceback.format_stack(limit=12)),
    )
    with _state:
        _violations.append(violation)
    print(str(violation), file=sys.stderr)


# --------------------------------------------------------------------------
# Lock proxies.
# --------------------------------------------------------------------------

class _InstrumentedLock:
    """Counting proxy over a real lock; feeds the order graph."""

    _reentrant = False

    def __init__(self, inner, name: str):
        self._inner = inner
        self._name = name
        self._count = 0
        self._owner: int | None = None
        with _state:
            _names[id(self)] = name

    # -- bookkeeping -------------------------------------------------------

    def _note_acquire_intent(self) -> None:
        """Record held->this edges; report a cycle the moment it closes."""
        me = id(self)
        ident = threading.get_ident()
        cycles: list[str] = []
        with _state:
            held = _held.get(ident, [])
            for h in held:
                if h == me:
                    continue
                key = (h, me)
                if key in _edges:
                    continue
                site = _acquire_site()
                # Does a path me -> ... -> h already exist?  Then h -> me
                # closes a cycle: some chain acquires me before h, this
                # thread h before me — the ABBA deadlock shape.
                path = _find_path(me, h)
                _edges[key] = site
                _adj.setdefault(h, set()).add(me)
                if path is not None:
                    chain = " -> ".join(_names.get(n, hex(n))
                                        for n in [h] + path)
                    first = _edges.get((path[0], path[1]), "?") if len(path) > 1 else "?"
                    cycles.append(
                        f"lock-order cycle: acquiring "
                        f"'{_names.get(me, '?')}' while holding "
                        f"'{_names.get(h, '?')}' closes the cycle {chain}; "
                        f"opposite ordering first seen at {first}, this "
                        f"ordering at {site} — interleaved, these threads "
                        f"deadlock (ABBA)"
                    )
        for message in cycles:
            _record("lock-order", message)

    def _note_acquired(self) -> None:
        ident = threading.get_ident()
        self._owner = ident
        with _state:
            _held.setdefault(ident, []).append(id(self))

    def _note_released(self) -> None:
        ident = threading.get_ident()
        self._owner = None
        with _state:
            held = _held.get(ident)
            if held and id(self) in held:
                # remove the most recent occurrence (LIFO discipline)
                for i in range(len(held) - 1, -1, -1):
                    if held[i] == id(self):
                        del held[i]
                        break

    # -- the lock protocol -------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1):
        if self._reentrant and self._owner == threading.get_ident():
            ok = self._inner.acquire(blocking, timeout)
            if ok:
                self._count += 1
            return ok
        if blocking:
            self._note_acquire_intent()
        if not blocking or timeout != -1:
            ok = self._inner.acquire(blocking, timeout)
        else:
            ok = self._inner.acquire(True, _watchdog_s)
            if not ok:
                _record(
                    "blocked-wait",
                    f"thread blocked >{_watchdog_s:.0f}s acquiring "
                    f"'{self._name}' — all-thread dump follows",
                    stack=dump_threads(),
                )
                print(dump_threads(), file=sys.stderr)
                self._inner.acquire()
                ok = True
        if ok:
            self._count += 1
            if self._count == 1:
                self._note_acquired()
        return ok

    def release(self) -> None:
        self._count -= 1
        if self._count == 0:
            self._note_released()
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info):
        self.release()
        return False

    def _at_fork_reinit(self) -> None:
        self._inner._at_fork_reinit()
        self._count = 0
        self._owner = None

    def __repr__(self) -> str:
        return f"<lockcheck {self._name} of {self._inner!r}>"


class _InstrumentedRLock(_InstrumentedLock):
    _reentrant = True

    # Condition() binds these when present, so a Condition built on this
    # proxy keeps correct wait() semantics (full recursive release) while
    # the proxy's held-set stays truthful across the wait window.

    def _release_save(self):
        count = self._count
        self._count = 0
        self._note_released()
        return (self._inner._release_save(), count)

    def _acquire_restore(self, saved):
        inner_state, count = saved
        self._inner._acquire_restore(inner_state)
        self._count = count
        self._note_acquired()

    def _is_owned(self):
        return self._inner._is_owned()


def _acquire_site() -> str:
    frame = sys._getframe(2)
    # Walk out of lockcheck's own frames to the caller's.
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:
        return "?"
    return f"{frame.f_code.co_filename.rsplit('/', 1)[-1]}:{frame.f_lineno}"


def _find_path(start: int, goal: int) -> list[int] | None:
    """BFS in the order graph; caller holds ``_state``."""
    if start == goal:
        return [start]
    queue = [[start]]
    seen = {start}
    while queue:
        path = queue.pop(0)
        for succ in _adj.get(path[-1], ()):
            if succ == goal:
                return path + [succ]
            if succ not in seen:
                seen.add(succ)
                queue.append(path + [succ])
    return None


def _creation_site() -> tuple[str, str] | None:
    """(name, filename) of the first non-threading, non-lockcheck caller."""
    frame = sys._getframe(2)
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename != __file__ and "threading" not in filename.rsplit("/", 1)[-1]:
            short = filename.rsplit("/", 1)[-1]
            return f"{short}:{frame.f_lineno}", filename
        frame = frame.f_back
    return None


def _should_instrument(filename: str) -> bool:
    return "repro" in filename or "tests" in filename


def _make_lock():
    site = _creation_site()
    if site is None or not _should_instrument(site[1]):
        return _REAL_LOCK()
    return _InstrumentedLock(_REAL_LOCK(), f"Lock@{site[0]}")


def _make_rlock():
    site = _creation_site()
    if site is None or not _should_instrument(site[1]):
        return _REAL_RLOCK()
    return _InstrumentedRLock(_REAL_RLOCK(), f"RLock@{site[0]}")


def _make_condition(lock=None):
    if lock is None:
        site = _creation_site()
        if site is not None and _should_instrument(site[1]):
            lock = _InstrumentedRLock(_REAL_RLOCK(), f"Condition@{site[0]}")
    return _REAL_CONDITION(lock)


# --------------------------------------------------------------------------
# Install / state.
# --------------------------------------------------------------------------

def install(watchdog_s: float | None = None) -> None:
    """Patch the threading factories; idempotent."""
    global _installed, _watchdog_s
    if watchdog_s is not None:
        if watchdog_s <= 0:
            raise ValueError("watchdog must be positive")
        _watchdog_s = watchdog_s
    if _installed:
        return
    threading.Lock = _make_lock
    threading.RLock = _make_rlock
    threading.Condition = _make_condition
    _installed = True


def install_if_enabled() -> bool:
    """Install when ``REPRO_LOCKCHECK`` requests it (policy in repro.runtime)."""
    from repro.runtime import lockcheck_requested, lockcheck_watchdog_seconds

    if not lockcheck_requested():
        return False
    install(watchdog_s=lockcheck_watchdog_seconds())
    return True


def installed() -> bool:
    return _installed


def uninstall() -> None:
    """Restore the real factories (existing proxies keep working)."""
    global _installed
    threading.Lock = _REAL_LOCK
    threading.RLock = _REAL_RLOCK
    threading.Condition = _REAL_CONDITION
    _installed = False


def reset() -> None:
    """Drop the order graph, held map, aliases and violations."""
    with _state:
        _edges.clear()
        _adj.clear()
        _held.clear()
        _violations.clear()
        _aliases.clear()


def violations() -> list[Violation]:
    with _state:
        return list(_violations)


def violation_count() -> int:
    with _state:
        return len(_violations)


def clear_violations() -> list[Violation]:
    with _state:
        drained = list(_violations)
        _violations.clear()
    return drained


# --------------------------------------------------------------------------
# Annotations: guarded mutation.
# --------------------------------------------------------------------------

def _proxy_of(lock_or_condition):
    inner = getattr(lock_or_condition, "_lock", lock_or_condition)
    return inner if isinstance(inner, _InstrumentedLock) else None


def check_owned(lock_or_condition, what: str) -> None:
    """Assert the protecting lock is held by the current thread.

    The annotation for shared structures with a documented lock: call at
    every mutation site.  No-op when the checker is off or the lock is not
    instrumented (e.g. created before install).
    """
    if not _installed:
        return
    proxy = _proxy_of(lock_or_condition)
    if proxy is None:
        return
    if proxy._owner != threading.get_ident():
        _record(
            "unguarded-mutation",
            f"{what} mutated without holding its protecting lock "
            f"'{proxy._name}'",
        )


# --------------------------------------------------------------------------
# Annotations: arena aliases.
# --------------------------------------------------------------------------

def register_alias(obj, label: str) -> None:
    """Mark ``obj`` (a live arena view) as borrowed by the current thread."""
    if not _installed:
        return
    key = id(obj)

    def _expire(_ref, _key=key):
        with _state:
            _aliases.pop(_key, None)

    try:
        ref = weakref.ref(obj, _expire)
    except TypeError:   # not weakref-able: cannot track safely
        return
    with _state:
        _aliases[key] = (threading.get_ident(), label, ref)


def _lookup_alias(obj) -> tuple[int, str] | None:
    with _state:
        entry = _aliases.get(id(obj))
    if entry is None:
        return None
    ident, label, ref = entry
    if ref() is not obj:    # stale id reuse
        return None
    return ident, label


def check_alias_use(obj, context: str) -> None:
    """Report use of a live alias from a thread other than its borrower."""
    if not _installed:
        return
    entry = _lookup_alias(obj)
    if entry is not None and entry[0] != threading.get_ident():
        _record(
            "alias-escape",
            f"{context}: live arena alias '{entry[1]}' used from a thread "
            f"other than its borrower — the optimizer mutates that memory; "
            f"copy before sharing",
        )


def check_no_alias(payload, context: str) -> None:
    """Report any registered live alias reachable (shallowly) in ``payload``.

    Called at transport boundaries: whatever crosses is serialized on a
    background sender thread, so a live alias here is a race by
    construction, whichever thread it lands on.
    """
    if not _installed:
        return
    for obj in _walk(payload, depth=3):
        entry = _lookup_alias(obj)
        if entry is not None:
            _record(
                "alias-escape",
                f"{context}: live arena alias '{entry[1]}' inside an "
                f"outgoing payload — transports serialize on background "
                f"threads; send a .copy()",
            )
            return


def _walk(obj, depth: int):
    yield obj
    if depth <= 0:
        return
    if isinstance(obj, (list, tuple, set)):
        for item in obj:
            yield from _walk(item, depth - 1)
    elif isinstance(obj, dict):
        for item in obj.values():
            yield from _walk(item, depth - 1)
    elif hasattr(obj, "__dict__"):
        for item in vars(obj).values():
            yield from _walk(item, depth - 1)
    elif hasattr(obj, "__slots__"):
        for name in obj.__slots__:
            item = getattr(obj, name, None)
            if item is not None:
                yield from _walk(item, depth - 1)


# --------------------------------------------------------------------------
# Diagnostics.
# --------------------------------------------------------------------------

def dump_threads() -> str:
    """Every thread's stack, annotated with the instrumented locks it holds."""
    with _state:
        held_by = {ident: [_names.get(l, hex(l)) for l in locks]
                   for ident, locks in _held.items() if locks}
    threads = {t.ident: t for t in threading.enumerate()}
    lines = ["=== lockcheck all-thread dump ==="]
    for ident, frame in sorted(sys._current_frames().items()):
        thread = threads.get(ident)
        name = thread.name if thread is not None else f"ident-{ident}"
        locks = held_by.get(ident, [])
        suffix = f" holding {locks}" if locks else ""
        lines.append(f"--- thread {name} ({ident}){suffix}")
        lines.extend(line.rstrip() for line in traceback.format_stack(frame))
    return "\n".join(lines)
