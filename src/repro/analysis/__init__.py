"""Project-invariant static analysis and runtime concurrency checking.

This package machine-checks the invariants that protect the repro's core
oracle — bit-identical equivalence across the sequential/threaded/process/
socket backends — plus the security and resource-discipline contracts its
history shows get broken by hand.  Run it as ``repro lint [paths]`` or
``python -m repro.analysis``; enable the runtime checker with
``REPRO_LOCKCHECK=1``.

The invariants
--------------

**Aliasing contract (R3, and the runtime alias checks).**  Arena views are
*borrows of live training memory*: ``parameters_to_vector(..., alias=True)``
and ``center_genomes(alias=True)`` return vectors that the optimizer
mutates in place on the next step.  A borrow must stay within the borrowing
function and the borrowing thread; anything that crosses a transport send
(serialized on a background sender thread) or is parked on an object
another thread can read must be a ``.copy()``.  Violations are the worst
kind of bug this codebase produces: silent, seed-dependent corruption of
training state.

**Determinism rules (R2).**  All randomness flows through explicitly seeded
``np.random.Generator`` objects threaded through call signatures — never
``np.random.*`` / ``random.*`` global state, which any import or thread can
perturb.  Wall clocks (``time.time``) stay off hot paths: they jump under
NTP and differ per rank (monotonic clocks + one wall anchor is the
sanctioned pattern, see ``repro.telemetry.bus``).  Sets are never iterated
where order can feed genome or fitness math.

**Security boundary (R1).**  Nothing under ``repro.mpi`` unpickles bytes
that an unauthenticated peer could have produced.  The rendezvous
authenticates a size-capped JSON hello *before* the first ``pickle.loads``
(PR 3 shipped the opposite and it was remote code execution).  Every
unpickling site in the transport layer carries an ``allow[R1]`` pragma
stating why its input is trusted.

**Resource discipline (R4).**  Weak-keyed registries must not store values
that strongly reference their keys — such entries are immortal (PR 5's
kernel registry pinned every network + arena slab, ~8 GB RSS).

**Telemetry discipline (R5).**  ``telemetry.count``/``gauge`` call sites
sit behind ``if telemetry.enabled():`` so the off-path cost stays one int
check — the contract the CI 2%-overhead ratchet enforces.

**Layer DAG (R6).**  Eager module-scope imports must respect the declared
layering (``repro.analysis.layering.LAYERS``): ``registry``/``telemetry``
are leaf-safe; ``nn`` sits below ``coevolution``, below ``parallel``/
``mpi``, below ``api``/``serving``; cycles are rejected outright.  Upward
references use lazy (function-scope) imports.

**Fork safety (R7).**  No threads or sockets at import time: forked ranks
inherit memory but not threads.

**Environment reads (R8).**  ``os.environ`` is read inside functions, at
use time; process-level env policy lives in ``repro.runtime``.  Deliberate
import-time kill switches are pragma'd.

**Retry discipline (R9).**  Transient-network retry lives in
``repro.mpi.backoff`` and nowhere else: bounded attempts, exponential
delay, jitter, counted through ``TransportStats``.  A loop that calls a
socket primitive, swallows the ``OSError``/``WireError`` and goes around
again is an unbounded invisible retry — it masks dead peers from the
heartbeat layer and un-jittered reconnects stampede the coordinator.
Timeout polls (``MpiTimeoutError``) and ``accept()`` loops are not
retries and are not flagged.

Pragma syntax
-------------

An intentional exemption is annotated inline, on the flagged line::

    payload = pickle.loads(body)  # repro: allow[R1] -- post-auth: hello verified above

The reason after ``--`` is required; a pragma without one (or naming an
unknown rule) is itself a finding.  Several rules can share one pragma:
``# repro: allow[R2,R8] -- kill switch, read once at import``.

Baseline
--------

``analysis_baseline.json`` grandfathers known findings so a new rule can
land before historical violations are fixed; CI fails only on regressions.
This repo's baseline is empty and must stay empty — fix it or pragma it.
"""

from repro.analysis.engine import LintResult, active_rules, lint_paths, lint_source, main
from repro.analysis.findings import Baseline, Finding
from repro.analysis.layering import LAYERS, LayeringRule
from repro.analysis.rules import ALL_RULES, Rule

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LAYERS",
    "LayeringRule",
    "LintResult",
    "Rule",
    "active_rules",
    "lint_paths",
    "lint_source",
    "main",
]
